//! The weight-sharing supernet with single-path forward and multi-path
//! (top-K) backward (paper Eq. 6–7).

use crate::arch::ArchParams;
use crate::error::NasError;
use crate::gumbel::{GumbelSoftmax, TemperatureSchedule};
use crate::ops::{build_op, OpChoice, ALL_OPS};
use a3cs_nn::{
    BatchNorm2d, Conv2d, FeatureShape, GlobalAvgPool, Linear, LayerDesc, Module, Param, Relu,
    Sequential,
};
use a3cs_tensor::{Tape, Tensor, Var};
use std::cell::{Cell, RefCell};

/// Structural configuration of the supernet.
///
/// The cell plan follows the paper: the searchable cells inherit the
/// ResNet series' group structure (3 groups; widths `w`, `2w`, `4w`;
/// stride-2 transitions), with a stride-2 stem convolution in front and a
/// global-average-pool + fully-connected feature head behind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupernetConfig {
    /// Input observation planes.
    pub in_planes: usize,
    /// Input height.
    pub height: usize,
    /// Input width.
    pub width: usize,
    /// Number of searchable cells (paper: 12; must be divisible by 3).
    pub num_cells: usize,
    /// Channel width of the first group.
    pub base_width: usize,
    /// Output feature dimensionality of the head.
    pub feat_dim: usize,
    /// Paths activated in the backward pass (`K` of Eq. 7, `1 < K <= N`
    /// trades stability for cost; `K = 1` degenerates to single-path
    /// gradients).
    pub top_k: usize,
    /// Gumbel-Softmax temperature schedule.
    pub temperature: TemperatureSchedule,
}

impl SupernetConfig {
    /// The paper's 12-cell supernet at reproduction scale.
    #[must_use]
    pub fn paper(in_planes: usize, height: usize, width: usize) -> Self {
        SupernetConfig {
            in_planes,
            height,
            width,
            num_cells: 12,
            base_width: 8,
            feat_dim: 64,
            top_k: 2,
            temperature: TemperatureSchedule::default(),
        }
    }

    /// A 6-cell miniature for tests and fast demos.
    #[must_use]
    pub fn tiny(in_planes: usize, height: usize, width: usize) -> Self {
        SupernetConfig {
            in_planes,
            height,
            width,
            num_cells: 6,
            base_width: 8,
            feat_dim: 32,
            top_k: 2,
            temperature: TemperatureSchedule::default(),
        }
    }

    /// `(in_ch, out_ch, stride)` for each searchable cell.
    ///
    /// # Errors
    ///
    /// [`NasError::InvalidCellCount`] unless `num_cells` is a positive
    /// multiple of 3.
    #[must_use = "the Result reports failure and must be checked"]
    pub fn try_cell_plan(&self) -> Result<Vec<(usize, usize, usize)>, NasError> {
        if self.num_cells == 0 || self.num_cells % 3 != 0 {
            return Err(NasError::InvalidCellCount {
                num_cells: self.num_cells,
            });
        }
        let per_group = self.num_cells / 3;
        let widths = [self.base_width, self.base_width * 2, self.base_width * 4];
        let mut plan = Vec::with_capacity(self.num_cells);
        let mut in_ch = self.base_width; // stem output width
        for (g, &w) in widths.iter().enumerate() {
            for b in 0..per_group {
                let stride = if g > 0 && b == 0 { 2 } else { 1 };
                plan.push((in_ch, w, stride));
                in_ch = w;
            }
        }
        Ok(plan)
    }

    /// Panicking convenience wrapper around
    /// [`SupernetConfig::try_cell_plan`].
    ///
    /// # Panics
    ///
    /// Panics unless `num_cells` is a positive multiple of 3.
    #[must_use]
    pub fn cell_plan(&self) -> Vec<(usize, usize, usize)> {
        match self.try_cell_plan() {
            Ok(plan) => plan,
            // Callers who must handle bad cell counts use `try_cell_plan`;
            // reaching this arm is a caller bug the documented contract
            // rules out.
            Err(e) => unreachable!("cell_plan precondition violated: {e}"),
        }
    }

    /// Feature width entering the head (`4w`).
    #[must_use]
    pub fn head_width(&self) -> usize {
        self.base_width * 4
    }
}

struct SearchCell {
    ops: Vec<Box<dyn Module>>,
}

/// The architecture-search side of a supernet's state: the `α` logits,
/// the Gumbel sampler's RNG stream, and the temperature-schedule step.
///
/// Together with the supernet *weights* (reachable through
/// [`Module::params`] / [`Module::state`]) this is everything needed to
/// resume a search bit-exactly. The transient forward trace
/// (`last_sampled_indices`) and the `set_eval_sampling` toggle are
/// excluded: both are (re)established by the caller before they are read.
#[derive(Debug, Clone, PartialEq)]
pub struct SupernetSearchState {
    /// Per-cell `α` logit rows (`num_cells × num_ops`).
    pub alpha: Vec<Vec<f32>>,
    /// Gumbel sampler RNG state words.
    pub gumbel_rng: [u64; 4],
    /// Global step driving the temperature schedule.
    pub step: u64,
}

/// The A3C-S supernet: a stem, `num_cells` searchable cells each holding
/// all 9 candidate operators (weight sharing), and a pooled linear head.
///
/// # Forward semantics (Eq. 6–7)
///
/// In training mode each cell hard-samples one operator via Gumbel-Softmax
/// on its `α` logits (single-path forward) while the `top_k` most probable
/// perturbed operators participate in the backward pass through a
/// straight-through relaxation (multi-path backward). In evaluation mode
/// the argmax-`α` operator runs deterministically.
///
/// The struct uses interior mutability (RNG, step counter, last-sample
/// trace) so it satisfies the `&self`-based [`Module`] trait and can be
/// shared (`Rc`) between an agent and the search driver.
pub struct SuperNet {
    config: SupernetConfig,
    stem: Sequential,
    cells: Vec<SearchCell>,
    head_fc: Linear,
    arch: ArchParams,
    gumbel: RefCell<GumbelSoftmax>,
    step: Cell<u64>,
    last_sample: RefCell<Vec<usize>>,
    eval_sampling: Cell<bool>,
}

impl SuperNet {
    /// Build a supernet with freshly initialised operator weights.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is structurally invalid (see
    /// [`SupernetConfig::cell_plan`]) or `top_k` is not in `1..=9`.
    #[must_use]
    pub fn new(config: SupernetConfig, seed: u64) -> Self {
        assert!(
            (1..=ALL_OPS.len()).contains(&config.top_k),
            "top_k must be within 1..={}",
            ALL_OPS.len()
        );
        let plan = config.cell_plan();
        let stem = Sequential::new()
            .push(Conv2d::new(
                "supernet.stem",
                config.in_planes,
                config.base_width,
                3,
                2,
                1,
                false,
                seed,
            ))
            .push(BatchNorm2d::new("supernet.stem_bn", config.base_width))
            .push(Relu::new());
        let mut cells = Vec::with_capacity(plan.len());
        for (ci, &(in_ch, out_ch, stride)) in plan.iter().enumerate() {
            let ops = ALL_OPS
                .iter()
                .enumerate()
                .map(|(oi, &choice)| {
                    build_op(
                        choice,
                        &format!("supernet.c{ci}.{choice}"),
                        in_ch,
                        out_ch,
                        stride,
                        seed.wrapping_add((ci * 31 + oi) as u64 + 1),
                    )
                })
                .collect();
            cells.push(SearchCell { ops });
        }
        let head_fc = Linear::new(
            "supernet.fc",
            config.head_width(),
            config.feat_dim,
            seed.wrapping_add(999),
        );
        let num_cells = plan.len();
        SuperNet {
            config,
            stem,
            cells,
            head_fc,
            arch: ArchParams::new(num_cells, ALL_OPS.len()),
            gumbel: RefCell::new(GumbelSoftmax::new(seed ^ 0x6a5d_39e9)),
            step: Cell::new(0),
            last_sample: RefCell::new(vec![0; num_cells]),
            eval_sampling: Cell::new(false),
        }
    }

    /// Toggle Gumbel path sampling in *evaluation-mode* forwards.
    ///
    /// Alg. 1 performs rollouts with the hard-Gumbel-sampled single path
    /// (Eq. 6); the co-search enables this so that data collection
    /// explores operators, and disables it around score evaluations so
    /// those measure the argmax network.
    pub fn set_eval_sampling(&self, on: bool) {
        self.eval_sampling.set(on);
    }

    /// The structural configuration.
    #[must_use]
    pub fn config(&self) -> &SupernetConfig {
        &self.config
    }

    /// Number of searchable cells.
    #[must_use]
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// The architecture distribution `α`.
    #[must_use]
    pub fn arch(&self) -> &ArchParams {
        &self.arch
    }

    /// Set the global step (drives the temperature schedule).
    pub fn set_step(&self, step: u64) {
        self.step.set(step);
    }

    /// Current Gumbel-Softmax temperature.
    #[must_use]
    pub fn temperature(&self) -> f32 {
        self.config.temperature.at(self.step.get())
    }

    /// Operator *indices* sampled in the most recent forward (one per
    /// cell). Training forwards record the hard Gumbel sample; evaluation
    /// forwards record the argmax path.
    #[must_use]
    pub fn last_sampled_indices(&self) -> Vec<usize> {
        self.last_sample.borrow().clone()
    }

    /// Operator choices sampled in the most recent training forward.
    #[must_use]
    pub fn last_sampled_arch(&self) -> Vec<OpChoice> {
        self.last_sample
            .borrow()
            .iter()
            .map(|&i| ALL_OPS[i])
            .collect()
    }

    /// Most likely architecture (argmax `α`) — the derivation rule and the
    /// single-path proxy used for the hardware-cost penalty (Eq. 8).
    #[must_use]
    pub fn most_likely_arch(&self) -> Vec<OpChoice> {
        self.arch.argmax().into_iter().map(|i| ALL_OPS[i]).collect()
    }

    /// Compute-layer descriptors of the most likely architecture at the
    /// supernet's design input shape.
    #[must_use]
    pub fn most_likely_layer_descs(&self) -> Vec<LayerDesc> {
        self.describe(FeatureShape::image(
            self.config.in_planes,
            self.config.height,
            self.config.width,
        ))
        .0
    }

    /// Export the search-side state (α logits, Gumbel RNG, schedule step)
    /// for checkpointing. See [`SupernetSearchState`] for what is and is
    /// not covered.
    #[must_use]
    pub fn export_search_state(&self) -> SupernetSearchState {
        SupernetSearchState {
            alpha: (0..self.cells.len())
                .map(|ci| self.arch.logits(ci))
                .collect(),
            gumbel_rng: self.gumbel.borrow().rng_state(),
            step: self.step.get(),
        }
    }

    /// Restore state captured by [`SuperNet::export_search_state`].
    ///
    /// # Errors
    ///
    /// [`NasError::SearchStateShapeMismatch`] when the α logit shape does
    /// not match this supernet; nothing is modified in that case.
    #[must_use = "the Result reports failure and must be checked"]
    pub fn import_search_state(&self, state: &SupernetSearchState) -> Result<(), NasError> {
        let num_ops = ALL_OPS.len();
        if state.alpha.len() != self.cells.len() {
            return Err(NasError::SearchStateShapeMismatch {
                expected_cells: self.cells.len(),
                expected_ops: num_ops,
                actual_cells: state.alpha.len(),
                actual_ops: state.alpha.first().map_or(0, Vec::len),
            });
        }
        if let Some(row) = state.alpha.iter().find(|row| row.len() != num_ops) {
            return Err(NasError::SearchStateShapeMismatch {
                expected_cells: self.cells.len(),
                expected_ops: num_ops,
                actual_cells: state.alpha.len(),
                actual_ops: row.len(),
            });
        }
        for (ci, row) in state.alpha.iter().enumerate() {
            match Tensor::from_vec(row.clone(), &[num_ops]) {
                Ok(t) => self.arch.cell(ci).set_value(t),
                // Row length was validated against `num_ops` above.
                Err(e) => unreachable!("validated α row must build a tensor: {e}"),
            }
        }
        self.gumbel.borrow_mut().set_rng_state(state.gumbel_rng);
        self.step.set(state.step);
        Ok(())
    }

    /// Per-cell, per-operator layer descriptors at the shapes each cell
    /// sees under the most-likely architecture. Used by Eq. 8's layer-wise
    /// hardware-cost penalty.
    #[must_use]
    pub fn candidate_layer_descs(&self) -> Vec<Vec<Vec<LayerDesc>>> {
        let plan = self.config.cell_plan();
        let (stem_descs, mut shape) = self.stem.describe(FeatureShape::image(
            self.config.in_planes,
            self.config.height,
            self.config.width,
        ));
        let _ = stem_descs;
        let mut out = Vec::with_capacity(plan.len());
        for (ci, _) in plan.iter().enumerate() {
            let mut per_op = Vec::with_capacity(self.cells[ci].ops.len());
            let mut next_shape = shape;
            for (oi, op) in self.cells[ci].ops.iter().enumerate() {
                let (descs, s) = op.describe(shape);
                per_op.push(descs);
                if oi == self.arch.argmax()[ci] {
                    next_shape = s;
                }
            }
            out.push(per_op);
            shape = next_shape;
        }
        out
    }
}

impl Module for SuperNet {
    fn forward(&self, tape: &Tape, x: &Var, train: bool) -> Var {
        let mut h = self.stem.forward(tape, x, train);
        let tau = self.temperature();
        let num_ops = ALL_OPS.len();
        let mut sample = Vec::with_capacity(self.cells.len());
        for (ci, cell) in self.cells.iter().enumerate() {
            if train {
                // Single-path forward, multi-path (top-K) backward.
                let logits = self.arch.logits(ci);
                let noise = self.gumbel.borrow_mut().sample_noise(num_ops);
                let perturbed: Vec<f32> = logits
                    .iter()
                    .zip(noise.iter())
                    .map(|(&l, &g)| (l + g) / tau)
                    .collect();
                let mut order: Vec<usize> = (0..num_ops).collect();
                order.sort_by(|&a, &b| perturbed[b].total_cmp(&perturbed[a]));
                let selected = &order[..self.config.top_k];
                let hard = selected[0];
                sample.push(hard);

                let alpha = self.arch.cell(ci).bind(tape);
                let noise_t = match Tensor::from_vec(noise, &[num_ops]) {
                    Ok(t) => t,
                    Err(e) => unreachable!("one noise value per op always fits: {e:?}"),
                };
                let probs = alpha
                    .add(&tape.constant(noise_t))
                    .scale(1.0 / tau)
                    .reshape(&[1, num_ops])
                    .softmax_rows();

                let mut acc: Option<Var> = None;
                for &oi in selected {
                    let w = probs.pick_rows(&[oi]); // differentiable weight
                    let hard_val = f32::from(oi == hard);
                    let st_shift = hard_val - w.value().item();
                    // Straight-through: forward coefficient is exactly the
                    // one-hot value; gradient flows through `w`.
                    let shift_t = match Tensor::from_vec(vec![st_shift], &[1]) {
                        Ok(t) => t,
                        Err(e) => unreachable!("one value always fits shape [1]: {e:?}"),
                    };
                    let coeff = w.add(&tape.constant(shift_t));
                    let branch = cell.ops[oi].forward(tape, &h, train).scale_by(&coeff);
                    acc = Some(match acc {
                        None => branch,
                        Some(a) => a.add(&branch),
                    });
                }
                h = match acc {
                    Some(sum) => sum,
                    None => unreachable!("top_k >= 1 guarantees a branch"),
                };
            } else {
                // Evaluation: argmax path, or a hard-Gumbel sample when
                // rollout-time sampling is enabled (Eq. 6 in Alg. 1).
                let oi = if self.eval_sampling.get() {
                    self.gumbel
                        .borrow_mut()
                        .hard(&self.arch.logits(ci), tau)
                } else {
                    self.arch.argmax()[ci]
                };
                sample.push(oi);
                h = cell.ops[oi].forward(tape, &h, train);
            }
        }
        *self.last_sample.borrow_mut() = sample;
        let pooled = GlobalAvgPool::new().forward(tape, &h, train);
        self.head_fc.forward(tape, &pooled, train).relu()
    }

    fn params(&self) -> Vec<Param> {
        // Supernet *weights* θ only; α lives in `arch()` and is updated by
        // its own optimiser (one-level optimisation updates both, but with
        // different optimisers and learning rates).
        let mut p = self.stem.params();
        for cell in &self.cells {
            for op in &cell.ops {
                p.extend(op.params());
            }
        }
        p.extend(self.head_fc.params());
        p
    }

    fn state(&self) -> Vec<Param> {
        // Batch-norm running statistics of the stem and every candidate
        // operator: they steer eval-mode forwards (rollouts, evaluations),
        // so checkpoints must carry them for bit-exact resume.
        let mut s = self.stem.state();
        for cell in &self.cells {
            for op in &cell.ops {
                s.extend(op.state());
            }
        }
        s.extend(self.head_fc.state());
        s
    }

    fn describe(&self, input: FeatureShape) -> (Vec<LayerDesc>, FeatureShape) {
        // Describe the most-likely (argmax-α) single-path network — the
        // proxy the hardware-cost penalty evaluates (Section IV-A).
        let (mut descs, mut shape) = self.stem.describe(input);
        for (ci, &oi) in self.arch.argmax().iter().enumerate() {
            let (d, s) = self.cells[ci].ops[oi].describe(shape);
            descs.extend(d);
            shape = s;
        }
        let FeatureShape::Image { channels, .. } = shape else {
            unreachable!("every candidate operator preserves the image shape")
        };
        let (d, s) = self
            .head_fc
            .describe(FeatureShape::Flat { features: channels });
        descs.extend(d);
        (descs, s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SuperNet {
        SuperNet::new(SupernetConfig::tiny(3, 12, 12), 7)
    }

    #[test]
    fn cell_plan_has_group_transitions() {
        let cfg = SupernetConfig::paper(4, 12, 12);
        let plan = cfg.cell_plan();
        assert_eq!(plan.len(), 12);
        assert_eq!(plan[0], (8, 8, 1));
        assert_eq!(plan[4], (8, 16, 2));
        assert_eq!(plan[8], (16, 32, 2));
        assert_eq!(plan[11], (32, 32, 1));
    }

    #[test]
    fn forward_shapes_train_and_eval() {
        let sn = tiny();
        let tape = Tape::new();
        let x = tape.leaf(Tensor::randn(&[2, 3, 12, 12], 0.3, 1));
        let y_train = sn.forward(&tape, &x, true);
        assert_eq!(y_train.shape(), vec![2, 32]);
        let y_eval = sn.forward(&tape, &x, false);
        assert_eq!(y_eval.shape(), vec![2, 32]);
        assert!(y_train.value().all_finite());
    }

    #[test]
    fn training_forward_samples_vary_but_eval_is_argmax() {
        let sn = tiny();
        let tape = Tape::new();
        let x = tape.leaf(Tensor::zeros(&[1, 3, 12, 12]));
        let mut samples = std::collections::HashSet::new();
        for _ in 0..10 {
            let _ = sn.forward(&tape, &x, true);
            samples.insert(format!("{:?}", sn.last_sampled_arch()));
        }
        assert!(samples.len() > 1, "uniform α must sample diverse paths");
        let _ = sn.forward(&tape, &x, false);
        assert_eq!(sn.last_sampled_arch(), sn.most_likely_arch());
    }

    #[test]
    fn alpha_receives_gradient_through_st_estimator() {
        let sn = tiny();
        let tape = Tape::new();
        let x = tape.leaf(Tensor::randn(&[1, 3, 12, 12], 0.3, 2));
        let y = sn.forward(&tape, &x, true);
        y.square().sum().backward();
        let alpha_grads: f32 = sn
            .arch()
            .params()
            .iter()
            .map(|p| p.grad().sq_norm())
            .sum();
        assert!(alpha_grads > 0.0, "α must receive gradient");
    }

    #[test]
    fn weights_exclude_alpha() {
        let sn = tiny();
        let weight_names: Vec<String> =
            sn.params().iter().map(|p| p.name().to_owned()).collect();
        assert!(weight_names.iter().all(|n| !n.starts_with("alpha")));
        assert_eq!(sn.arch().params().len(), sn.num_cells());
    }

    #[test]
    fn temperature_follows_schedule() {
        let sn = tiny();
        let t0 = sn.temperature();
        sn.set_step(10_000);
        assert!(sn.temperature() < t0);
    }

    #[test]
    fn describe_follows_argmax_choice() {
        let sn = tiny();
        // Force cell 0 to 'skip' (identity: contributes no layers).
        sn.arch().cell(0).update(|t| t.data_mut()[8] = 10.0);
        let descs_skip = sn.most_likely_layer_descs();
        sn.arch().cell(0).update(|t| {
            t.data_mut()[8] = 0.0;
            t.data_mut()[7] = 10.0; // ir_k5_e5: 3 layers
        });
        let descs_ir = sn.most_likely_layer_descs();
        assert!(descs_ir.len() > descs_skip.len());
    }

    #[test]
    fn candidate_layer_descs_cover_all_ops() {
        let sn = tiny();
        let cands = sn.candidate_layer_descs();
        assert_eq!(cands.len(), sn.num_cells());
        for cell in &cands {
            assert_eq!(cell.len(), ALL_OPS.len());
        }
    }

    #[test]
    fn eval_sampling_toggles_path_choice() {
        let sn = tiny();
        let tape = Tape::new();
        let x = tape.leaf(Tensor::zeros(&[1, 3, 12, 12]));
        // Off (default): eval forward always records the argmax path.
        let _ = sn.forward(&tape, &x, false);
        assert_eq!(sn.last_sampled_indices(), sn.arch().argmax());
        // On: with uniform α the sampled paths vary across forwards.
        sn.set_eval_sampling(true);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..10 {
            let _ = sn.forward(&tape, &x, false);
            distinct.insert(sn.last_sampled_indices());
        }
        assert!(distinct.len() > 1, "eval sampling must explore paths");
        sn.set_eval_sampling(false);
        let _ = sn.forward(&tape, &x, false);
        assert_eq!(sn.last_sampled_indices(), sn.arch().argmax());
    }

    #[test]
    fn top_k_one_is_pure_single_path() {
        let mut cfg = SupernetConfig::tiny(3, 12, 12);
        cfg.top_k = 1;
        let sn = SuperNet::new(cfg, 3);
        let tape = Tape::new();
        let x = tape.leaf(Tensor::randn(&[1, 3, 12, 12], 0.3, 4));
        let y = sn.forward(&tape, &x, true);
        assert_eq!(y.shape(), vec![1, 32]);
    }
}
