//! Shape bookkeeping helpers shared by [`crate::Tensor`] and the autograd ops.

use std::error::Error;
use std::fmt;

/// Error returned when constructing a tensor from mismatched data and shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    expected: usize,
    actual: usize,
    shape: Vec<usize>,
}

impl ShapeError {
    pub(crate) fn new(shape: &[usize], actual: usize) -> Self {
        Self {
            expected: num_elements(shape),
            actual,
            shape: shape.to_vec(),
        }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shape {:?} requires {} elements but {} were provided",
            self.shape, self.expected, self.actual
        )
    }
}

impl Error for ShapeError {}

/// Total number of elements implied by `shape`.
///
/// The empty shape `[]` denotes a scalar and has one element.
///
/// # Example
///
/// ```
/// assert_eq!(a3cs_tensor::num_elements(&[2, 3, 4]), 24);
/// assert_eq!(a3cs_tensor::num_elements(&[]), 1);
/// ```
#[must_use]
pub fn num_elements(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Row-major (C-order) strides for `shape`.
///
/// # Example
///
/// ```
/// assert_eq!(a3cs_tensor::strides_for(&[2, 3, 4]), vec![12, 4, 1]);
/// ```
#[must_use]
pub fn strides_for(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![1; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    strides
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_elements_of_scalar_is_one() {
        assert_eq!(num_elements(&[]), 1);
    }

    #[test]
    fn num_elements_with_zero_dim_is_zero() {
        assert_eq!(num_elements(&[3, 0, 2]), 0);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(strides_for(&[4]), vec![1]);
        assert_eq!(strides_for(&[2, 5]), vec![5, 1]);
        assert_eq!(strides_for(&[2, 3, 4]), vec![12, 4, 1]);
    }

    #[test]
    fn strides_of_scalar_is_empty() {
        assert!(strides_for(&[]).is_empty());
    }

    #[test]
    fn shape_error_display_mentions_counts() {
        let err = ShapeError::new(&[2, 2], 3);
        let msg = err.to_string();
        assert!(msg.contains('4') && msg.contains('3'), "{msg}");
    }
}
