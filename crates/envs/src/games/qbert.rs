//! Q*bert: hop across a pyramid, recolouring cells, dodging the ball.

use crate::env::{Canvas, Environment, StepOutcome};
use crate::state::{EnvState, RestoreError, StateReader, StateWriter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ROWS: usize = 7;
const GRID: usize = 12;
const LIVES: u32 = 3;

/// Q*bert stand-in: hop diagonally on a 7-row pyramid. First visit to a
/// cell pays `+1`; completing the pyramid pays `+10` and resets it. A ball
/// spawned at the top bounces down; contact (or hopping off the pyramid)
/// costs a life. Three lives per episode.
///
/// Actions: `0` no-op, `1` up-left, `2` up-right, `3` down-left,
/// `4` down-right (in pyramid coordinates).
#[derive(Debug, Clone)]
pub struct Qbert {
    rng: StdRng,
    /// `visited[r][i]` for pyramid cell `i` of row `r` (row r has r+1 cells).
    visited: Vec<Vec<bool>>,
    player: (usize, usize),
    ball: Option<(usize, usize)>,
    lives: u32,
    clock: u32,
    ball_period: u32,
    done: bool,
}

impl Qbert {
    /// Create a seeded Q*bert game.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Qbert {
            rng: StdRng::seed_from_u64(seed),
            visited: (0..ROWS).map(|r| vec![false; r + 1]).collect(),
            player: (0, 0),
            ball: None,
            lives: LIVES,
            clock: 0,
            ball_period: 10,
            done: true,
        }
    }

    fn cell_to_grid(row: usize, idx: usize) -> (isize, isize) {
        // Centre the pyramid horizontally: row r spans r+1 cells.
        let r = row as isize + 2;
        let c = (GRID as isize - row as isize) / 2 + idx as isize;
        (r, c)
    }

    fn observe(&self) -> Vec<f32> {
        let mut canvas = Canvas::new(4, GRID, GRID);
        for (r, row) in self.visited.iter().enumerate() {
            for (i, &v) in row.iter().enumerate() {
                let (gr, gc) = Self::cell_to_grid(r, i);
                canvas.paint(usize::from(v), gr, gc, 1.0);
            }
        }
        let (pr, pi) = self.player;
        let (gr, gc) = Self::cell_to_grid(pr, pi);
        canvas.paint(2, gr, gc, 1.0);
        if let Some((br, bi)) = self.ball {
            let (gr, gc) = Self::cell_to_grid(br, bi);
            canvas.paint(3, gr, gc, 1.0);
        }
        canvas.into_observation()
    }

    fn all_visited(&self) -> bool {
        self.visited.iter().flatten().all(|&v| v)
    }

    fn respawn_player(&mut self) {
        self.player = (0, 0);
        self.ball = None;
    }

    /// Hop from `(row, idx)` in one of four diagonal directions; `None`
    /// means off the pyramid.
    fn hop(row: usize, idx: usize, action: usize) -> Option<(usize, usize)> {
        let (r, i) = (row as isize, idx as isize);
        let (nr, ni) = match action {
            1 => (r - 1, i - 1), // up-left
            2 => (r - 1, i),     // up-right
            3 => (r + 1, i),     // down-left
            4 => (r + 1, i + 1), // down-right
            _ => (r, i),
        };
        if nr < 0 || nr >= ROWS as isize || ni < 0 || ni > nr {
            None
        } else {
            Some((nr as usize, ni as usize))
        }
    }
}

impl Environment for Qbert {
    fn name(&self) -> &str {
        "Qbert"
    }

    fn observation_shape(&self) -> (usize, usize, usize) {
        (4, GRID, GRID)
    }

    fn action_count(&self) -> usize {
        5
    }

    fn reset(&mut self) -> Vec<f32> {
        self.visited = (0..ROWS).map(|r| vec![false; r + 1]).collect();
        self.respawn_player();
        self.lives = LIVES;
        self.clock = 0;
        self.ball_period = 10;
        self.done = false;
        self.visited[0][0] = true;
        self.observe()
    }

    fn step(&mut self, action: usize) -> StepOutcome {
        assert!(!self.done, "episode is over; call reset()");
        assert!(action < self.action_count(), "invalid action {action}");
        self.clock += 1;
        let mut reward = 0.0f32;

        if action != 0 {
            match Self::hop(self.player.0, self.player.1, action) {
                Some((nr, ni)) => {
                    self.player = (nr, ni);
                    if !self.visited[nr][ni] {
                        self.visited[nr][ni] = true;
                        reward += 1.0;
                    }
                }
                None => {
                    // Hopped off the pyramid.
                    self.lives -= 1;
                    if self.lives == 0 {
                        self.done = true;
                    } else {
                        self.respawn_player();
                    }
                }
            }
        }

        if !self.done {
            // Ball lifecycle: spawn at the top, bounce down-randomly, exit
            // at the bottom.
            match self.ball {
                None => {
                    if self.clock % self.ball_period == 0 {
                        self.ball = Some((0, 0));
                    }
                }
                Some((br, bi)) => {
                    if br + 1 >= ROWS {
                        self.ball = None;
                    } else {
                        let ni = if self.rng.gen_bool(0.5) { bi } else { bi + 1 };
                        self.ball = Some((br + 1, ni));
                    }
                }
            }
            if self.ball == Some(self.player) {
                self.lives -= 1;
                if self.lives == 0 {
                    self.done = true;
                } else {
                    self.respawn_player();
                }
            }
        }

        if !self.done && self.all_visited() {
            reward += 10.0;
            self.visited = (0..ROWS).map(|r| vec![false; r + 1]).collect();
            self.visited[self.player.0][self.player.1] = true;
            self.ball_period = (self.ball_period - 1).max(4);
        }

        StepOutcome {
            observation: self.observe(),
            reward,
            done: self.done,
        }
    }

    fn snapshot(&self) -> EnvState {
        let mut w = StateWriter::new("Qbert");
        w.rng(&self.rng);
        w.usize(self.visited.len());
        for row in &self.visited {
            w.usize(row.len());
            for &cell in row {
                w.bool(cell);
            }
        }
        w.usize(self.player.0);
        w.usize(self.player.1);
        w.bool(self.ball.is_some());
        if let Some(item) = &self.ball {
            w.usize(item.0);
            w.usize(item.1);
        }
        w.u32(self.lives);
        w.u32(self.clock);
        w.u32(self.ball_period);
        w.bool(self.done);
        w.finish()
    }

    fn restore(&mut self, state: &EnvState) -> Result<(), RestoreError> {
        let mut r = StateReader::new(state, "Qbert")?;
        self.rng = r.rng()?;
        let rows = r.len(4096)?;
        let mut visited = Vec::with_capacity(rows);
        for _ in 0..rows {
            let cols = r.len(4096)?;
            let mut row = Vec::with_capacity(cols);
            for _ in 0..cols {
                row.push(r.bool()?);
            }
            visited.push(row);
        }
        self.visited = visited;
        self.player = (r.usize()?, r.usize()?);
        self.ball = if r.bool()? {
            Some((r.usize()?, r.usize()?))
        } else {
            None
        };
        self.lives = r.u32()?;
        self.clock = r.u32()?;
        self.ball_period = r.u32()?;
        self.done = r.bool()?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::testkit::{assert_deterministic, random_rollout};

    #[test]
    fn deterministic_given_seed() {
        assert_deterministic(Qbert::new(41), Qbert::new(41), 300);
    }

    #[test]
    fn smoke_random_rollout() {
        let mut env = Qbert::new(1);
        let total = random_rollout(&mut env, 1000, 8);
        assert!(total >= 0.0);
    }

    #[test]
    fn first_visits_pay_once() {
        let mut env = Qbert::new(2);
        let _ = env.reset();
        let down = env.step(4);
        assert_eq!(down.reward, 1.0);
        let up = env.step(2);
        // Back to (0,0), already visited at reset.
        assert_eq!(up.reward, 0.0);
        assert_eq!(env.player, (0, 0));
    }

    #[test]
    fn hopping_off_pyramid_costs_life() {
        let mut env = Qbert::new(3);
        let _ = env.reset();
        let lives = env.lives;
        let _ = env.step(1); // up-left from the apex is off-pyramid
        assert_eq!(env.lives, lives - 1);
        assert_eq!(env.player, (0, 0));
    }

    #[test]
    fn hop_geometry() {
        assert_eq!(Qbert::hop(3, 1, 1), Some((2, 0)));
        assert_eq!(Qbert::hop(3, 1, 2), Some((2, 1)));
        assert_eq!(Qbert::hop(3, 1, 3), Some((4, 1)));
        assert_eq!(Qbert::hop(3, 1, 4), Some((4, 2)));
        assert_eq!(Qbert::hop(0, 0, 1), None);
        assert_eq!(Qbert::hop(6, 0, 3), None);
        assert_eq!(Qbert::hop(2, 2, 2), Some((1, 2)).filter(|&(r, i)| i <= r));
    }

    #[test]
    fn pyramid_cells_fit_on_canvas() {
        for r in 0..ROWS {
            for i in 0..=r {
                let (gr, gc) = Qbert::cell_to_grid(r, i);
                assert!((0..GRID as isize).contains(&gr));
                assert!((0..GRID as isize).contains(&gc), "row {r} idx {i} -> col {gc}");
            }
        }
    }
}
