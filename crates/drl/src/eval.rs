//! The paper's evaluation protocol: average score over 30 episodes with
//! null-op starts (Section V-A).
//!
//! # Determinism
//!
//! Episodes run as lockstep lanes: every still-active episode advances one
//! step per iteration, with the batched policy forward on the calling thread
//! and env stepping fanned out across the pool. Each episode owns an RNG
//! stream derived only from `(protocol.seed, episode)`, and the final score
//! sum runs in episode order on the calling thread, so the result is
//! bit-identical for every thread count and independent of `episodes`
//! (episode `i` scores the same whether 1 or 30 episodes run).

use crate::agent::{sample_index, ActorCritic};
use crate::rollout::{lane_stream_seed, EnvFactory};
use a3cs_envs::wrappers::{EpisodeLimit, NoopStart};
use a3cs_envs::Environment;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters of an evaluation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalProtocol {
    /// Number of episodes to average (paper: 30).
    pub episodes: usize,
    /// Maximum random no-ops applied at episode start (null-op starts).
    pub noop_max: usize,
    /// Hard episode step cap (keeps unbounded games finite).
    pub max_steps: usize,
    /// Base RNG seed (episode `i` uses `seed + i`).
    pub seed: u64,
    /// Greedy (argmax) instead of stochastic action selection.
    pub greedy: bool,
}

impl Default for EvalProtocol {
    fn default() -> Self {
        EvalProtocol {
            episodes: 30,
            noop_max: 8,
            max_steps: 400,
            seed: 10_000,
            greedy: false,
        }
    }
}

/// Average unclipped episode score of `agent` under `protocol`.
///
/// Each episode runs in a fresh environment from `factory` (seeded
/// per-episode), wrapped with null-op starts and a step cap; rewards are
/// *not* clipped, matching how the paper reports test scores.
#[must_use]
pub fn evaluate(agent: &ActorCritic, factory: &EnvFactory<'_>, protocol: &EvalProtocol) -> f32 {
    if protocol.episodes == 0 {
        return 0.0;
    }
    let _span = telemetry::span!("eval");
    telemetry::EVAL_EPISODES.add(protocol.episodes as u64);

    struct EvalLane {
        env: EpisodeLimit<NoopStart<Box<dyn Environment>>>,
        rng: StdRng,
        obs: Vec<f32>,
        score: f64,
        done: bool,
    }

    let mut lanes: Vec<EvalLane> = (0..protocol.episodes)
        .map(|ep| {
            let seed = protocol.seed.wrapping_add(ep as u64);
            let mut env = EpisodeLimit::new(
                NoopStart::new(factory(seed), protocol.noop_max, seed ^ 0xabcd),
                protocol.max_steps,
            );
            let obs = env.reset();
            EvalLane {
                env,
                rng: StdRng::seed_from_u64(lane_stream_seed(
                    protocol.seed ^ 0x5bd1_e995,
                    ep as u64,
                )),
                obs,
                score: 0.0,
                done: false,
            }
        })
        .collect();

    let n_actions = agent.n_actions();
    loop {
        let active = lanes.iter().filter(|l| !l.done).count();
        if active == 0 {
            break;
        }
        telemetry::EVAL_STEPS.add(active as u64);
        // Batch the still-active lanes in episode order; the policy forward
        // is row-independent, so each lane's action distribution does not
        // depend on which other lanes are still alive.
        let mut batch = Vec::new();
        for lane in lanes.iter().filter(|l| !l.done) {
            batch.extend_from_slice(&lane.obs);
        }
        let (probs, greedy_actions) = if protocol.greedy {
            (None, Some(agent.act_greedy(&batch, active)))
        } else {
            (Some(agent.policy_probs(&batch, active)), None)
        };
        let probs_data = probs.as_ref().map(|p| p.data());

        let mut slots: Vec<&mut EvalLane> = lanes.iter_mut().filter(|l| !l.done).collect();
        threadpool::current().parallel_chunks_mut(&mut slots, |start, chunk| {
            for (i, lane) in chunk.iter_mut().enumerate() {
                let row = start + i;
                let action = match (probs_data, &greedy_actions) {
                    (Some(pd), _) => {
                        sample_index(&pd[row * n_actions..(row + 1) * n_actions], &mut lane.rng)
                    }
                    (None, Some(acts)) => acts[row],
                    (None, None) => 0,
                };
                let out = lane.env.step(action);
                lane.score += f64::from(out.reward);
                if out.done {
                    lane.done = true;
                } else {
                    lane.obs = out.observation;
                }
            }
        });
    }

    // Deterministic reduction: sum scores in episode order on this thread.
    let total: f64 = lanes.iter().map(|l| l.score).sum();
    (total / protocol.episodes as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use a3cs_envs::{Atlantis, Breakout};
    use a3cs_nn::vanilla;

    fn agent(planes: usize, actions: usize, seed: u64) -> ActorCritic {
        let backbone = vanilla(planes, 12, 12, 16, seed);
        ActorCritic::new(Box::new(backbone), 16, (planes, 12, 12), actions, seed)
    }

    #[test]
    fn evaluation_is_deterministic_given_protocol() {
        let a = agent(3, 3, 1);
        let factory = |seed: u64| -> Box<dyn Environment> { Box::new(Breakout::new(seed)) };
        let protocol = EvalProtocol {
            episodes: 3,
            max_steps: 60,
            ..EvalProtocol::default()
        };
        let s1 = evaluate(&a, &factory, &protocol);
        let s2 = evaluate(&a, &factory, &protocol);
        assert_eq!(s1, s2);
    }

    #[test]
    fn different_seeds_change_episodes() {
        let a = agent(3, 4, 2);
        let factory = |seed: u64| -> Box<dyn Environment> { Box::new(Atlantis::new(seed)) };
        let p1 = EvalProtocol {
            episodes: 3,
            max_steps: 80,
            seed: 1,
            ..EvalProtocol::default()
        };
        let p2 = EvalProtocol { seed: 2, ..p1 };
        // Not a hard guarantee, but overwhelmingly likely on a stochastic game.
        assert_ne!(evaluate(&a, &factory, &p1), evaluate(&a, &factory, &p2));
    }

    #[test]
    fn evaluation_bit_identical_across_thread_counts() {
        let a = agent(3, 3, 5);
        let factory = |seed: u64| -> Box<dyn Environment> { Box::new(Breakout::new(seed)) };
        let protocol = EvalProtocol {
            episodes: 4,
            max_steps: 60,
            ..EvalProtocol::default()
        };
        let seq = threadpool::with_threads(1, || evaluate(&a, &factory, &protocol));
        let par = threadpool::with_threads(4, || evaluate(&a, &factory, &protocol));
        assert_eq!(seq.to_bits(), par.to_bits());
    }

    #[test]
    fn episode_scores_independent_of_episode_count() {
        // Episode i's RNG stream and environment seed depend only on
        // (protocol.seed, i), so adding more episodes must not perturb
        // earlier ones: the 1-episode average (exactly episode 0's score)
        // must be recoverable from the 2-episode average in f64.
        let a = agent(3, 3, 1);
        let factory = |seed: u64| -> Box<dyn Environment> { Box::new(Breakout::new(seed)) };
        let p1 = EvalProtocol {
            episodes: 1,
            max_steps: 60,
            ..EvalProtocol::default()
        };
        let p2 = EvalProtocol { episodes: 2, ..p1 };
        let ep0 = f64::from(evaluate(&a, &factory, &p1));
        let avg2 = f64::from(evaluate(&a, &factory, &p2));
        let ep1 = 2.0 * avg2 - ep0;
        // Scores on this game are small integers of f32-exact rewards, so
        // the reconstruction is exact if episode 0 was undisturbed.
        assert!(
            (ep1 - ep1.round()).abs() < 1e-6,
            "episode 0 score changed when a second episode was added: \
             ep0={ep0} avg2={avg2}"
        );
    }

    #[test]
    fn greedy_mode_runs() {
        let a = agent(3, 3, 3);
        let factory = |seed: u64| -> Box<dyn Environment> { Box::new(Breakout::new(seed)) };
        let protocol = EvalProtocol {
            episodes: 2,
            max_steps: 50,
            greedy: true,
            ..EvalProtocol::default()
        };
        let score = evaluate(&a, &factory, &protocol);
        assert!(score.is_finite());
    }
}
