//! Observability-plane proofs (ISSUE 9 acceptance): a fleet run with a
//! live `ObsServer` attached and polled concurrently is bit-identical to
//! the same run unobserved; the solo `run_guarded_observed` path likewise;
//! and the persisted `FleetReport` JSON is schema-versioned, byte-stable
//! and served verbatim at `/fleet`.

use a3cs::core::{CoSearch, CoSearchConfig, CoSearchResult};
use a3cs::envs::{Breakout, Environment};
use a3cs::fleet::{Fleet, FleetConfig, FleetReport};
use a3cs::obs::ObsServer;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn factory(seed: u64) -> Box<dyn Environment> {
    Box::new(Breakout::new(seed))
}

fn tiny_config(total_steps: u64) -> CoSearchConfig {
    let mut cfg = CoSearchConfig::tiny(3, 12, 12, 3);
    cfg.total_steps = total_steps;
    cfg.eval_every = 100;
    cfg.eval_episodes = 2;
    cfg.eval_max_steps = 40;
    cfg.das_final_iters = 50;
    cfg
}

fn curve_bits(curve: &[(u64, f32)]) -> Vec<(u64, u32)> {
    curve.iter().map(|&(s, v)| (s, v.to_bits())).collect()
}

fn assert_results_bit_identical(a: &CoSearchResult, b: &CoSearchResult) {
    assert_eq!(format!("{:?}", a.arch), format!("{:?}", b.arch));
    assert_eq!(
        format!("{:?}", a.accelerator),
        format!("{:?}", b.accelerator)
    );
    assert_eq!(curve_bits(&a.score_curve), curve_bits(&b.score_curve));
    assert_eq!(
        curve_bits(&a.alpha_entropy_curve),
        curve_bits(&b.alpha_entropy_curve)
    );
    assert_eq!(a.steps, b.steps);
    assert_eq!(a.report.fps.to_bits(), b.report.fps.to_bits());
}

fn run_fleet(observe: Option<&ObsServer>) -> FleetReport {
    let mut fleet = Fleet::new(FleetConfig {
        scheduler_seed: 7,
        ..FleetConfig::default()
    });
    for seed in 10..12u64 {
        fleet
            .submit(format!("s{seed}"), tiny_config(200), seed, factory)
            .expect("tiny config is admitted");
    }
    if let Some(server) = observe {
        fleet.attach_observer(Box::new(server.publisher(64)));
    }
    fleet.run_to_completion()
}

fn http_get(addr: SocketAddr, path: &str) -> Option<(u16, String)> {
    let mut stream = TcpStream::connect(addr).ok()?;
    let req = format!("GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n");
    stream.write_all(req.as_bytes()).ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    let code: u16 = response.split(' ').nth(1)?.parse().ok()?;
    let body = response.split("\r\n\r\n").nth(1)?.to_string();
    Some((code, body))
}

/// The tentpole acceptance proof: one run unobserved, one run with a live
/// server being hammered with `/metrics` + `/fleet` requests from another
/// thread the whole time. The two final reports must serialize to the
/// same bytes, and every per-session result must be bit-identical.
#[test]
fn fleet_run_with_live_polled_server_is_bit_identical_to_unobserved() {
    let unobserved = run_fleet(None);

    let server = ObsServer::bind_ephemeral().expect("bind ephemeral");
    let addr = server.addr();
    let stop = Arc::new(AtomicBool::new(false));
    let poller_stop = Arc::clone(&stop);
    let poller = std::thread::spawn(move || {
        let mut polls = 0u64;
        while !poller_stop.load(Ordering::Acquire) {
            if http_get(addr, "/metrics").is_some() {
                polls += 1;
            }
            let _ = http_get(addr, "/fleet");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        polls
    });

    let observed = run_fleet(Some(&server));

    // The final tick's publish happened before run_to_completion returned,
    // so the served /fleet body IS the final report, byte-for-byte.
    let (code, served) = http_get(addr, "/fleet").expect("fleet endpoint up");
    assert_eq!(code, 200);
    assert_eq!(served, observed.to_json());
    let (code, health) = http_get(addr, "/healthz").expect("health endpoint up");
    assert_eq!(code, 200);
    assert!(health.starts_with("{\"ready\":true,"));

    stop.store(true, Ordering::Release);
    let polls = poller.join().expect("poller joins");
    assert!(polls > 0, "the poller must have observed the run mid-flight");
    server.shutdown();

    assert_eq!(
        unobserved.to_json(),
        observed.to_json(),
        "live polling must not perturb the fleet trajectory"
    );
    for (a, b) in unobserved.sessions.iter().zip(observed.sessions.iter()) {
        let (a, b) = (
            a.result.as_ref().expect("done"),
            b.result.as_ref().expect("done"),
        );
        assert_results_bit_identical(a, b);
    }
}

/// Solo path: `run_guarded_observed` publishing through the same server
/// must be bit-identical to a plain `run_guarded`.
#[test]
fn solo_observed_run_is_bit_identical_to_unobserved() {
    let mut plain = CoSearch::try_new(tiny_config(200), 3).expect("pre-flight");
    let unobserved = plain
        .run_guarded(&factory, None)
        .expect("no faults scheduled");

    let server = ObsServer::bind_ephemeral().expect("bind ephemeral");
    let addr = server.addr();
    let mut publisher = server.publisher(64);
    let mut observed_search = CoSearch::try_new(tiny_config(200), 3).expect("pre-flight");
    let observed = observed_search
        .run_guarded_observed(&factory, None, |run| publisher.publish_solo("solo", run))
        .expect("no faults scheduled");

    assert!(publisher.publishes() > 0, "the hook must have fired");
    let (code, body) = http_get(addr, "/metrics").expect("metrics endpoint up");
    assert_eq!(code, 200);
    assert!(body.contains("a3cs_session_state{session=\"0\",name=\"solo\",state=\"running\"} 1"));
    let (code, body) = http_get(addr, "/fleet").expect("fleet endpoint up");
    assert_eq!(code, 200);
    assert!(body.starts_with("{\"schema\":2,"));
    server.shutdown();

    assert_results_bit_identical(&unobserved, &observed);
}

/// Satellite: the persisted report JSON is schema-versioned, byte-stable
/// across a write/read round-trip, and carries the result payload.
#[test]
fn fleet_report_json_round_trips_with_result_payload() {
    let report = run_fleet(None);
    let json = report.to_json();
    assert!(json.starts_with("{\"schema\":2,"));
    assert!(json.contains("\"result\":{\"steps\":200,"));
    assert!(json.contains("\"arch\":["));
    assert!(json.contains("\"score_curve\":[["));
    assert!(json.contains("\"state\":\"done\""));

    let path = std::env::temp_dir().join(format!(
        "a3cs_obs_report_{}.json",
        std::process::id()
    ));
    report.write_json(&path).expect("write");
    let read_back = std::fs::read_to_string(&path).expect("read");
    assert_eq!(read_back, format!("{json}\n"));
    std::fs::remove_file(&path).ok();

    // Determinism: the same fleet run serializes to the same bytes.
    assert_eq!(run_fleet(None).to_json(), json);
}
