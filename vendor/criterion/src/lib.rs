//! Offline vendored stand-in for `criterion`.
//!
//! Provides the API slice the workspace benches use — `Criterion` with
//! `warm_up_time`/`measurement_time`/`sample_size`, `bench_function`,
//! `benchmark_group`, `Bencher::iter`/`iter_batched`, `BatchSize`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple
//! wall-clock loop: calibrate with one iteration, scale the iteration
//! count to the measurement budget, report the mean time per iteration.
//! No statistics, plots, or result persistence.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` for criterion compatibility.
pub use std::hint::black_box;

/// How batched inputs are grouped; accepted and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Times one routine; handed to `bench_function` closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the harness-chosen number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` only, rebuilding its input with `setup` each
    /// iteration (setup time is excluded from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Set the warm-up budget.
    #[must_use]
    pub fn warm_up_time(mut self, duration: Duration) -> Self {
        self.warm_up = duration;
        self
    }

    /// Set the measurement budget.
    #[must_use]
    pub fn measurement_time(mut self, duration: Duration) -> Self {
        self.measurement = duration;
        self
    }

    /// Set the nominal sample count (bounds the iteration count).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };

        // Calibrate: single iterations until the warm-up budget is spent.
        let warm_start = Instant::now();
        let mut per_iter = Duration::from_secs(1);
        loop {
            f(&mut bencher);
            per_iter = per_iter.min(bencher.elapsed.max(Duration::from_nanos(1)));
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }

        // Measure: as many iterations as fit the budget, bounded so a
        // mis-calibration cannot hang the run.
        let budget = self.measurement.as_nanos();
        let iters = (budget / per_iter.as_nanos().max(1))
            .clamp(1, (self.sample_size.max(1) as u128) * 5_000) as u64;
        bencher.iters = iters;
        f(&mut bencher);
        let mean_ns = bencher.elapsed.as_nanos() as f64 / iters as f64;
        println!("{id:<44} time: [{}]  ({iters} iters)", format_ns(mean_ns));
        self
    }

    /// Start a named group; benchmark ids are prefixed with `name/`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }
}

/// A group of related benchmarks sharing an id prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.bench_function(full, f);
        self
    }

    /// End the group (no-op; kept for criterion compatibility).
    pub fn finish(self) {}
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Define a benchmark group function. Supports both the plain form
/// `criterion_group!(benches, f, g)` and the configured form
/// `criterion_group!{name = benches; config = ...; targets = f, g}`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define `main()` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(5)
    }

    #[test]
    fn bench_function_runs_the_routine() {
        let mut calls = 0u64;
        quick().bench_function("counting", |bench| {
            bench.iter(|| calls += 1);
        });
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_separates_setup_from_routine() {
        let mut setups = 0u64;
        let mut runs = 0u64;
        quick().bench_function("batched", |bench| {
            bench.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 16]
                },
                |v| {
                    runs += 1;
                    v.len()
                },
                BatchSize::SmallInput,
            );
        });
        assert!(setups > 0);
        assert_eq!(setups, runs);
    }

    #[test]
    fn groups_prefix_ids() {
        let mut criterion = quick();
        let mut group = criterion.benchmark_group("grp");
        group.bench_function("inner", |bench| bench.iter(|| 1 + 1));
        group.finish();
    }
}
