//! Accelerator legality checking against the FPGA resource model.
//!
//! Validates [`AcceleratorConfig`] instances (and the search setups that
//! produce them) in `O(config)` time so DAS, random and exhaustive search
//! can filter illegal points without invoking the performance predictor.

use crate::diag::{codes, Diagnostic, Report};
use a3cs_accel::{AcceleratorConfig, FpgaTarget, SearchSpace};

/// Bytes per activation/weight word in the on-chip buffers (fp16).
const WORD_BYTES: usize = 2;

/// Structural legality of an accelerator instance, independent of any
/// FPGA target: chunk sanity (`A3CS-E106`/`E107`/`E108`), assignment
/// coverage/range/contiguity (`A3CS-E103`–`E105`) and the idle-chunk and
/// guaranteed-thrash warnings (`A3CS-W201`/`W202`).
#[must_use]
pub fn check_accelerator_structure(accel: &AcceleratorConfig, num_layers: usize) -> Report {
    let mut report = Report::new();
    if accel.chunks.is_empty() {
        report.push(Diagnostic::error(
            codes::ACCEL_NO_CHUNKS,
            "accelerator has no chunks",
        ));
        return report;
    }
    for (ci, chunk) in accel.chunks.iter().enumerate() {
        if chunk.pe.rows == 0
            || chunk.pe.cols == 0
            || chunk.buffers.input_kb == 0
            || chunk.buffers.weight_kb == 0
            || chunk.buffers.output_kb == 0
        {
            report.push(Diagnostic::error(
                codes::ACCEL_DEGENERATE_CHUNK,
                format!(
                    "chunk {ci} is degenerate: {}x{} PEs, buffers {}+{}+{} KiB",
                    chunk.pe.rows,
                    chunk.pe.cols,
                    chunk.buffers.input_kb,
                    chunk.buffers.weight_kb,
                    chunk.buffers.output_kb
                ),
            ));
            continue;
        }
        let t = chunk.tiling;
        if t.tm == 0 || t.tn == 0 || t.tr == 0 || t.tc == 0 {
            report.push(Diagnostic::error(
                codes::ACCEL_ILLEGAL_TILING,
                format!(
                    "chunk {ci} has a zero tiling factor \
                     (Tm {}, Tn {}, Tr {}, Tc {})",
                    t.tm, t.tn, t.tr, t.tc
                ),
            ));
            continue;
        }
        // Smallest possible working set: a 1x1 stride-1 layer tiled at
        // exactly (Tm, Tn, Tr, Tc), double-buffered. If even that
        // overflows a bank, *every* layer thrashes on this chunk.
        let double = 2 * WORD_BYTES;
        let input_need = t.tn * t.tr * t.tc * double;
        let weight_need = t.tm * t.tn * double;
        let output_need = t.tm * t.tr * t.tc * double;
        if input_need > chunk.buffers.input_kb * 1024
            || weight_need > chunk.buffers.weight_kb * 1024
            || output_need > chunk.buffers.output_kb * 1024
        {
            report.push(Diagnostic::warning(
                codes::NUM_GUARANTEED_THRASH,
                format!(
                    "chunk {ci}: the minimal double-buffered tile working set \
                     ({input_need}/{weight_need}/{output_need} B) exceeds its \
                     buffer banks ({}/{}/{} KiB) — every layer will thrash",
                    chunk.buffers.input_kb, chunk.buffers.weight_kb, chunk.buffers.output_kb
                ),
            ));
        }
    }
    if accel.assignment.len() != num_layers {
        report.push(Diagnostic::error(
            codes::ACCEL_ASSIGNMENT_ARITY,
            format!(
                "assignment covers {} layers but the network has {num_layers}",
                accel.assignment.len()
            ),
        ));
        return report;
    }
    let mut out_of_range = false;
    for (li, &a) in accel.assignment.iter().enumerate() {
        if a >= accel.chunks.len() {
            report.push(Diagnostic::error(
                codes::ACCEL_ASSIGNMENT_RANGE,
                format!(
                    "layer {li} is assigned to chunk {a}, but only {} chunks exist",
                    accel.chunks.len()
                ),
            ));
            out_of_range = true;
        }
    }
    if out_of_range {
        return report;
    }
    if !accel.assignment_contiguous() {
        report.push(Diagnostic::error(
            codes::ACCEL_ASSIGNMENT_NONCONTIGUOUS,
            format!(
                "assignment {:?} is not non-decreasing: each pipeline chunk \
                 must own a contiguous layer interval",
                accel.assignment
            ),
        ));
    }
    if num_layers >= accel.chunks.len() {
        for ci in 0..accel.chunks.len() {
            if !accel.assignment.contains(&ci) {
                report.push(Diagnostic::warning(
                    codes::NUM_IDLE_CHUNK,
                    format!("chunk {ci} has no layers assigned: its resources idle"),
                ));
            }
        }
    }
    report
}

/// Full legality of an accelerator instance for `target`: the structural
/// checks plus the DSP (`A3CS-E101`) and BRAM (`A3CS-E102`) budgets.
#[must_use]
pub fn check_accelerator(
    accel: &AcceleratorConfig,
    num_layers: usize,
    target: &FpgaTarget,
) -> Report {
    let mut report = check_accelerator_structure(accel, num_layers);
    let pes = accel.total_pes();
    if pes > target.dsp_limit {
        report.push(Diagnostic::error(
            codes::ACCEL_DSP_OVERFLOW,
            format!(
                "design needs {pes} PEs (≈ DSPs) but the target has {}",
                target.dsp_limit
            ),
        ));
    }
    let kb = accel.total_buffer_kb();
    if kb > target.bram_kb_limit {
        report.push(Diagnostic::error(
            codes::ACCEL_BRAM_OVERFLOW,
            format!(
                "design needs {kb} KiB of on-chip buffer but the target has {} KiB",
                target.bram_kb_limit
            ),
        ));
    }
    report
}

/// Legality of a search *setup* before any sampling happens: the knob
/// lists must be non-empty and zero-free (`A3CS-E106`/`E107`), at least
/// one chunk must exist (`A3CS-E108`), and the assignment knobs must cover
/// the deepest network the search can be asked to map (`A3CS-E109`).
#[must_use]
pub fn check_search_setup(
    space: &SearchSpace,
    num_chunks: usize,
    max_layers: usize,
    required_layers: usize,
) -> Report {
    let mut report = Report::new();
    if num_chunks == 0 {
        report.push(Diagnostic::error(
            codes::ACCEL_NO_CHUNKS,
            "search is configured with zero chunks",
        ));
    }
    for (name, options) in [
        ("pe_rows", &space.pe_rows),
        ("pe_cols", &space.pe_cols),
        ("buffer_totals_kb", &space.buffer_totals_kb),
    ] {
        if options.is_empty() || options.contains(&0) {
            report.push(Diagnostic::error(
                codes::ACCEL_DEGENERATE_CHUNK,
                format!("search-space knob `{name}` is empty or offers 0: {options:?}"),
            ));
        }
    }
    for (name, options) in [
        ("tm", &space.tm),
        ("tn", &space.tn),
        ("tr", &space.tr),
        ("tc", &space.tc),
    ] {
        if options.is_empty() || options.contains(&0) {
            report.push(Diagnostic::error(
                codes::ACCEL_ILLEGAL_TILING,
                format!("tiling knob `{name}` is empty or offers 0: {options:?}"),
            ));
        }
    }
    if space.nocs.is_empty() || space.dataflows.is_empty() {
        report.push(Diagnostic::error(
            codes::ACCEL_DEGENERATE_CHUNK,
            "search space offers no NoC or no dataflow options",
        ));
    }
    if required_layers > max_layers {
        report.push(Diagnostic::error(
            codes::ACCEL_DEPTH_EXCEEDS_KNOBS,
            format!(
                "the deepest derivable network has {required_layers} layers \
                 but the search only carries {max_layers} assignment knobs"
            ),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use a3cs_accel::{BufferAlloc, ChunkConfig, Dataflow, NocTopology, PeArray, Tiling};

    fn chunk(rows: usize, cols: usize, buffer_kb: usize) -> ChunkConfig {
        ChunkConfig {
            pe: PeArray { rows, cols },
            noc: NocTopology::Systolic,
            dataflow: Dataflow::OutputStationary,
            buffers: BufferAlloc {
                input_kb: buffer_kb,
                weight_kb: buffer_kb,
                output_kb: buffer_kb,
            },
            tiling: Tiling {
                tm: 8,
                tn: 8,
                tr: 4,
                tc: 4,
            },
        }
    }

    fn two_chunk(assignment: Vec<usize>) -> AcceleratorConfig {
        AcceleratorConfig {
            chunks: vec![chunk(8, 8, 32), chunk(8, 8, 32)],
            assignment,
        }
    }

    #[test]
    fn legal_design_is_clean() {
        let accel = two_chunk(vec![0, 0, 1, 1]);
        let report = check_accelerator(&accel, 4, &FpgaTarget::zc706());
        assert!(report.is_clean(), "{report}");
        assert!(report.warnings().is_empty(), "{report}");
    }

    #[test]
    fn dsp_overflow_is_e101() {
        let accel = AcceleratorConfig {
            chunks: vec![chunk(32, 32, 32)],
            assignment: vec![0, 0],
        };
        let report = check_accelerator(&accel, 2, &FpgaTarget::zc706());
        assert!(report.has_code(codes::ACCEL_DSP_OVERFLOW), "{report}");
    }

    #[test]
    fn bram_overflow_is_e102() {
        let accel = AcceleratorConfig {
            chunks: vec![chunk(8, 8, 1024)],
            assignment: vec![0, 0],
        };
        let report = check_accelerator(&accel, 2, &FpgaTarget::zc706());
        assert!(report.has_code(codes::ACCEL_BRAM_OVERFLOW), "{report}");
    }

    #[test]
    fn assignment_arity_is_e103() {
        let accel = two_chunk(vec![0, 1]);
        let report = check_accelerator_structure(&accel, 5);
        assert!(report.has_code(codes::ACCEL_ASSIGNMENT_ARITY), "{report}");
    }

    #[test]
    fn assignment_range_is_e104() {
        let accel = two_chunk(vec![0, 0, 2, 1]);
        let report = check_accelerator_structure(&accel, 4);
        assert!(report.has_code(codes::ACCEL_ASSIGNMENT_RANGE), "{report}");
    }

    #[test]
    fn interleaved_assignment_is_e105() {
        let accel = two_chunk(vec![0, 1, 0, 1]);
        let report = check_accelerator_structure(&accel, 4);
        assert!(
            report.has_code(codes::ACCEL_ASSIGNMENT_NONCONTIGUOUS),
            "{report}"
        );
    }

    #[test]
    fn zero_tiling_is_e106() {
        let mut bad = chunk(8, 8, 32);
        bad.tiling.tn = 0;
        let accel = AcceleratorConfig {
            chunks: vec![bad],
            assignment: vec![0],
        };
        let report = check_accelerator_structure(&accel, 1);
        assert!(report.has_code(codes::ACCEL_ILLEGAL_TILING), "{report}");
    }

    #[test]
    fn degenerate_chunk_is_e107() {
        let accel = AcceleratorConfig {
            chunks: vec![chunk(0, 8, 32)],
            assignment: vec![0],
        };
        let report = check_accelerator_structure(&accel, 1);
        assert!(report.has_code(codes::ACCEL_DEGENERATE_CHUNK), "{report}");
    }

    #[test]
    fn no_chunks_is_e108() {
        let accel = AcceleratorConfig {
            chunks: Vec::new(),
            assignment: Vec::new(),
        };
        let report = check_accelerator_structure(&accel, 0);
        assert!(report.has_code(codes::ACCEL_NO_CHUNKS), "{report}");
    }

    #[test]
    fn idle_chunk_is_w202_but_stays_clean() {
        let accel = two_chunk(vec![0, 0, 0, 0]);
        let report = check_accelerator_structure(&accel, 4);
        assert!(report.is_clean(), "{report}");
        assert!(report.has_code(codes::NUM_IDLE_CHUNK), "{report}");
    }

    #[test]
    fn undersized_buffers_are_w201() {
        let mut cramped = chunk(8, 8, 32);
        cramped.buffers = BufferAlloc {
            input_kb: 1,
            weight_kb: 1,
            output_kb: 1,
        };
        cramped.tiling = Tiling {
            tm: 32,
            tn: 16,
            tr: 8,
            tc: 8,
        };
        let accel = AcceleratorConfig {
            chunks: vec![cramped],
            assignment: vec![0],
        };
        let report = check_accelerator_structure(&accel, 1);
        assert!(report.is_clean(), "{report}");
        assert!(report.has_code(codes::NUM_GUARANTEED_THRASH), "{report}");
    }

    #[test]
    fn default_search_setup_is_clean() {
        let report = check_search_setup(&SearchSpace::default(), 4, 48, 38);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn depth_overflow_is_e109() {
        let report = check_search_setup(&SearchSpace::default(), 4, 10, 38);
        assert!(report.has_code(codes::ACCEL_DEPTH_EXCEEDS_KNOBS), "{report}");
    }

    #[test]
    fn zero_tile_option_is_rejected() {
        let space = SearchSpace {
            tr: vec![0, 2],
            ..SearchSpace::default()
        };
        let report = check_search_setup(&space, 2, 16, 8);
        assert!(report.has_code(codes::ACCEL_ILLEGAL_TILING), "{report}");
    }

    #[test]
    fn zero_chunks_setup_is_e108() {
        let report = check_search_setup(&SearchSpace::default(), 0, 16, 8);
        assert!(report.has_code(codes::ACCEL_NO_CHUNKS), "{report}");
    }
}
