//! Offline vendored stand-in for `serde`.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! minimal serialization facade. Instead of serde's visitor architecture,
//! [`Serialize`] converts values into a JSON-shaped [`Value`] tree and
//! [`Deserialize`] reads them back out. The companion `serde_json` crate
//! renders/parses that tree as JSON text. The derives (`#[derive(Serialize,
//! Deserialize)]`) come from the vendored `serde_derive` and cover exactly
//! the shapes this workspace uses: named-field structs and unit enums.

#![deny(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped dynamic value: the serialization data model.
///
/// Object fields keep insertion order so serialized output is stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (stored as `f64`, like JavaScript).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The number as `f64`, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The number as `i64`, if this is an integral number.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n)
                if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 =>
            {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element vector, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Array element by index (`None` if not an array or out of range).
    #[must_use]
    pub fn get(&self, index: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(index),
            _ => None,
        }
    }

    /// Object field by name, as an error if absent (used by the derive).
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] if this is not an object or the field is missing.
    pub fn get_field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::msg(format!("missing field `{name}`"))),
            other => Err(Error::msg(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Short name of the variant, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// `value["field"]` object lookup; missing fields yield `Value::Null`,
/// matching `serde_json`'s `Index` behaviour.
impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map_or(&NULL, |(_, v)| v),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from a message.
    #[must_use]
    pub fn msg(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Represent `self` as a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] describing the first shape mismatch.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::msg(format!("expected bool, found {}", v.kind())))
    }
}

macro_rules! number_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_f64().ok_or_else(|| {
                    Error::msg(format!(
                        "expected {}, found {}",
                        stringify!($t),
                        v.kind()
                    ))
                })?;
                let cast = n as $t;
                // Integers must survive the f64 round trip exactly; floats
                // accept whatever precision the f64 carries.
                if (cast as f64 != n) && n.fract() == 0.0 {
                    return Err(Error::msg(format!(
                        "number {n} out of range for {}",
                        stringify!($t)
                    )));
                }
                Ok(cast)
            }
        }
    )*};
}

number_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(ToOwned::to_owned)
            .ok_or_else(|| Error::msg(format!("expected string, found {}", v.kind())))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg(format!("expected array, found {}", v.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_array().map(Vec::as_slice) {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::msg(format!(
                "expected 2-element array, found {}",
                v.kind()
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_array().map(Vec::as_slice) {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(Error::msg(format!(
                "expected 3-element array, found {}",
                v.kind()
            ))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(Error::msg(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_eq_behave_like_serde_json() {
        let v = Value::Object(vec![
            ("game".into(), Value::Str("Pong".into())),
            ("fps".into(), Value::Num(30.0)),
        ]);
        assert!(v["game"] == "Pong");
        assert_eq!(v["fps"].as_f64(), Some(30.0));
        assert_eq!(v["missing"], Value::Null);
        assert_eq!(v["missing"].as_f64(), None);
    }

    #[test]
    fn numbers_round_trip_through_value() {
        assert_eq!(u64::from_value(&42usize.to_value()), Ok(42));
        assert_eq!(f32::from_value(&1.5f32.to_value()), Ok(1.5));
        assert!(u8::from_value(&Value::Num(300.0)).is_err());
        assert!(usize::from_value(&Value::Str("7".into())).is_err());
    }

    #[test]
    fn containers_round_trip() {
        let xs = vec![(1u64, 2.5f32), (3, 4.5)];
        assert_eq!(Vec::<(u64, f32)>::from_value(&xs.to_value()), Ok(xs));
        let opt: Option<u32> = None;
        assert_eq!(opt.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
    }
}

// PartialEq for Result<T, Error> in tests needs Error: PartialEq.
impl PartialEq for Error {
    fn eq(&self, other: &Self) -> bool {
        self.msg == other.msg
    }
}
