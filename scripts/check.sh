#!/usr/bin/env bash
# Full local verification gate: build, test, static lint ratchet, and a
# clippy-clean a3cs-check crate. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> crash-resume equivalence + fault-injection smoke"
cargo test -q --test fault_tolerance

echo "==> telemetry smoke (tiny co-search, JSONL schema + phase spans)"
cargo run -q --release -p a3cs-bench --bin telemetry_smoke

echo "==> supervision smoke (worker panic + stall contained in-process)"
cargo run -q --release -p a3cs-bench --bin supervision_smoke

echo "==> memo smoke (cost-cache bit-identity + hit-rate floor + beam determinism)"
cargo run -q --release -p a3cs-bench --bin memo_smoke

echo "==> fleet smoke (4 sessions, injected crash isolated + one restart)"
cargo run -q --release -p a3cs-bench --bin fleet_smoke

echo "==> obs smoke (live /metrics + /healthz + /fleet validated end-to-end)"
cargo run -q --release -p a3cs-bench --bin obs_smoke

echo "==> ckpt smoke (delta chain bit-rot quarantined + fallback bit-identical)"
cargo run -q --release -p a3cs-bench --bin ckpt_smoke

echo "==> a3cs-check determinism lint (deny new findings + stale allowlist)"
cargo run -q -p a3cs-check --bin lint -- --deny-new

echo "==> threadpool tests under -D warnings"
RUSTFLAGS="-D warnings" cargo test -q -p threadpool

echo "==> clippy (a3cs-check, -D warnings)"
cargo clippy -q -p a3cs-check --all-targets --no-deps -- -D warnings

echo "all checks passed"
