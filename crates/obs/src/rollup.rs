//! Rolling aggregation: per-phase latency stats and per-session rollups
//! over a fixed-size window (DESIGN.md §16).
//!
//! The [`Aggregator`] is the single producer of [`ObsSnapshot`]s. It is
//! driven at tick boundaries (fleet observer or solo-run hook), reads the
//! telemetry spine *non-destructively* — `telemetry::metrics_snapshot()`
//! is relaxed atomic loads, `telemetry::snapshot()` clones the record sink
//! — and pushes each publish into ring buffers so short windows of history
//! survive for lag estimation. Nothing here mutates search state, so
//! aggregation preserves the observe-only guarantee.

use crate::ring::Ring;
use a3cs_fleet::{FleetReport, SessionReport};
use a3cs_core::RobustnessEventKind;
use std::collections::BTreeMap;
use telemetry::MetricsSnapshot;

/// Latency rollup of one span family (phase), cumulative over the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStats {
    /// Span name (`iteration`, `drl.train`, `das.sweep`, ...).
    pub name: String,
    /// Spans recorded.
    pub count: u64,
    /// Total latency across those spans, in nanoseconds.
    pub total_ns: u64,
    /// Worst single span, in nanoseconds.
    pub max_ns: u64,
}

/// One session's health rollup at a publish point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionRollup {
    /// Submission index.
    pub id: u64,
    /// Caller-supplied display name.
    pub name: String,
    /// Stable state label (`SessionState::label`).
    pub state: String,
    /// Env steps consumed (live, or the final total when done).
    pub steps: u64,
    /// Restarts spent.
    pub restarts: u32,
    /// Checkpoint bytes persisted across attempts.
    pub checkpoint_bytes_written: u64,
    /// Checkpoint restores (auto-resumes + rollbacks).
    pub checkpoint_restores: u64,
    /// Delta checkpoint frames persisted across attempts.
    pub checkpoint_delta_frames: u64,
    /// Broken frames quarantined by resume-time scrubs across attempts.
    pub checkpoint_quarantined: u64,
    /// Publishes since `checkpoint_bytes_written` last advanced (0 when it
    /// advanced this publish), saturating at the window size — the
    /// "checkpoint lag" a dashboard alerts on.
    pub checkpoint_lag: u64,
    /// `fault-injected` events observed in the session's logs.
    pub fault_events: u64,
    /// `lane-quarantined` events.
    pub quarantine_events: u64,
    /// `phase-stalled` watchdog events (the stall score).
    pub stall_events: u64,
    /// `phase-retried` supervised retries.
    pub retry_events: u64,
    /// `rolled-back` divergence recoveries.
    pub rollback_events: u64,
}

/// Everything the exposition service renders, produced by one publish.
#[derive(Debug, Clone)]
pub struct ObsSnapshot {
    /// Monotonic publish counter (1 on the first publish).
    pub seq: u64,
    /// Scheduler ticks consumed (solo runs: outer-loop iteration).
    pub ticks: u64,
    /// Shared-pool budget — the degradation ladder's current rung.
    pub pool_budget: usize,
    /// Session faults observed fleet-wide.
    pub total_faults: u64,
    /// Sessions submitted.
    pub sessions_total: usize,
    /// Sessions in a terminal state.
    pub sessions_terminal: usize,
    /// Memoisation hit rate `hits / (hits + misses)`, when any lookup ran.
    pub memo_hit_rate: Option<f64>,
    /// Per-phase latency rollups, sorted by phase name.
    pub phases: Vec<PhaseStats>,
    /// Per-session rollups, in submission order.
    pub sessions: Vec<SessionRollup>,
    /// Raw catalog snapshot (counters / gauges / histograms).
    pub metrics: MetricsSnapshot,
}

/// Tick-boundary aggregator holding the rolling windows.
#[derive(Debug)]
pub struct Aggregator {
    phases: Ring<Vec<PhaseStats>>,
    sessions: Ring<Vec<SessionRollup>>,
    seq: u64,
}

impl Aggregator {
    /// An aggregator whose rings hold `window` publishes (clamped ≥ 1).
    #[must_use]
    pub fn new(window: usize) -> Aggregator {
        Aggregator {
            phases: Ring::new(window),
            sessions: Ring::new(window),
            seq: 0,
        }
    }

    /// Aggregate one publish: fold the fleet report and the current
    /// telemetry state into an [`ObsSnapshot`] and remember it in the
    /// rolling windows.
    pub fn publish(&mut self, report: &FleetReport) -> ObsSnapshot {
        self.seq += 1;
        let metrics = telemetry::metrics_snapshot();
        let phases = phase_stats(&telemetry::snapshot());
        let sessions: Vec<SessionRollup> = report
            .sessions
            .iter()
            .map(|s| self.session_rollup(s))
            .collect();
        self.phases.push(phases.clone());
        self.sessions.push(sessions.clone());
        let hits = metrics.counter("memo.hits");
        let misses = metrics.counter("memo.misses");
        let lookups = hits + misses;
        ObsSnapshot {
            seq: self.seq,
            ticks: report.ticks,
            pool_budget: report.pool_budget,
            total_faults: report.total_faults,
            sessions_total: report.sessions.len(),
            sessions_terminal: report
                .sessions
                .iter()
                .filter(|s| s.state.is_terminal())
                .count(),
            memo_hit_rate: (lookups > 0).then(|| hits as f64 / lookups as f64),
            phases,
            sessions,
            metrics,
        }
    }

    /// Publishes aggregated so far.
    #[must_use]
    pub fn publishes(&self) -> u64 {
        self.seq
    }

    /// The phase-latency history window, oldest → newest.
    pub fn phase_window(&self) -> impl Iterator<Item = &[PhaseStats]> {
        self.phases.iter().map(Vec::as_slice)
    }

    /// The session-rollup history window, oldest → newest.
    pub fn session_window(&self) -> impl Iterator<Item = &[SessionRollup]> {
        self.sessions.iter().map(Vec::as_slice)
    }

    fn session_rollup(&self, s: &SessionReport) -> SessionRollup {
        let mut faults = 0;
        let mut quarantines = 0;
        let mut stalls = 0;
        let mut retries = 0;
        let mut rollbacks = 0;
        for event in s.robustness.events.iter().chain(s.fleet_events.events.iter()) {
            match event.kind {
                RobustnessEventKind::FaultInjected => faults += 1,
                RobustnessEventKind::LaneQuarantined => quarantines += 1,
                RobustnessEventKind::PhaseStalled => stalls += 1,
                RobustnessEventKind::PhaseRetried => retries += 1,
                RobustnessEventKind::RolledBack => rollbacks += 1,
                _ => {}
            }
        }
        SessionRollup {
            id: s.id.index(),
            name: s.name.clone(),
            state: s.state.label().to_string(),
            steps: s.steps,
            restarts: s.restarts,
            checkpoint_bytes_written: s.checkpoint_bytes_written,
            checkpoint_restores: s.checkpoint_restores,
            checkpoint_delta_frames: s.checkpoint_delta_frames,
            checkpoint_quarantined: s.checkpoint_quarantined,
            checkpoint_lag: self.checkpoint_lag(s.id.index(), s.checkpoint_bytes_written),
            fault_events: faults,
            quarantine_events: quarantines,
            stall_events: stalls,
            retry_events: retries,
            rollback_events: rollbacks,
        }
    }

    /// Count how many consecutive window entries (newest first) already
    /// show `bytes` for this session — i.e. for how many publishes the
    /// checkpoint store has not advanced.
    fn checkpoint_lag(&self, id: u64, bytes: u64) -> u64 {
        let mut lag = 0;
        let window: Vec<&Vec<SessionRollup>> = self.sessions.iter().collect();
        for sample in window.iter().rev() {
            match sample.iter().find(|r| r.id == id) {
                Some(r) if r.checkpoint_bytes_written == bytes => lag += 1,
                _ => break,
            }
        }
        lag
    }
}

/// Per-phase latency stats for one session's fault domain: the fleet
/// trace is split with [`telemetry::Trace::for_session`] (records tagged
/// with the session id), then folded like [`phase_stats`]. Pass `None`
/// for untagged (solo / outside-any-session) records.
#[must_use]
pub fn session_phase_stats(trace: &telemetry::Trace, session: Option<u64>) -> Vec<PhaseStats> {
    phase_stats(&trace.for_session(session))
}

/// Fold a trace's spans into per-phase latency stats, sorted by name.
#[must_use]
pub fn phase_stats(trace: &telemetry::Trace) -> Vec<PhaseStats> {
    let mut by_name: BTreeMap<&'static str, PhaseStats> = BTreeMap::new();
    for span in trace.spans() {
        let dur = span.end_ns.saturating_sub(span.begin_ns);
        let entry = by_name.entry(span.name).or_insert_with(|| PhaseStats {
            name: span.name.to_string(),
            count: 0,
            total_ns: 0,
            max_ns: 0,
        });
        entry.count += 1;
        entry.total_ns += dur;
        entry.max_ns = entry.max_ns.max(dur);
    }
    by_name.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use a3cs_core::RobustnessLog;
    use a3cs_fleet::{SessionId, SessionState};

    fn report_with_bytes(bytes: u64) -> FleetReport {
        FleetReport {
            sessions: vec![SessionReport {
                id: SessionId::new(0),
                name: "s".to_string(),
                state: SessionState::Running,
                steps: 10,
                restarts: 0,
                result: None,
                robustness: RobustnessLog::new(),
                fleet_events: RobustnessLog::new(),
                checkpoint_bytes_written: bytes,
                checkpoint_restores: 0,
                checkpoint_delta_frames: 0,
                checkpoint_quarantined: 0,
            }],
            ticks: 1,
            pool_budget: 2,
            total_faults: 0,
            event_totals: BTreeMap::new(),
        }
    }

    #[test]
    fn checkpoint_lag_counts_stalled_publishes() {
        let mut agg = Aggregator::new(8);
        let first = agg.publish(&report_with_bytes(100));
        assert_eq!(first.sessions[0].checkpoint_lag, 0, "no history yet");
        let second = agg.publish(&report_with_bytes(100));
        assert_eq!(second.sessions[0].checkpoint_lag, 1);
        let third = agg.publish(&report_with_bytes(100));
        assert_eq!(third.sessions[0].checkpoint_lag, 2);
        let advanced = agg.publish(&report_with_bytes(160));
        assert_eq!(advanced.sessions[0].checkpoint_lag, 0, "bytes advanced");
        assert_eq!(agg.publishes(), 4);
    }

    #[test]
    fn session_phase_stats_split_a_tagged_trace() {
        use telemetry::{Payload, Record, SpanRecord, Trace};
        let span = |name: &'static str, session: Option<u64>, dur: u64| {
            Record::Span(SpanRecord {
                id: 1,
                parent: None,
                name,
                tid: 0,
                begin_ns: 100,
                end_ns: 100 + dur,
                payload: Payload {
                    arg: None,
                    session,
                    retry: None,
                },
            })
        };
        let trace = Trace {
            records: vec![
                span("iteration", Some(0), 50),
                span("iteration", Some(1), 70),
                span("das.sweep", Some(0), 30),
            ],
            ..Trace::default()
        };
        let s0 = session_phase_stats(&trace, Some(0));
        assert_eq!(s0.len(), 2);
        assert_eq!(s0[0].name, "das.sweep");
        assert_eq!(s0[0].total_ns, 30);
        assert_eq!(s0[1].name, "iteration");
        assert_eq!(s0[1].total_ns, 50);
        let s1 = session_phase_stats(&trace, Some(1));
        assert_eq!(s1.len(), 1);
        assert_eq!(s1[0].max_ns, 70);
        let all = phase_stats(&trace);
        assert_eq!(all[1].count, 2);
        assert_eq!(all[1].total_ns, 120);
    }

    #[test]
    fn event_kind_counts_split_by_category() {
        let mut report = report_with_bytes(0);
        let log = &mut report.sessions[0].robustness;
        log.push(1, RobustnessEventKind::FaultInjected, "a");
        log.push(2, RobustnessEventKind::FaultInjected, "b");
        log.push(3, RobustnessEventKind::LaneQuarantined, "c");
        log.push(4, RobustnessEventKind::PhaseStalled, "d");
        let snap = Aggregator::new(4).publish(&report);
        let s = &snap.sessions[0];
        assert_eq!(s.fault_events, 2);
        assert_eq!(s.quarantine_events, 1);
        assert_eq!(s.stall_events, 1);
        assert_eq!(s.retry_events, 0);
        assert_eq!(snap.sessions_total, 1);
        assert_eq!(snap.sessions_terminal, 0);
    }
}
