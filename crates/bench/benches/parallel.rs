//! Criterion benches for the deterministic parallel execution layer:
//! conv2d forward/backward, rollout collection and evaluation, each at one
//! thread (exact sequential fallback) and at four threads.
//!
//! `threadpool::with_threads` pins the thread count per measurement so the
//! comparison is self-contained regardless of `A3CS_THREADS`.

use a3cs_drl::{evaluate, ActorCritic, EvalProtocol, RolloutRunner};
use a3cs_envs::{Breakout, Environment};
use a3cs_nn::resnet;
use a3cs_tensor::{Conv2dGeometry, Tape, Tensor};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

const THREAD_COUNTS: [usize; 2] = [1, 4];

fn resnet20_agent() -> ActorCritic {
    let backbone = resnet(20, 3, 12, 12, 8, 32, 7);
    ActorCritic::new(Box::new(backbone), 32, (3, 12, 12), 3, 7)
}

fn factory(seed: u64) -> Box<dyn Environment> {
    Box::new(Breakout::new(seed))
}

fn bench_conv(c: &mut Criterion) {
    let geom = Conv2dGeometry {
        in_channels: 16,
        out_channels: 16,
        kernel: 3,
        stride: 1,
        padding: 1,
        in_h: 12,
        in_w: 12,
    };
    let x_t = Tensor::randn(&[8, 16, 12, 12], 0.5, 3);
    let w_t = Tensor::randn(&[16, 16, 3, 3], 0.5, 4);

    let mut group = c.benchmark_group("par_conv2d_forward");
    for threads in THREAD_COUNTS {
        group.bench_function(format!("{threads}_threads"), |bench| {
            bench.iter_batched(
                Tape::new,
                |tape| {
                    threadpool::with_threads(threads, || {
                        let x = tape.leaf(x_t.clone());
                        let w = tape.leaf(w_t.clone());
                        black_box(x.conv2d(&w, geom).value());
                    });
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();

    let mut group = c.benchmark_group("par_conv2d_forward_backward");
    for threads in THREAD_COUNTS {
        group.bench_function(format!("{threads}_threads"), |bench| {
            bench.iter_batched(
                Tape::new,
                |tape| {
                    threadpool::with_threads(threads, || {
                        let x = tape.leaf(x_t.clone());
                        let w = tape.leaf(w_t.clone());
                        x.conv2d(&w, geom).square().sum().backward();
                        black_box(w.grad());
                    });
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_rollout(c: &mut Criterion) {
    let agent = resnet20_agent();
    let mut group = c.benchmark_group("par_rollout_collect");
    for threads in THREAD_COUNTS {
        group.bench_function(format!("{threads}_threads"), |bench| {
            bench.iter(|| {
                threadpool::with_threads(threads, || {
                    let mut runner = RolloutRunner::new(&factory, 8, 11);
                    black_box(runner.collect(&agent, 5));
                });
            });
        });
    }
    group.finish();
}

fn bench_eval(c: &mut Criterion) {
    let agent = resnet20_agent();
    let protocol = EvalProtocol {
        episodes: 4,
        max_steps: 40,
        ..EvalProtocol::default()
    };
    let mut group = c.benchmark_group("par_evaluate");
    for threads in THREAD_COUNTS {
        group.bench_function(format!("{threads}_threads"), |bench| {
            bench.iter(|| {
                threadpool::with_threads(threads, || {
                    black_box(evaluate(&agent, &factory, &protocol));
                });
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_conv, bench_rollout, bench_eval
}
criterion_main!(benches);
