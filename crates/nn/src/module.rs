//! The object-safe module trait.

use crate::describe::{FeatureShape, LayerDesc};
use crate::param::Param;
use a3cs_tensor::{Tape, Var};

/// A differentiable network component.
///
/// Implementations are object safe so heterogeneous layers can be composed
/// through [`crate::Sequential`] and swapped inside the NAS supernet.
///
/// Modules take `&self`; layers that keep running statistics (batch norm)
/// use interior mutability so that a shared module tree can be driven from
/// anywhere.
pub trait Module {
    /// Run the module on `x`, recording onto `tape`.
    ///
    /// `train` toggles training-time behaviour (batch statistics vs running
    /// statistics in normalisation layers).
    fn forward(&self, tape: &Tape, x: &Var, train: bool) -> Var;

    /// All learnable parameters, in a stable order.
    fn params(&self) -> Vec<Param>;

    /// Non-learnable state tensors (e.g. batch-norm running statistics),
    /// in a stable order. These affect forward outputs but are never
    /// handed to an optimizer; checkpoints must capture them alongside
    /// [`Module::params`] for bit-exact resume. Stateless modules return
    /// the default empty list. Containers must aggregate their children.
    fn state(&self) -> Vec<Param> {
        Vec::new()
    }

    /// Describe the compute layers of this module given an input shape,
    /// returning the descriptors and the output shape.
    ///
    /// # Panics
    ///
    /// Implementations panic when `input` is structurally incompatible
    /// (e.g. feeding a flat vector to a convolution).
    fn describe(&self, input: FeatureShape) -> (Vec<LayerDesc>, FeatureShape);

    /// Total number of learnable scalars.
    fn param_count(&self) -> usize {
        self.params().iter().map(Param::len).sum()
    }

    /// Zero the accumulated gradients of every parameter.
    fn zero_grad(&self) {
        for p in self.params() {
            p.zero_grad();
        }
    }
}

impl Module for Box<dyn Module> {
    fn forward(&self, tape: &Tape, x: &Var, train: bool) -> Var {
        self.as_ref().forward(tape, x, train)
    }

    fn params(&self) -> Vec<Param> {
        self.as_ref().params()
    }

    fn state(&self) -> Vec<Param> {
        self.as_ref().state()
    }

    fn describe(&self, input: FeatureShape) -> (Vec<LayerDesc>, FeatureShape) {
        self.as_ref().describe(input)
    }
}

impl<T: Module> Module for std::rc::Rc<T> {
    fn forward(&self, tape: &Tape, x: &Var, train: bool) -> Var {
        self.as_ref().forward(tape, x, train)
    }

    fn params(&self) -> Vec<Param> {
        self.as_ref().params()
    }

    fn state(&self) -> Vec<Param> {
        self.as_ref().state()
    }

    fn describe(&self, input: FeatureShape) -> (Vec<LayerDesc>, FeatureShape) {
        self.as_ref().describe(input)
    }
}
