//! The A2C training objective with optional AC-distillation: the paper's
//! `L_task` (Eq. 12) built from Eq. 2–3, 10, 11 and 15.

use crate::agent::ActorCritic;
use crate::distill::DistillConfig;
use crate::rollout::{batch_to_tensor, Rollout};
use a3cs_tensor::{Tape, Tensor, Var};

/// A2C objective hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct A2cConfig {
    /// Discount factor `γ` (paper: 0.99).
    pub gamma: f32,
    /// Weight of the value loss (`L_value` enters Eq. 12 with weight 1;
    /// the ½ of Eq. 3 is inside the loss).
    pub value_coef: f32,
    /// Entropy weight `β1` (paper: 1e-2).
    pub entropy_beta: f32,
}

impl Default for A2cConfig {
    fn default() -> Self {
        A2cConfig {
            gamma: 0.99,
            value_coef: 1.0,
            entropy_beta: 1e-2,
        }
    }
}

/// Scalar diagnostics of one loss evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LossStats {
    /// Policy-gradient loss (Eq. 2 with td-error advantages).
    pub policy: f32,
    /// Value (td-error) loss (Eq. 3).
    pub value: f32,
    /// Entropy loss `Σ π log π` (Eq. 15; more negative = more exploration).
    pub entropy: f32,
    /// Actor KL distillation loss (Eq. 10), zero when disabled.
    pub actor_distill: f32,
    /// Critic MSE distillation loss (Eq. 11), zero when disabled.
    pub critic_distill: f32,
    /// The combined `L_task` (Eq. 12).
    pub total: f32,
    /// Mean absolute td-error (advantage magnitude diagnostic).
    pub mean_abs_advantage: f32,
}

/// Build the `L_task` loss graph (Eq. 12) for `rollout` on `tape`.
///
/// Returns the scalar loss [`Var`] (backpropagate it to populate parameter
/// gradients) and the numeric [`LossStats`].
///
/// When `teacher` is provided and `distill.mode` enables them, the actor KL
/// (Eq. 10) and critic MSE (Eq. 11) terms are added with weights `β2`/`β3`.
///
/// # Panics
///
/// Panics if the rollout is empty or its observation length does not match
/// the agent.
pub fn a2c_losses(
    tape: &Tape,
    agent: &ActorCritic,
    rollout: &Rollout,
    config: &A2cConfig,
    distill: &DistillConfig,
    teacher: Option<&ActorCritic>,
) -> (Var, LossStats) {
    let n = rollout.n_envs;
    let len = rollout.len;
    let transitions = rollout.transitions();
    assert!(transitions > 0, "rollout has no transitions");
    let obs_shape = agent.obs_shape();
    let obs_len = rollout.obs_len;
    assert_eq!(
        obs_len,
        obs_shape.0 * obs_shape.1 * obs_shape.2,
        "rollout observations do not match the agent's input shape"
    );

    // Decision-time observations and bootstrap observations.
    let dec_data = &rollout.observations[..transitions * obs_len];
    let boot_data = &rollout.observations[transitions * obs_len..];
    let obs_dec = tape.leaf(batch_to_tensor(dec_data, transitions, obs_shape));
    let obs_boot = tape.leaf(batch_to_tensor(boot_data, n, obs_shape));

    // Bootstrap forward first so that stateful backbones (the NAS
    // supernet) leave their *training-forward* sample as the last
    // recorded path — the co-search reads it for Eq. 8's cost penalty.
    let (_, boot_values) = agent.forward(tape, &obs_boot, false);
    let (logits, values) = agent.forward(tape, &obs_dec, true);

    // Numeric value estimates for targets/advantages (detached).
    let v_dec = values.value();
    let v_boot = boot_values.value();
    let mut targets = vec![0.0f32; transitions];
    let mut advantages = vec![0.0f32; transitions];
    for t in 0..len {
        for e in 0..n {
            let i = t * n + e;
            let v_next = if rollout.dones[i] {
                0.0
            } else if t + 1 < len {
                v_dec.data()[(t + 1) * n + e]
            } else {
                v_boot.data()[e]
            };
            targets[i] = rollout.rewards[i] + config.gamma * v_next;
            advantages[i] = targets[i] - v_dec.data()[i];
        }
    }
    // Both vectors were allocated as `vec![0.0; transitions]` above, so the
    // shapes match by construction.
    let targets_t = match Tensor::from_vec(targets, &[transitions]) {
        Ok(t) => t,
        Err(e) => unreachable!("targets sized by construction for [{transitions}]: {e:?}"),
    };
    let adv_t = match Tensor::from_vec(advantages.clone(), &[transitions]) {
        Ok(t) => t,
        Err(e) => unreachable!("advantages sized by construction for [{transitions}]: {e:?}"),
    };

    // Value loss: ½ (V(s) - y)².
    let value_loss = values
        .sub(&tape.constant(targets_t))
        .square()
        .mean()
        .scale(0.5);

    // Policy loss: -E[δ · log π(a|s)].
    let logp = logits.log_softmax_rows();
    let logp_a = logp.pick_rows(&rollout.actions);
    let policy_loss = logp_a.mul(&tape.constant(adv_t)).mean().neg();

    // Entropy loss (Eq. 15): E[Σ_a π log π] (negative of entropy).
    let probs = logits.softmax_rows();
    let entropy_loss = probs.mul(&logp).sum_rows().mean();

    // Distillation terms.
    let (mut actor_distill_val, mut critic_distill_val) = (0.0f32, 0.0f32);
    let mut total = policy_loss
        .add(&value_loss.scale(config.value_coef))
        .add(&entropy_loss.scale(config.entropy_beta));

    let beta2 = distill.actor_weight();
    let beta3 = distill.critic_weight();
    if let Some(teacher) = teacher {
        if beta2 > 0.0 || beta3 > 0.0 {
            let (t_logits, t_values) = teacher.forward(tape, &obs_dec, false);
            if beta2 > 0.0 {
                // KL(p_tea || p_stu) = Σ p_tea (log p_tea - log p_stu).
                let p_tea = t_logits.softmax_rows().value().as_ref().clone();
                let logp_tea = t_logits.log_softmax_rows().value().as_ref().clone();
                let tea_self = p_tea.mul(&logp_tea); // constant part
                let const_term = tea_self.sum() / transitions as f32;
                let cross = tape
                    .constant(p_tea)
                    .mul(&logp)
                    .sum_rows()
                    .mean()
                    .neg();
                let actor_distill = cross.add_scalar(const_term);
                actor_distill_val = actor_distill.value().item();
                total = total.add(&actor_distill.scale(beta2));
            }
            if beta3 > 0.0 {
                // MSE toward the teacher's value estimates.
                let v_tea = t_values.value().as_ref().clone();
                let critic_distill = values
                    .sub(&tape.constant(v_tea))
                    .square()
                    .mean()
                    .scale(0.5);
                critic_distill_val = critic_distill.value().item();
                total = total.add(&critic_distill.scale(beta3));
            }
        }
    }

    let stats = LossStats {
        policy: policy_loss.value().item(),
        value: value_loss.value().item(),
        entropy: entropy_loss.value().item(),
        actor_distill: actor_distill_val,
        critic_distill: critic_distill_val,
        total: total.value().item(),
        mean_abs_advantage: advantages.iter().map(|a| a.abs()).sum::<f32>()
            / transitions as f32,
    };
    if telemetry::enabled() {
        telemetry::LOSS_TOTAL.set(f64::from(stats.total));
        telemetry::LOSS_DISTILL_ACTOR.set(f64::from(stats.actor_distill));
        telemetry::LOSS_DISTILL_CRITIC.set(f64::from(stats.critic_distill));
    }
    (total, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distill::{DistillConfig, DistillMode};
    use crate::rollout::collect_rollout;
    use a3cs_envs::{Breakout, Environment};
    use a3cs_nn::vanilla;

    fn agent(seed: u64) -> ActorCritic {
        let backbone = vanilla(3, 12, 12, 16, seed);
        ActorCritic::new(Box::new(backbone), 16, (3, 12, 12), 3, seed)
    }

    fn factory(seed: u64) -> Box<dyn Environment> {
        Box::new(Breakout::new(seed))
    }

    #[test]
    fn losses_are_finite_and_entropy_is_negative() {
        let a = agent(1);
        let r = collect_rollout(&a, &factory, 2, 5, 3);
        let tape = Tape::new();
        let (loss, stats) = a2c_losses(
            &tape,
            &a,
            &r,
            &A2cConfig::default(),
            &DistillConfig::default(),
            None,
        );
        assert!(loss.value().item().is_finite());
        assert!(stats.value >= 0.0);
        // Entropy loss Σ π log π is ≤ 0; near-uniform policy ≈ -ln(3).
        assert!(stats.entropy < 0.0);
        assert!(stats.entropy > -1.2);
        assert_eq!(stats.actor_distill, 0.0);
        assert_eq!(stats.critic_distill, 0.0);
    }

    #[test]
    fn backward_populates_gradients() {
        let a = agent(2);
        let r = collect_rollout(&a, &factory, 2, 5, 4);
        let tape = Tape::new();
        let (loss, _) = a2c_losses(
            &tape,
            &a,
            &r,
            &A2cConfig::default(),
            &DistillConfig::default(),
            None,
        );
        loss.backward();
        let grads: f32 = a.params().iter().map(|p| p.grad().sq_norm()).sum();
        assert!(grads > 0.0, "no gradient reached the agent");
    }

    #[test]
    fn ac_distillation_adds_both_terms() {
        let student = agent(3);
        let teacher = agent(4);
        let r = collect_rollout(&student, &factory, 2, 5, 5);
        let tape = Tape::new();
        let (_, stats) = a2c_losses(
            &tape,
            &student,
            &r,
            &A2cConfig::default(),
            &DistillConfig::ac_distillation(),
            Some(&teacher),
        );
        assert!(
            stats.actor_distill > 0.0,
            "KL to a different teacher must be positive: {stats:?}"
        );
        assert!(stats.critic_distill >= 0.0);
    }

    #[test]
    fn policy_only_distillation_skips_critic_term() {
        let student = agent(5);
        let teacher = agent(6);
        let r = collect_rollout(&student, &factory, 2, 5, 6);
        let tape = Tape::new();
        let (_, stats) = a2c_losses(
            &tape,
            &student,
            &r,
            &A2cConfig::default(),
            &DistillConfig::policy_only(),
            Some(&teacher),
        );
        assert!(stats.actor_distill > 0.0);
        assert_eq!(stats.critic_distill, 0.0);
    }

    #[test]
    fn self_distillation_kl_is_near_zero() {
        let a = agent(7);
        let r = collect_rollout(&a, &factory, 2, 5, 7);
        let tape = Tape::new();
        let (_, stats) = a2c_losses(
            &tape,
            &a,
            &r,
            &A2cConfig::default(),
            &DistillConfig {
                mode: DistillMode::ActorCritic,
                beta2: 1e-1,
                beta3: 1e-3,
            },
            Some(&a),
        );
        assert!(
            stats.actor_distill.abs() < 1e-4,
            "KL(p||p) should vanish: {}",
            stats.actor_distill
        );
        assert!(stats.critic_distill.abs() < 1e-6);
    }

    #[test]
    fn terminal_steps_cut_bootstrap() {
        // Hand-built rollout: one env, two steps, first step terminal with
        // reward 1. Target for step 0 must be exactly 1.0 (no bootstrap).
        let a = agent(8);
        let obs_len = 3 * 12 * 12;
        let rollout = Rollout {
            n_envs: 1,
            len: 2,
            observations: vec![0.0; 3 * obs_len],
            obs_len,
            actions: vec![0, 1],
            rewards: vec![1.0, 0.0],
            dones: vec![true, false],
        };
        let tape = Tape::new();
        let (_, stats) = a2c_losses(
            &tape,
            &a,
            &rollout,
            &A2cConfig::default(),
            &DistillConfig::default(),
            None,
        );
        assert!(stats.total.is_finite());
    }
}
