//! A3C-S: the joint agent/accelerator co-search pipeline (paper Alg. 1).
//!
//! This crate ties the substrates together:
//!
//! - a DRL agent whose backbone is the [`a3cs_nas::SuperNet`] (single-path
//!   forward, multi-path backward — Eq. 6–7);
//! - the [`a3cs_accel::DasEngine`] updating the accelerator parameters `φ`
//!   every iteration (Eq. 5/9);
//! - the A2C + AC-distillation task loss `L_task` (Eq. 12) from
//!   [`a3cs_drl`];
//! - the hardware-cost penalty `λ·L_cost` on the activated operators
//!   (Eq. 8);
//! - one-level optimisation of `(θ, α)` (with bi-level and
//!   no-distillation ablation modes for Fig. 2).
//!
//! The end product of [`CoSearch::run`] is a [`CoSearchResult`]: the
//! derived architecture, its matched accelerator, the search-time score
//! curve and the predicted hardware performance.
//!
//! # Example
//!
//! ```
//! use a3cs_core::{CoSearch, CoSearchConfig};
//! use a3cs_envs::{Breakout, Environment};
//!
//! let mut config = CoSearchConfig::tiny(3, 12, 12, 3);
//! config.total_steps = 200;
//! let mut search = CoSearch::try_new(config, 1).expect("tiny config passes pre-flight");
//! let factory = |seed: u64| -> Box<dyn Environment> { Box::new(Breakout::new(seed)) };
//! let result = search.run(&factory, None);
//! assert_eq!(result.arch.len(), 6);
//! assert!(result.report.fps > 0.0);
//! ```

#![deny(missing_docs)]

mod binfmt;
mod checkpoint;
mod config;
mod fault;
mod pipeline;
mod result;
mod robustness;
mod supervision;

pub use checkpoint::{config_fingerprint, CheckpointError, SearchCheckpoint, SEARCH_CHECKPOINT_VERSION};
pub use config::{CoSearchConfig, DeriveEngine, SearchScheme};
pub use fault::{CheckpointFormat, DurabilityConfig, Fault, FaultConfig, FaultPlan};
pub use pipeline::{per_op_costs, preflight, CoSearch, GuardedRun, SearchError, StepOutcome};
pub use result::CoSearchResult;
pub use robustness::{RobustnessEvent, RobustnessEventKind, RobustnessLog};
pub use supervision::DegradationLadder;
