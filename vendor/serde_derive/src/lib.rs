//! Offline vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The build container has no crates.io access, so this crate hand-rolls
//! the two derives against the vendored `serde` facade (a JSON-shaped
//! `Value` data model) without `syn`/`quote`. Supported shapes — the only
//! ones the workspace uses:
//!
//! - structs with named fields (no generics),
//! - enums whose variants are all unit variants (no generics).
//!
//! Anything else produces a `compile_error!` naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed skeleton of the item being derived for.
enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("valid error tokens")
}

/// Skip one attribute (`#` already consumed by the caller peeking it):
/// consumes the `#` and the following bracket group.
fn skip_attribute<I: Iterator<Item = TokenTree>>(iter: &mut std::iter::Peekable<I>) {
    iter.next(); // '#'
    if let Some(TokenTree::Group(g)) = iter.peek() {
        if g.delimiter() == Delimiter::Bracket {
            iter.next();
        }
    }
}

/// Parse the derive input into an [`Item`].
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut iter = input.into_iter().peekable();
    let kind = loop {
        match iter.peek() {
            None => return Err("derive input ended before `struct`/`enum`".into()),
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => skip_attribute(&mut iter),
            Some(TokenTree::Ident(id)) => {
                let word = id.to_string();
                if word == "struct" || word == "enum" {
                    iter.next();
                    break word;
                }
                // `pub`, `pub(crate)`, `crate`, etc.
                iter.next();
            }
            Some(_) => {
                iter.next();
            }
        }
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    match iter.peek() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!("generic type `{name}` is not supported by the vendored derive"));
        }
        _ => {}
    }
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "tuple struct `{name}` is not supported by the vendored derive"
                ));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Err(format!("unit struct `{name}` is not supported by the vendored derive"));
            }
            Some(_) => {}
            None => return Err(format!("missing body for `{name}`")),
        }
    };
    if kind == "struct" {
        Ok(Item::Struct {
            name,
            fields: parse_struct_fields(body)?,
        })
    } else {
        Ok(Item::Enum {
            name,
            variants: parse_enum_variants(body)?,
        })
    }
}

/// Split `body` on top-level commas (commas nested inside `<...>` or any
/// group do not count; groups arrive pre-matched in the token tree).
fn split_top_level(body: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tt in body {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                chunks.push(Vec::new());
                continue;
            }
            _ => {}
        }
        chunks.last_mut().expect("non-empty chunk list").push(tt);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

fn parse_struct_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    for chunk in split_top_level(body) {
        let mut iter = chunk.into_iter().peekable();
        // Skip attributes and visibility.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => skip_attribute(&mut iter),
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        match iter.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            other => return Err(format!("expected field name, found {other:?}")),
        }
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field name, found {other:?}")),
        }
    }
    Ok(fields)
}

fn parse_enum_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    for chunk in split_top_level(body) {
        let mut iter = chunk.into_iter().peekable();
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => skip_attribute(&mut iter),
                _ => break,
            }
        }
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        if iter.next().is_some() {
            return Err(format!(
                "variant `{name}` carries data; the vendored derive only supports unit variants"
            ));
        }
        variants.push(name);
    }
    Ok(variants)
}

/// Derive `serde::Serialize` (vendored facade: `fn to_value(&self) -> Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "obj.push(({f:?}.to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut obj = ::std::vec::Vec::new();\n\
                         {pushes}\n\
                         ::serde::Value::Object(obj)\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string()),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match *self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize` (vendored facade:
/// `fn from_value(&Value) -> Result<Self, Error>`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(v.get_field({f:?})?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("::std::option::Option::Some({v:?}) => \
                                  ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v.as_str() {{\n\
                             {arms}\n\
                             other => ::std::result::Result::Err(::serde::Error::msg(\
                                 format!(\"unknown {name} variant: {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}
