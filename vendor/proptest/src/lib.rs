//! Offline vendored stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace uses: the
//! [`Strategy`] trait with `prop_map`, range/tuple/select/vec/any
//! strategies, [`ProptestConfig`], and the `proptest!` / `prop_assert*`
//! macros. Cases are generated from a per-test deterministic seed (an FNV
//! hash of the test name), so runs are reproducible. There is no shrinking:
//! a failing case reports its case index and panics.

#![deny(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// The RNG driving test-case generation.
pub type TestRng = StdRng;

/// A failed property case (the `Err` side of a property body).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Build a failure carrying `msg`.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Runner configuration; only `cases` is supported.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test RNG: FNV-1a hash of the test name as the seed.
#[must_use]
pub fn new_test_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy adaptor produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy_impls {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}

range_strategy_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.start..self.end)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! tuple_strategy_impls {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy_impls! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! arbitrary_int_impls {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for [`Arbitrary`] types; construct with [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<bool>()` etc.).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Namespaced strategy constructors, mirroring proptest's `prop` module.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// A length specification: exact, `lo..hi`, or `lo..=hi`.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            min: usize,
            max_inclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(len: usize) -> Self {
                SizeRange { min: len, max_inclusive: len }
            }
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange { min: r.start, max_inclusive: r.end - 1 }
            }
        }

        impl From<core::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: core::ops::RangeInclusive<usize>) -> Self {
                assert!(r.start() <= r.end(), "empty size range");
                SizeRange { min: *r.start(), max_inclusive: *r.end() }
            }
        }

        /// Strategy for `Vec<T>` with element strategy `S`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = if self.size.min == self.size.max_inclusive {
                    self.size.min
                } else {
                    rng.gen_range(self.size.min..=self.size.max_inclusive)
                };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `Vec` strategy: `size` may be an exact `usize` or a range.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// Strategy drawing uniformly from a fixed list.
        #[derive(Debug, Clone)]
        pub struct Select<T: Clone> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                self.options[rng.gen_range(0..self.options.len())].clone()
            }
        }

        /// Uniform choice from `options`.
        ///
        /// # Panics
        ///
        /// Panics (at generation time) if `options` is empty.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select requires at least one option");
            Select { options }
        }
    }
}

/// Everything a property test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Assert inside a property: on failure, early-returns
/// `Err(TestCaseError)` from the property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a property (values must be `Debug`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: {:?} == {:?}", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Inequality assertion inside a property (values must be `Debug`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: {:?} != {:?}", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left != right, $($fmt)+);
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::new_test_rng(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let body = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(body));
                match outcome {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                    ::std::result::Result::Ok(::std::result::Result::Err(err)) => {
                        panic!(
                            "proptest {}: case {}/{} failed: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            err,
                        );
                    }
                    ::std::result::Result::Err(cause) => {
                        eprintln!(
                            "proptest {}: panicked at case {}/{} (deterministic seed)",
                            stringify!($name),
                            case + 1,
                            config.cases,
                        );
                        ::std::panic::resume_unwind(cause);
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng = crate::new_test_rng("bounds");
        for _ in 0..200 {
            let v = (1usize..5).generate(&mut rng);
            assert!((1..5).contains(&v));
            let f = (-3.0f32..3.0).generate(&mut rng);
            assert!((-3.0..3.0).contains(&f));
            let t = (0u64..3, 1usize..2).generate(&mut rng);
            assert!(t.0 < 3 && t.1 == 1);
            let xs = prop::collection::vec(0usize..4, 2..6).generate(&mut rng);
            assert!((2..6).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 4));
            let exact = prop::collection::vec(0usize..4, 7usize).generate(&mut rng);
            assert_eq!(exact.len(), 7);
            let pick = prop::sample::select(vec!["a", "b"]).generate(&mut rng);
            assert!(pick == "a" || pick == "b");
            let mapped = (0usize..3).prop_map(|x| x * 10).generate(&mut rng);
            assert!(mapped % 10 == 0 && mapped <= 20);
            let _: bool = any::<bool>().generate(&mut rng);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn the_macro_itself_works(
            a in 0usize..10,
            xs in prop::collection::vec(1u64..4, 1..5),
        ) {
            prop_assert!(a < 10);
            prop_assert_eq!(xs.is_empty(), false);
            prop_assert_ne!(xs[0], 0);
        }
    }
}
