//! Cost-cache consistency gate for `scripts/check.sh`: a fixed workload
//! that must hold four invariants of the transposition-table memoization
//! layer (`a3cs-accel::memo`) on every run:
//!
//! 1. cached and direct costs are **bit-identical** over a mixed
//!    revisit workload;
//! 2. the full-config **hit rate clears a floor** on that workload
//!    (the cache actually engages — it is not silently missing);
//! 3. bit-identity survives **eviction pressure** (a 16-slot cache
//!    displaced hundreds of times never serves a wrong cost);
//! 4. beam search is **deterministic given its seed**.
//!
//! ```sh
//! cargo run --release -p a3cs-bench --bin memo_smoke
//! ```

use a3cs_accel::{
    tiny_space, BeamConfig, BeamSearch, CachedCostModel, CostModel, CostWeights, DirectCost,
    FpgaTarget,
};
use a3cs_bench::report::status;
use a3cs_nn::vanilla;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Distinct candidates in the fixed pool.
const POOL: usize = 40;
/// Draws from the pool (with revisits).
const DRAWS: usize = 200;
/// Hit-rate floor for the main leg (pool fits the cache, so all
/// revisits hit: expected rate is `1 - POOL/DRAWS` = 0.8).
const MIN_HIT_RATE: f64 = 0.5;

fn main() {
    let space = tiny_space();
    let chunks = 2;
    let layers = vanilla(4, 12, 12, 32, 0).layer_descs();
    let target = FpgaTarget::zc706();
    let weights = CostWeights::default();
    let sizes = space.knob_sizes(chunks, layers.len());
    let split = space.chunk_knob_sizes().len() * chunks;

    let mut rng = StdRng::seed_from_u64(1234);
    let pool: Vec<Vec<usize>> = (0..POOL)
        .map(|_| {
            let mut c: Vec<usize> = sizes.iter().map(|&s| rng.gen_range(0..s)).collect();
            c[split..].sort_unstable();
            c
        })
        .collect();
    let draws: Vec<usize> = (0..DRAWS).map(|_| rng.gen_range(0..POOL)).collect();

    // --- 1 + 2: bit-identity and hit-rate floor on the revisit workload.
    let mut direct = DirectCost::new();
    let mut cached = CachedCostModel::new(10);
    direct.begin(&space, chunks, &layers, &target, &weights);
    cached.begin(&space, chunks, &layers, &target, &weights);
    for (n, &i) in draws.iter().enumerate() {
        let want = direct.cost_choices(&pool[i]);
        let got = cached.cost_choices(&pool[i]);
        assert_eq!(
            want.to_bits(),
            got.to_bits(),
            "draw {n}: cached {got} != direct {want}"
        );
    }
    let stats = cached.stats();
    status(format!(
        "consistency: {DRAWS} draws bit-identical, hit rate {:.1}% ({} hits / {} misses)",
        stats.hit_rate() * 100.0,
        stats.hits,
        stats.misses
    ));
    assert!(
        stats.hit_rate() >= MIN_HIT_RATE,
        "hit rate {:.3} below the {MIN_HIT_RATE} floor",
        stats.hit_rate()
    );

    // --- 3: eviction pressure never corrupts a cost. 16 slots, the same
    // workload: every slot is displaced over and over.
    let mut tiny = CachedCostModel::new(4);
    tiny.begin(&space, chunks, &layers, &target, &weights);
    for &i in &draws {
        let want = direct.cost_choices(&pool[i]);
        let got = tiny.cost_choices(&pool[i]);
        assert_eq!(want.to_bits(), got.to_bits(), "eviction-pressure mismatch");
    }
    status(format!(
        "eviction pressure: 16-slot cache, {} evictions, still bit-identical",
        tiny.stats().evictions
    ));
    assert!(tiny.stats().evictions > 0, "pressure leg never evicted");

    // --- 4: beam determinism given a seed.
    let beam_cfg = BeamConfig {
        space,
        num_chunks: chunks,
        width: 6,
        mutations_per_parent: 4,
        cost: weights,
        memo_log2: 10,
    };
    let mut a = BeamSearch::new(beam_cfg.clone(), 77);
    let mut b = BeamSearch::new(beam_cfg, 77);
    let (cfg_a, cost_a) = a.run(&layers, &target, 8);
    let (cfg_b, cost_b) = b.run(&layers, &target, 8);
    assert_eq!(cfg_a, cfg_b, "beam configs diverged across identical seeds");
    assert_eq!(
        cost_a.to_bits(),
        cost_b.to_bits(),
        "beam costs diverged across identical seeds"
    );
    status(format!("beam determinism: seed 77 reproduces cost {cost_a:.1}"));

    status("memo smoke passed");
}
