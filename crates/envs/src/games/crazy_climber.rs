//! Crazy Climber: scale the building while dodging falling objects.

use crate::env::{Canvas, Environment, StepOutcome};
use crate::games::clamp;
use crate::state::{EnvState, RestoreError, StateReader, StateWriter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GRID: usize = 12;
const BUILDING_LEFT: isize = 2;
const BUILDING_RIGHT: isize = 9;

/// Crazy Climber stand-in: climb a building face. Each upward move pays
/// `+1`; topping out pays `+25` and restarts the climb (so scores grow
/// with skill). Pots fall down the building columns; getting hit, or
/// grabbing a closed window, costs the climber (three grips = lives).
///
/// Actions: `0` no-op, `1` up, `2` left, `3` right.
#[derive(Debug, Clone)]
pub struct CrazyClimber {
    rng: StdRng,
    player: (isize, isize),
    /// Closed windows (cannot be climbed through).
    closed: Vec<(isize, isize)>,
    pots: Vec<(isize, isize)>,
    grips: u32,
    clock: u32,
    done: bool,
}

impl CrazyClimber {
    /// Create a seeded Crazy Climber game.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        CrazyClimber {
            rng: StdRng::seed_from_u64(seed),
            player: (GRID as isize - 1, GRID as isize / 2),
            closed: Vec::new(),
            pots: Vec::new(),
            grips: 3,
            clock: 0,
            done: true,
        }
    }

    fn reshuffle_windows(&mut self) {
        self.closed.clear();
        for _ in 0..8 {
            let r = self.rng.gen_range(1..GRID as isize - 1);
            let c = self.rng.gen_range(BUILDING_LEFT..=BUILDING_RIGHT);
            self.closed.push((r, c));
        }
    }

    fn observe(&self) -> Vec<f32> {
        let mut canvas = Canvas::new(4, GRID, GRID);
        canvas.paint(0, self.player.0, self.player.1, 1.0);
        for &(r, c) in &self.closed {
            canvas.paint(1, r, c, 1.0);
        }
        for &(r, c) in &self.pots {
            canvas.paint(2, r, c, 1.0);
        }
        // Building edges as static context.
        for r in 0..GRID as isize {
            canvas.paint(3, r, BUILDING_LEFT - 1, 0.5);
            canvas.paint(3, r, BUILDING_RIGHT + 1, 0.5);
        }
        canvas.into_observation()
    }

    fn lose_grip(&mut self) {
        self.grips -= 1;
        if self.grips == 0 {
            self.done = true;
        } else {
            // Slide back down a few rows.
            self.player.0 = clamp(self.player.0 + 3, 0, GRID as isize - 1);
        }
    }
}

impl Environment for CrazyClimber {
    fn name(&self) -> &str {
        "CrazyClimber"
    }

    fn observation_shape(&self) -> (usize, usize, usize) {
        (4, GRID, GRID)
    }

    fn action_count(&self) -> usize {
        4
    }

    fn reset(&mut self) -> Vec<f32> {
        self.player = (GRID as isize - 1, GRID as isize / 2);
        self.reshuffle_windows();
        self.pots.clear();
        self.grips = 3;
        self.clock = 0;
        self.done = false;
        self.observe()
    }

    fn step(&mut self, action: usize) -> StepOutcome {
        assert!(!self.done, "episode is over; call reset()");
        assert!(action < self.action_count(), "invalid action {action}");
        self.clock += 1;
        let mut reward = 0.0f32;

        match action {
            1 => {
                let next = (self.player.0 - 1, self.player.1);
                if self.closed.contains(&next) {
                    self.lose_grip();
                } else if next.0 >= 0 {
                    self.player = next;
                    reward += 1.0;
                }
            }
            2 => self.player.1 = clamp(self.player.1 - 1, BUILDING_LEFT, BUILDING_RIGHT),
            3 => self.player.1 = clamp(self.player.1 + 1, BUILDING_LEFT, BUILDING_RIGHT),
            _ => {}
        }

        if !self.done {
            // Topping out: bonus, restart at the bottom with new windows.
            if self.player.0 == 0 {
                reward += 25.0;
                self.player = (GRID as isize - 1, self.player.1);
                self.reshuffle_windows();
            }

            // Pots fall.
            let player = self.player;
            let mut hit = false;
            self.pots.retain_mut(|(r, c)| {
                *r += 1;
                if (*r, *c) == player {
                    hit = true;
                }
                *r < GRID as isize
            });
            if hit {
                self.lose_grip();
            }
            if self.clock % 4 == 0 && self.pots.len() < 3 {
                let c = self.rng.gen_range(BUILDING_LEFT..=BUILDING_RIGHT);
                self.pots.push((0, c));
            }
        }

        StepOutcome {
            observation: self.observe(),
            reward,
            done: self.done,
        }
    }

    fn snapshot(&self) -> EnvState {
        let mut w = StateWriter::new("CrazyClimber");
        w.rng(&self.rng);
        w.isize(self.player.0);
        w.isize(self.player.1);
        w.usize(self.closed.len());
        for item in &self.closed {
            w.isize(item.0);
            w.isize(item.1);
        }
        w.usize(self.pots.len());
        for item in &self.pots {
            w.isize(item.0);
            w.isize(item.1);
        }
        w.u32(self.grips);
        w.u32(self.clock);
        w.bool(self.done);
        w.finish()
    }

    fn restore(&mut self, state: &EnvState) -> Result<(), RestoreError> {
        let mut r = StateReader::new(state, "CrazyClimber")?;
        self.rng = r.rng()?;
        self.player = (r.isize()?, r.isize()?);
        let n = r.len(4096)?;
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            items.push((r.isize()?, r.isize()?));
        }
        self.closed = items;
        let n = r.len(4096)?;
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            items.push((r.isize()?, r.isize()?));
        }
        self.pots = items;
        self.grips = r.u32()?;
        self.clock = r.u32()?;
        self.done = r.bool()?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::testkit::{assert_deterministic, random_rollout};

    #[test]
    fn deterministic_given_seed() {
        assert_deterministic(CrazyClimber::new(141), CrazyClimber::new(141), 300);
    }

    #[test]
    fn smoke_random_rollout() {
        let mut env = CrazyClimber::new(1);
        let total = random_rollout(&mut env, 1000, 18);
        assert!(total >= 0.0);
    }

    #[test]
    fn climbing_pays_per_row() {
        let mut env = CrazyClimber::new(2);
        let _ = env.reset();
        // Find a column without a closed window directly above.
        let mut total = 0.0;
        for _ in 0..40 {
            let above = (env.player.0 - 1, env.player.1);
            let action = if env.closed.contains(&above) { 3 } else { 1 };
            let out = env.step(action);
            total += out.reward;
            if out.done {
                break;
            }
        }
        assert!(total > 0.0, "climbing must earn row rewards");
    }

    #[test]
    fn grabbing_closed_window_costs_grip() {
        let mut env = CrazyClimber::new(3);
        let _ = env.reset();
        let above = (env.player.0 - 1, env.player.1);
        env.closed.push(above);
        let grips = env.grips;
        let _ = env.step(1);
        assert_eq!(env.grips, grips - 1);
    }
}
