//! Shared experiment plumbing: game metadata, backbone construction,
//! teacher training and configured trainers.

use crate::scale::Scale;
use a3cs_core::CoSearchConfig;
use a3cs_drl::{ActorCritic, DistillConfig, Trainer, TrainerConfig, TrainingCurve};
use a3cs_envs::{make_env, Environment};
use a3cs_nn::{resnet, vanilla, Backbone};

/// Static metadata of one game.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GameInfo {
    /// Game name (registry key).
    pub name: &'static str,
    /// Observation planes.
    pub planes: usize,
    /// Observation height.
    pub height: usize,
    /// Observation width.
    pub width: usize,
    /// Action count.
    pub actions: usize,
}

/// Look up a game's observation/action signature by constructing it once.
///
/// # Panics
///
/// Panics if `name` is unknown.
#[must_use]
pub fn game_info(name: &'static str) -> GameInfo {
    let env = make_env(name, 0).expect("known game");
    let (planes, height, width) = env.observation_shape();
    GameInfo {
        name,
        planes,
        height,
        width,
        actions: env.action_count(),
    }
}

/// An environment factory for `name`, suitable for trainers/evaluators.
#[must_use]
pub fn factory_for(name: &'static str) -> impl Fn(u64) -> Box<dyn Environment> {
    move |seed| make_env(name, seed).expect("known game")
}

/// The paper's five hand-designed backbones (Section V-A), in size order.
pub const BACKBONES: [&str; 5] = ["Vanilla", "ResNet-14", "ResNet-20", "ResNet-38", "ResNet-74"];

/// Feature dimensionality used across the reproduction (the paper uses
/// 256 at ALE scale).
pub const FEAT_DIM: usize = 32;

/// Width of the first ResNet group at reproduction scale.
pub const BASE_WIDTH: usize = 8;

/// Build one of the five named backbones for a game's observation shape.
///
/// # Panics
///
/// Panics on an unknown backbone name.
#[must_use]
pub fn build_backbone(kind: &str, info: &GameInfo, seed: u64) -> Backbone {
    match kind {
        "Vanilla" => vanilla(info.planes, info.height, info.width, FEAT_DIM, seed),
        "ResNet-14" => resnet(14, info.planes, info.height, info.width, BASE_WIDTH, FEAT_DIM, seed),
        "ResNet-20" => resnet(20, info.planes, info.height, info.width, BASE_WIDTH, FEAT_DIM, seed),
        "ResNet-38" => resnet(38, info.planes, info.height, info.width, BASE_WIDTH, FEAT_DIM, seed),
        "ResNet-74" => resnet(74, info.planes, info.height, info.width, BASE_WIDTH, FEAT_DIM, seed),
        other => panic!("unknown backbone {other:?}; one of {BACKBONES:?}"),
    }
}

/// Wrap a backbone into an agent for `info`'s action space.
#[must_use]
pub fn agent_with(backbone: Backbone, info: &GameInfo, seed: u64) -> ActorCritic {
    ActorCritic::new(
        Box::new(backbone),
        FEAT_DIM,
        (info.planes, info.height, info.width),
        info.actions,
        seed,
    )
}

/// A trainer configuration following the paper's settings at `scale`.
#[must_use]
pub fn trainer_config(scale: &Scale, total_steps: u64) -> TrainerConfig {
    TrainerConfig {
        total_steps,
        eval_every: scale.eval_every(total_steps),
        eval_episodes: scale.eval_episodes,
        eval_max_steps: scale.eval_max_steps,
        episode_cap: scale.eval_max_steps,
        ..TrainerConfig::default()
    }
}

/// Train `kind` on `game` and return the agent plus its score curve.
/// `distill` optionally supplies `(mode, teacher)`.
pub fn train_backbone(
    game: &'static str,
    kind: &str,
    scale: &Scale,
    distill: Option<(&DistillConfig, &ActorCritic)>,
    seed: u64,
) -> (ActorCritic, TrainingCurve) {
    let info = game_info(game);
    let backbone = build_backbone(kind, &info, seed);
    let agent = agent_with(backbone, &info, seed.wrapping_add(1));
    let cfg = trainer_config(scale, scale.train_steps);
    let factory = factory_for(game);
    let curve = Trainer::new(cfg, seed.wrapping_add(2)).train(&agent, &factory, distill);
    (agent, curve)
}

/// Train the paper's ResNet-20 teacher for `game`, caching the trained
/// weights under `results/teachers/` so the six experiment binaries share
/// one teacher per game and scale profile.
pub fn train_teacher(game: &'static str, scale: &Scale, seed: u64) -> ActorCritic {
    let info = game_info(game);
    let backbone = build_backbone("ResNet-20", &info, seed);
    let agent = agent_with(backbone, &info, seed.wrapping_add(1));

    let cache_dir = std::path::Path::new("results").join("teachers");
    let cache = cache_dir.join(format!(
        "{game}_{}_{}_{}.json",
        scale.name, scale.teacher_steps, seed
    ));
    if let Ok(checkpoint) = a3cs_drl::Checkpoint::load(&cache) {
        if checkpoint.apply(&agent).is_ok() {
            return agent;
        }
    }

    let cfg = trainer_config(scale, scale.teacher_steps);
    let factory = factory_for(game);
    let _ = Trainer::new(cfg, seed.wrapping_add(2)).train(&agent, &factory, None);
    if std::fs::create_dir_all(&cache_dir).is_ok() {
        if let Err(e) = a3cs_drl::Checkpoint::capture(&agent).save(&cache) {
            eprintln!("warning: cannot cache teacher to {}: {e}", cache.display());
        }
    }
    agent
}

/// A co-search configuration for `game` at `scale`.
#[must_use]
pub fn cosearch_config(game: &'static str, scale: &Scale) -> CoSearchConfig {
    let info = game_info(game);
    let mut cfg = CoSearchConfig::paper(info.planes, info.height, info.width, info.actions);
    cfg.supernet.feat_dim = FEAT_DIM;
    cfg.supernet.base_width = BASE_WIDTH;
    cfg.total_steps = scale.search_steps;
    cfg.eval_every = scale.eval_every(scale.search_steps);
    cfg.eval_episodes = scale.eval_episodes.min(10);
    cfg.eval_max_steps = scale.eval_max_steps;
    cfg.das_final_iters = scale.das_iters;
    // Anneal the Gumbel temperature over the scaled budget.
    cfg.supernet.temperature.every = (scale.search_steps / 80).max(1);
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::SMOKE;

    #[test]
    fn game_info_matches_env() {
        let info = game_info("Pong");
        assert_eq!(info.actions, 3);
        assert_eq!(info.planes, 3);
    }

    #[test]
    fn all_backbones_build_for_all_games() {
        for game in ["Breakout", "Seaquest"] {
            let info = game_info(game);
            for kind in BACKBONES {
                let bb = build_backbone(kind, &info, 1);
                assert_eq!(bb.feat_dim(), FEAT_DIM, "{game}/{kind}");
            }
        }
    }

    #[test]
    fn backbone_sizes_are_ordered() {
        let info = game_info("Breakout");
        let macs: Vec<u64> = BACKBONES
            .iter()
            .map(|k| build_backbone(k, &info, 1).total_macs())
            .collect();
        for pair in macs.windows(2) {
            assert!(pair[0] < pair[1], "MACs must grow with depth: {macs:?}");
        }
    }

    #[test]
    fn smoke_training_runs() {
        let (_, curve) = train_backbone("Breakout", "Vanilla", &SMOKE, None, 5);
        assert!(!curve.points.is_empty());
    }

    #[test]
    fn cosearch_config_scales_with_profile() {
        let cfg = cosearch_config("Pong", &SMOKE);
        assert_eq!(cfg.total_steps, SMOKE.search_steps);
        assert_eq!(cfg.n_actions, 3);
    }
}
