//! A minimal, panic-free Rust lexer for the workspace lint engine.
//!
//! [`lex`] turns source text into a flat [`Tok`] stream with 1-based line
//! numbers, discarding the *content* of comments and string/char literals
//! so downstream lints can pattern-match on real code tokens only — the
//! false-positive/negative class inherent to raw-text scanning (a
//! `panic!` mentioned in a doc comment, an `.unwrap()` inside a string)
//! cannot occur by construction. The lexer also extracts lint **waivers**
//! from comments of the form
//!
//! ```text
//! // a3cs::allow(<category>): <reason>
//! ```
//!
//! which suppress findings of `<category>` on the same line or the next
//! code line. A waiver without a `: <reason>` tail is ignored — every
//! suppression must say why.
//!
//! The lexer is intentionally approximate where precision does not matter
//! for linting (multi-char operators come out as single punct tokens) but
//! exact where it does: nested block comments, raw strings with hash
//! fences, byte/char literals vs. lifetimes, and escapes are all handled.
//! It never panics and always terminates: the cursor advances by at least
//! one character per iteration of the main loop, a property pinned down
//! by the proptests in `tests/properties.rs`.

/// What kind of lexeme a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`unwrap`, `unsafe`, `HashMap`, …).
    Ident,
    /// A single punctuation character (`.`, `:`, `!`, `(`, `{`, …).
    Punct,
    /// A literal (string, raw string, byte string, char, number). The
    /// text is the literal's *kind tag* (`"str"`, `"char"`, `"num"`),
    /// never its content — literal content must not influence lints.
    Literal,
    /// A lifetime (`'a`) — distinct from char literals.
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok<'a> {
    /// Token kind.
    pub kind: TokKind,
    /// Identifier text, punct character, or literal kind tag.
    pub text: &'a str,
    /// 1-based line the token starts on.
    pub line: usize,
}

/// A lint waiver extracted from an `// a3cs::allow(<cat>): <reason>`
/// comment. Applies to findings of `category` on `line` or `line + 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// 1-based line of the waiver comment.
    pub line: usize,
    /// The waived category's stable name (e.g. `wall-clock`).
    pub category: String,
    /// `true` only when a non-empty `: <reason>` tail was present.
    pub justified: bool,
}

/// Lexer output: the token stream plus any waivers found in comments.
#[derive(Debug, Default)]
pub struct Lexed<'a> {
    /// All code tokens in source order.
    pub tokens: Vec<Tok<'a>>,
    /// All waiver comments, justified or not.
    pub waivers: Vec<Waiver>,
}

/// Extract `a3cs::allow(<category>)[: reason]` from one comment body.
fn parse_waiver(comment: &str, line: usize) -> Option<Waiver> {
    let marker = "a3cs::allow(";
    let start = comment.find(marker)? + marker.len();
    let rest = &comment[start..];
    let close = rest.find(')')?;
    let category = rest[..close].trim().to_string();
    if category.is_empty() {
        return None;
    }
    let tail = rest[close + 1..].trim_start();
    let justified = tail
        .strip_prefix(':')
        .is_some_and(|reason| !reason.trim().is_empty());
    Some(Waiver {
        line,
        category,
        justified,
    })
}

/// Character cursor with line tracking. All methods are total: past the
/// end, `peek` returns `None` and `bump` is a no-op.
struct Cursor<'a> {
    src: &'a str,
    chars: std::str::CharIndices<'a>,
    /// Byte offset of the next unconsumed char (== src.len() at EOF).
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src,
            chars: src.char_indices(),
            pos: 0,
            line: 1,
        }
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.src[self.pos..].chars();
        it.next();
        it.next()
    }

    fn bump(&mut self) -> Option<char> {
        let (i, c) = self.chars.next()?;
        self.pos = i + c.len_utf8();
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    /// Consume chars while `pred` holds; returns the consumed slice.
    fn eat_while(&mut self, pred: impl Fn(char) -> bool) -> &'a str {
        let start = self.pos;
        while self.peek().is_some_and(&pred) {
            self.bump();
        }
        &self.src[start..self.pos]
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Consume a `//…` line comment body (cursor sits after the second `/`),
/// recording any waiver it carries.
fn line_comment(cur: &mut Cursor<'_>, out: &mut Lexed<'_>) {
    let line = cur.line;
    let body = cur.eat_while(|c| c != '\n');
    if let Some(w) = parse_waiver(body, line) {
        out.waivers.push(w);
    }
}

/// Consume a (possibly nested) `/* … */` block comment body; the cursor
/// sits after the opening `/*`. Unterminated comments end at EOF.
fn block_comment(cur: &mut Cursor<'_>, out: &mut Lexed<'_>) {
    let line = cur.line;
    let start = cur.pos;
    let mut depth = 1usize;
    let mut end = cur.src.len();
    while depth > 0 {
        match (cur.peek(), cur.peek2()) {
            (Some('/'), Some('*')) => {
                cur.bump();
                cur.bump();
                depth += 1;
            }
            (Some('*'), Some('/')) => {
                end = cur.pos;
                cur.bump();
                cur.bump();
                depth -= 1;
            }
            (Some(_), _) => {
                cur.bump();
            }
            (None, _) => {
                end = cur.pos;
                break;
            }
        }
    }
    if let Some(w) = parse_waiver(&cur.src[start..end.max(start)], line) {
        out.waivers.push(w);
    }
}

/// Consume a `"…"` string body (cursor sits after the opening quote).
fn string_literal(cur: &mut Cursor<'_>) {
    loop {
        match cur.bump() {
            Some('\\') => {
                cur.bump(); // the escaped char, whatever it is
            }
            Some('"') | None => break,
            Some(_) => {}
        }
    }
}

/// Consume a raw string `r##"…"##` starting at the first `#` or `"`
/// (the `r`/`br` prefix is already consumed). Returns `false` if this
/// is not actually a raw string (e.g. `r` was just an identifier —
/// impossible here since callers check, but kept total anyway).
fn raw_string_literal(cur: &mut Cursor<'_>) {
    let hashes = cur.eat_while(|c| c == '#').len();
    if cur.peek() != Some('"') {
        return; // not a raw string after all (`r#ident` raw identifier)
    }
    cur.bump();
    // Scan for `"` followed by `hashes` hash marks.
    'scan: loop {
        match cur.bump() {
            None => break 'scan,
            Some('"') => {
                let mut seen = 0usize;
                while seen < hashes {
                    if cur.peek() == Some('#') {
                        cur.bump();
                        seen += 1;
                    } else {
                        continue 'scan;
                    }
                }
                break 'scan;
            }
            Some(_) => {}
        }
    }
}

/// After a `'`, decide lifetime vs. char literal and consume it.
/// Heuristic (sound for compiling Rust): `'x'` where the closing quote
/// directly follows one (possibly escaped) char is a char literal;
/// `'ident` not followed by `'` is a lifetime.
fn char_or_lifetime<'a>(cur: &mut Cursor<'a>, line: usize) -> Tok<'a> {
    match cur.peek() {
        Some('\\') => {
            // Escaped char literal: consume `\`, the escape, then up to
            // the closing quote (handles `\u{…}` and friends).
            cur.bump();
            cur.bump();
            while let Some(c) = cur.peek() {
                cur.bump();
                if c == '\'' {
                    break;
                }
            }
            Tok {
                kind: TokKind::Literal,
                text: "char",
                line,
            }
        }
        Some(c) if is_ident_start(c) => {
            // `'a` (lifetime) or `'a'` (char). Look one ahead.
            if cur.peek2() == Some('\'') {
                cur.bump();
                cur.bump();
                Tok {
                    kind: TokKind::Literal,
                    text: "char",
                    line,
                }
            } else {
                cur.eat_while(is_ident_continue);
                Tok {
                    kind: TokKind::Lifetime,
                    text: "'",
                    line,
                }
            }
        }
        Some(_) => {
            // `'('`-style char literal of a non-ident char.
            cur.bump();
            if cur.peek() == Some('\'') {
                cur.bump();
            }
            Tok {
                kind: TokKind::Literal,
                text: "char",
                line,
            }
        }
        None => Tok {
            kind: TokKind::Punct,
            text: "'",
            line,
        },
    }
}

/// Consume a numeric literal starting with the already-peeked digit.
/// Approximate but safe: digits, `_`, type suffixes, hex/bin/oct bodies,
/// one fractional part (only when followed by a digit, so `0..n` lexes as
/// `0` `.` `.` `n`), and exponents.
fn number_literal(cur: &mut Cursor<'_>) {
    cur.eat_while(|c| c.is_ascii_alphanumeric() || c == '_');
    if cur.peek() == Some('.') && cur.peek2().is_some_and(|c| c.is_ascii_digit()) {
        cur.bump();
        cur.eat_while(|c| c.is_ascii_alphanumeric() || c == '_');
    }
    // Signed exponent (`1e-3`): the alnum eaters above stop at `-`/`+`.
    if cur.peek().is_some_and(|c| c == '-' || c == '+') {
        // Only part of the number after an `e`/`E` tail — checked by the
        // caller being mid-literal; a stray `-` ends the literal.
        let prev = cur.src[..cur.pos]
            .chars()
            .next_back()
            .unwrap_or(' ');
        if prev == 'e' || prev == 'E' {
            cur.bump();
            cur.eat_while(|c| c.is_ascii_alphanumeric() || c == '_');
        }
    }
}

/// Lex `source` into tokens and waivers. Never panics; always terminates.
#[must_use]
pub fn lex(source: &str) -> Lexed<'_> {
    let mut out = Lexed::default();
    let mut cur = Cursor::new(source);
    while let Some(c) = cur.peek() {
        let line = cur.line;
        match c {
            c if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek2() == Some('/') => {
                cur.bump();
                cur.bump();
                line_comment(&mut cur, &mut out);
            }
            '/' if cur.peek2() == Some('*') => {
                cur.bump();
                cur.bump();
                block_comment(&mut cur, &mut out);
            }
            '"' => {
                cur.bump();
                string_literal(&mut cur);
                out.tokens.push(Tok {
                    kind: TokKind::Literal,
                    text: "str",
                    line,
                });
            }
            '\'' => {
                cur.bump();
                out.tokens.push(char_or_lifetime(&mut cur, line));
            }
            c if c.is_ascii_digit() => {
                number_literal(&mut cur);
                out.tokens.push(Tok {
                    kind: TokKind::Literal,
                    text: "num",
                    line,
                });
            }
            c if is_ident_start(c) => {
                // `r"…"` / `r#"…"#` / `b"…"` / `br#"…"#` raw and byte
                // strings look like an ident followed by a quote or fence.
                let start = cur.pos;
                let ident = {
                    cur.eat_while(is_ident_continue);
                    &cur.src[start..cur.pos]
                };
                match (ident, cur.peek()) {
                    ("r" | "br", Some('"' | '#')) => {
                        raw_string_literal(&mut cur);
                        out.tokens.push(Tok {
                            kind: TokKind::Literal,
                            text: "str",
                            line,
                        });
                    }
                    ("b", Some('"')) => {
                        cur.bump();
                        string_literal(&mut cur);
                        out.tokens.push(Tok {
                            kind: TokKind::Literal,
                            text: "str",
                            line,
                        });
                    }
                    ("b", Some('\'')) => {
                        cur.bump();
                        let tok = char_or_lifetime(&mut cur, line);
                        out.tokens.push(Tok {
                            kind: TokKind::Literal,
                            text: "char",
                            line: tok.line,
                        });
                    }
                    _ => out.tokens.push(Tok {
                        kind: TokKind::Ident,
                        text: ident,
                        line,
                    }),
                }
            }
            _ => {
                let start = cur.pos;
                cur.bump();
                out.tokens.push(Tok {
                    kind: TokKind::Punct,
                    text: &cur.src[start..cur.pos],
                    line,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<&str> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_yield_no_idents() {
        let src = "// mentions unwrap here\n/* and panic\n over lines */\nlet s = \"HashMap::new()\";";
        assert_eq!(idents(src), vec!["let", "s"]);
    }

    #[test]
    fn raw_strings_swallow_their_content() {
        let src = "let s = r#\"thread::spawn \" still inside\"#; fine";
        assert_eq!(idents(src), vec!["let", "s", "fine"]);
    }

    #[test]
    fn nested_block_comments_terminate() {
        let src = "/* outer /* inner */ still outer */ code";
        assert_eq!(idents(src), vec!["code"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let toks = lex(src);
        let lifetimes = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal && t.text == "char")
            .count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let src = "a\nb\n\nc";
        let lines: Vec<usize> = lex(src).tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn waivers_require_a_reason() {
        let src = "\
// a3cs::allow(wall-clock): feeds the watchdog EWMA only
let t = 1;
// a3cs::allow(unsafe-block)
let u = 2;
";
        let out = lex(src);
        assert_eq!(out.waivers.len(), 2);
        assert!(out.waivers[0].justified);
        assert_eq!(out.waivers[0].category, "wall-clock");
        assert_eq!(out.waivers[0].line, 1);
        assert!(!out.waivers[1].justified);
    }

    #[test]
    fn ranges_do_not_eat_the_dots() {
        let src = "for i in 0..10 {}";
        let puncts: Vec<&str> = lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text)
            .collect();
        assert_eq!(puncts, vec![".", ".", "{", "}"]);
    }
}
