//! Fleet end-to-end smoke check: run four co-search sessions under one
//! fleet supervisor with a simulated crash injected into one of them, and
//! validate the per-session fault domains — the faulted session restarts
//! once from its namespaced checkpoint store and still finishes
//! bit-identically to a fault-free run, every sibling is bit-identical to
//! its solo run, the telemetry trace splits cleanly per session id, and
//! the live JSONL stream mirrors the buffered trace byte-for-byte. Exits
//! nonzero on any failure, so `scripts/check.sh` can use it as a gate.
//!
//! ```sh
//! cargo run --release -p a3cs-bench --bin fleet_smoke
//! ```

use a3cs_bench::report::{or_exit, status, warn};
use a3cs_core::{CoSearch, CoSearchConfig, CoSearchResult, FaultPlan, RobustnessEventKind};
use a3cs_envs::{Breakout, Environment};
use a3cs_fleet::{Fleet, FleetConfig, SessionState};
use std::io::Write;
use std::sync::{Arc, Mutex};

const FAULTED_SEED: u64 = 12;

fn factory(seed: u64) -> Box<dyn Environment> {
    Box::new(Breakout::new(seed))
}

fn fail(problems: &[String]) -> ! {
    for p in problems {
        warn(p);
    }
    std::process::exit(1);
}

fn tiny_config() -> CoSearchConfig {
    let mut cfg = CoSearchConfig::tiny(3, 12, 12, 3);
    cfg.total_steps = 200;
    cfg.eval_every = 100;
    cfg.eval_episodes = 2;
    cfg.eval_max_steps = 40;
    cfg.das_final_iters = 50;
    cfg
}

fn curve_bits(curve: &[(u64, f32)]) -> Vec<(u64, u32)> {
    curve.iter().map(|&(s, v)| (s, v.to_bits())).collect()
}

fn check_bit_identical(
    what: &str,
    a: &CoSearchResult,
    b: &CoSearchResult,
    problems: &mut Vec<String>,
) {
    if format!("{:?}", a.arch) != format!("{:?}", b.arch) {
        problems.push(format!("{what}: derived architectures differ"));
    }
    if format!("{:?}", a.accelerator) != format!("{:?}", b.accelerator) {
        problems.push(format!("{what}: accelerator configs differ"));
    }
    if curve_bits(&a.score_curve) != curve_bits(&b.score_curve) {
        problems.push(format!("{what}: score curves differ bit-for-bit"));
    }
    if a.steps != b.steps {
        problems.push(format!(
            "{what}: step counts differ: {} vs {}",
            a.steps, b.steps
        ));
    }
}

/// A `Write` the smoke can hand to the streaming sink and inspect after.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if let Ok(mut inner) = self.0.lock() {
            inner.extend_from_slice(buf);
        }
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn main() {
    status("fleet smoke: fault-free solo reference runs\n");
    let mut references = Vec::new();
    for seed in 10..14u64 {
        references.push(or_exit(CoSearch::try_new(tiny_config(), seed)).run(&factory, None));
    }

    let root =
        std::env::temp_dir().join(format!("a3cs_fleet_smoke_{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();

    status("fleet smoke: 4 sessions, one injected crash, one restart budget\n");
    let mut fleet = Fleet::new(FleetConfig {
        max_session_restarts: 1,
        checkpoint_root: Some(root.clone()),
        scheduler_seed: 42,
        ..FleetConfig::default()
    });
    let mut ids = Vec::new();
    for seed in 10..14u64 {
        let mut cfg = tiny_config();
        if seed == FAULTED_SEED {
            cfg.fault.plan = FaultPlan::none().abort_at(7);
        }
        ids.push((seed, or_exit(fleet.submit(format!("s{seed}"), cfg, seed, factory))));
    }

    let stream_buf = SharedBuf::default();
    let stream = telemetry::StreamingJsonl::attach(Box::new(stream_buf.clone()));
    let session = telemetry::Session::start();
    let report = fleet.run_to_completion();
    let trace = session.finish();
    stream.detach();

    let mut problems = Vec::new();
    if report.total_faults != 1 {
        problems.push(format!("expected exactly 1 fault, saw {}", report.total_faults));
    }

    for (i, (seed, id)) in ids.iter().enumerate() {
        let Some(s) = report.session(*id) else {
            problems.push(format!("session {id} missing from the fleet report"));
            continue;
        };
        if s.state != SessionState::Done {
            problems.push(format!("session {id} did not complete: {:?}", s.state));
            continue;
        }
        let Some(result) = s.result.as_ref() else {
            problems.push(format!("done session {id} has no result"));
            continue;
        };
        check_bit_identical(&format!("seed {seed}"), &references[i], result, &mut problems);
        if *seed == FAULTED_SEED {
            // Isolation proof, part 1: the crashed session spent exactly
            // one restart, resumed from its namespaced store, and still
            // matched the fault-free reference bit-for-bit (checked above).
            if s.restarts != 1 {
                problems.push(format!("faulted session spent {} restarts, not 1", s.restarts));
            }
            if s.fleet_events.count(RobustnessEventKind::SessionRestarted) != 1 {
                problems.push("missing the session-restarted fleet event".to_owned());
            }
            if s.robustness.count(RobustnessEventKind::Resumed) != 1 {
                problems.push("restarted attempt did not auto-resume from disk".to_owned());
            }
            if s.checkpoint_bytes_written == 0 {
                problems.push("faulted session persisted no checkpoint bytes".to_owned());
            }
            if s.checkpoint_restores == 0 {
                problems.push("faulted session recorded no checkpoint restore".to_owned());
            }
        } else {
            // Isolation proof, part 2: siblings never saw the fault.
            if !result.robustness.is_empty() {
                problems.push(format!(
                    "sibling seed {seed} took robustness actions: {:?}",
                    result.robustness.events
                ));
            }
            if s.restarts != 0 {
                problems.push(format!("sibling seed {seed} restarted"));
            }
        }
    }

    // Every session's records are tagged and separable in the one trace.
    for (_, id) in &ids {
        if !trace.spans().any(|s| s.payload.session == Some(id.index())) {
            problems.push(format!("no trace spans tagged with session {id}"));
        }
        if trace.for_session(Some(id.index())).is_empty() {
            problems.push(format!("for_session({id}) split out an empty trace"));
        }
    }
    if trace.metrics.counter("checkpoint.bytes_written") == 0 {
        problems.push("checkpoint.bytes_written metric never incremented".to_owned());
    }
    if trace.metrics.counter("checkpoint.restore_count") == 0 {
        problems.push("checkpoint.restore_count metric never incremented".to_owned());
    }

    // The live stream saw the same bytes the buffered trace serialises.
    let streamed = match stream_buf.0.lock() {
        Ok(inner) => String::from_utf8_lossy(&inner).into_owned(),
        Err(_) => String::new(),
    };
    if streamed.is_empty() {
        problems.push("streaming sink received nothing".to_owned());
    } else if !telemetry::record_lines(&trace).starts_with(&streamed) {
        problems.push("streamed JSONL is not a byte-prefix of the buffered records".to_owned());
    }

    if !problems.is_empty() {
        fail(&problems);
    }
    status(&format!(
        "fleet smoke: OK ({} sessions done in {} ticks, {} fault contained, \
         {} checkpoint bytes, pool budget {})\n",
        report.sessions.len(),
        report.ticks,
        report.total_faults,
        report
            .sessions
            .iter()
            .map(|s| s.checkpoint_bytes_written)
            .sum::<u64>(),
        report.pool_budget
    ));
    std::fs::remove_dir_all(&root).ok();
}
