//! Offline vendored stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the narrow API slice it actually uses: [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer/float ranges, [`Rng::gen_bool`], and
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded via SplitMix64 —
//! a high-quality, deterministic PRNG. Streams differ from upstream
//! `rand`'s ChaCha12-based `StdRng`, which is fine: the workspace only
//! relies on determinism-given-seed, never on specific streams.

#![deny(missing_docs)]

pub mod rngs;

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`a..b` or `a..=b`; integers or floats).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// A `f64` uniform in `[0, 1)` from 53 random bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A `f32` uniform in `[0, 1)` from 24 random bits.
fn unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f32(rng.next_u64()) * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(f32::EPSILON..1.0);
            assert!(g > 0.0 && g < 1.0);
        }
    }

    #[test]
    fn gen_range_covers_the_support() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
