//! Space Invaders: descending alien waves, one player cannon.

use crate::env::{Canvas, Environment, StepOutcome};
use crate::games::clamp;
use crate::state::{EnvState, RestoreError, StateReader, StateWriter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GRID: usize = 12;
const WAVE_ROWS: usize = 3;
const WAVE_COLS: usize = 6;
const PLAYER_ROW: isize = GRID as isize - 1;

/// Space Invaders stand-in: a 3×6 alien wave marches sideways and descends;
/// the cannon fires single shots while dodging bombs. Aliens in higher rows
/// pay more; cleared waves respawn faster, so scores are unbounded for
/// strong play.
///
/// Actions: `0` no-op, `1` left, `2` right, `3` fire.
#[derive(Debug, Clone)]
pub struct SpaceInvaders {
    rng: StdRng,
    player: isize,
    aliens: [[bool; WAVE_COLS]; WAVE_ROWS],
    wave_row: isize,
    wave_col: isize,
    wave_dir: isize,
    move_period: u32,
    clock: u32,
    bullet: Option<(isize, isize)>,
    bombs: Vec<(isize, isize)>,
    wave: u32,
    done: bool,
}

impl SpaceInvaders {
    /// Create a seeded Space Invaders game.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SpaceInvaders {
            rng: StdRng::seed_from_u64(seed),
            player: GRID as isize / 2,
            aliens: [[true; WAVE_COLS]; WAVE_ROWS],
            wave_row: 1,
            wave_col: 1,
            wave_dir: 1,
            move_period: 4,
            clock: 0,
            bullet: None,
            bombs: Vec::new(),
            wave: 0,
            done: true,
        }
    }

    fn alien_cells(&self) -> Vec<(isize, isize, usize)> {
        let mut cells = Vec::new();
        for (r, row) in self.aliens.iter().enumerate() {
            for (c, &alive) in row.iter().enumerate() {
                if alive {
                    cells.push((self.wave_row + r as isize, self.wave_col + c as isize, r));
                }
            }
        }
        cells
    }

    fn observe(&self) -> Vec<f32> {
        let mut canvas = Canvas::new(4, GRID, GRID);
        canvas.paint(0, PLAYER_ROW, self.player, 1.0);
        for (r, c, _) in self.alien_cells() {
            canvas.paint(1, r, c, 1.0);
        }
        if let Some((r, c)) = self.bullet {
            canvas.paint(2, r, c, 1.0);
        }
        for &(r, c) in &self.bombs {
            canvas.paint(3, r, c, 1.0);
        }
        canvas.into_observation()
    }

    fn alive_count(&self) -> usize {
        self.aliens.iter().flatten().filter(|&&a| a).count()
    }

    fn respawn_wave(&mut self) {
        self.aliens = [[true; WAVE_COLS]; WAVE_ROWS];
        self.wave_row = 1;
        self.wave_col = 1;
        self.wave_dir = 1;
        self.wave += 1;
        self.move_period = (4 - self.wave.min(3)).max(1);
    }
}

impl Environment for SpaceInvaders {
    fn name(&self) -> &str {
        "SpaceInvaders"
    }

    fn observation_shape(&self) -> (usize, usize, usize) {
        (4, GRID, GRID)
    }

    fn action_count(&self) -> usize {
        4
    }

    fn reset(&mut self) -> Vec<f32> {
        self.player = GRID as isize / 2;
        self.bullet = None;
        self.bombs.clear();
        self.clock = 0;
        self.wave = 0;
        self.move_period = 4;
        self.done = false;
        self.respawn_wave();
        self.wave = 0;
        self.move_period = 4;
        self.observe()
    }

    fn step(&mut self, action: usize) -> StepOutcome {
        assert!(!self.done, "episode is over; call reset()");
        assert!(action < self.action_count(), "invalid action {action}");
        self.clock += 1;
        match action {
            1 => self.player = clamp(self.player - 1, 0, GRID as isize - 1),
            2 => self.player = clamp(self.player + 1, 0, GRID as isize - 1),
            3 => {
                if self.bullet.is_none() {
                    self.bullet = Some((PLAYER_ROW - 1, self.player));
                }
            }
            _ => {}
        }

        let mut reward = 0.0f32;

        // Bullet travels up two cells per step, checking both.
        if let Some((mut br, bc)) = self.bullet.take() {
            let mut alive = true;
            for _ in 0..2 {
                br -= 1;
                if br < 0 {
                    alive = false;
                    break;
                }
                let rr = br - self.wave_row;
                let cc = bc - self.wave_col;
                if (0..WAVE_ROWS as isize).contains(&rr)
                    && (0..WAVE_COLS as isize).contains(&cc)
                    && self.aliens[rr as usize][cc as usize]
                {
                    self.aliens[rr as usize][cc as usize] = false;
                    // Higher (harder to reach) rows pay more.
                    reward += (WAVE_ROWS as isize - rr) as f32;
                    alive = false;
                    break;
                }
            }
            if alive {
                self.bullet = Some((br, bc));
            }
        }

        // Wave marches on its cadence.
        if self.clock % self.move_period == 0 && self.alive_count() > 0 {
            // alive_count() > 0 above guarantees the wave is non-empty.
            let occupied: Vec<isize> = self.alien_cells().iter().map(|&(_, c, _)| c).collect();
            let min_c = occupied.iter().copied().fold(isize::MAX, isize::min);
            let max_c = occupied.iter().copied().fold(isize::MIN, isize::max);
            if (self.wave_dir > 0 && max_c + 1 >= GRID as isize)
                || (self.wave_dir < 0 && min_c - 1 < 0)
            {
                self.wave_dir = -self.wave_dir;
                self.wave_row += 1;
            } else {
                self.wave_col += self.wave_dir;
            }
        }

        // Random alien drops a bomb.
        if self.clock % 6 == 0 {
            let cells = self.alien_cells();
            if !cells.is_empty() {
                let (r, c, _) = cells[self.rng.gen_range(0..cells.len())];
                self.bombs.push((r + 1, c));
            }
        }

        // Bombs fall.
        let player = self.player;
        let mut hit = false;
        self.bombs.retain_mut(|(r, c)| {
            *r += 1;
            if *r == PLAYER_ROW && *c == player {
                hit = true;
            }
            *r < GRID as isize
        });

        // Aliens reaching the cannon row is game over.
        let landed = self
            .alien_cells()
            .iter()
            .any(|&(r, _, _)| r >= PLAYER_ROW);
        if hit || landed {
            self.done = true;
        }

        if self.alive_count() == 0 {
            reward += 10.0;
            self.respawn_wave();
        }

        StepOutcome {
            observation: self.observe(),
            reward,
            done: self.done,
        }
    }

    fn snapshot(&self) -> EnvState {
        let mut w = StateWriter::new("SpaceInvaders");
        w.rng(&self.rng);
        w.isize(self.player);
        for row in &self.aliens {
            for &cell in row {
                w.bool(cell);
            }
        }
        w.isize(self.wave_row);
        w.isize(self.wave_col);
        w.isize(self.wave_dir);
        w.u32(self.move_period);
        w.u32(self.clock);
        w.bool(self.bullet.is_some());
        if let Some(item) = &self.bullet {
            w.isize(item.0);
            w.isize(item.1);
        }
        w.usize(self.bombs.len());
        for item in &self.bombs {
            w.isize(item.0);
            w.isize(item.1);
        }
        w.u32(self.wave);
        w.bool(self.done);
        w.finish()
    }

    fn restore(&mut self, state: &EnvState) -> Result<(), RestoreError> {
        let mut r = StateReader::new(state, "SpaceInvaders")?;
        self.rng = r.rng()?;
        self.player = r.isize()?;
        for row in &mut self.aliens {
            for cell in row.iter_mut() {
                *cell = r.bool()?;
            }
        }
        self.wave_row = r.isize()?;
        self.wave_col = r.isize()?;
        self.wave_dir = r.isize()?;
        self.move_period = r.u32()?;
        self.clock = r.u32()?;
        self.bullet = if r.bool()? {
            Some((r.isize()?, r.isize()?))
        } else {
            None
        };
        let n = r.len(4096)?;
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            items.push((r.isize()?, r.isize()?));
        }
        self.bombs = items;
        self.wave = r.u32()?;
        self.done = r.bool()?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::testkit::{assert_deterministic, random_rollout};

    #[test]
    fn deterministic_given_seed() {
        assert_deterministic(SpaceInvaders::new(2), SpaceInvaders::new(2), 400);
    }

    #[test]
    fn smoke_random_rollout() {
        let mut env = SpaceInvaders::new(4);
        let total = random_rollout(&mut env, 1200, 5);
        assert!(total >= 0.0);
    }

    #[test]
    fn constant_fire_scores() {
        let mut env = SpaceInvaders::new(6);
        let _ = env.reset();
        let mut total = 0.0;
        for i in 0..300 {
            let action = if i % 3 == 0 { 3 } else { (i % 2) + 1 };
            let out = env.step(action);
            total += out.reward;
            if out.done {
                let _ = env.reset();
            }
        }
        assert!(total > 0.0, "spraying shots should hit aliens");
    }

    #[test]
    fn idle_player_eventually_loses_to_descending_wave() {
        let mut env = SpaceInvaders::new(8);
        let _ = env.reset();
        let mut steps = 0;
        loop {
            steps += 1;
            if env.step(0).done {
                break;
            }
            assert!(steps < 5000, "wave must reach the bottom eventually");
        }
    }

    #[test]
    fn wave_respawns_faster() {
        let mut env = SpaceInvaders::new(1);
        let _ = env.reset();
        let initial_period = env.move_period;
        env.respawn_wave();
        assert!(env.move_period < initial_period);
    }
}
