//! Grade the reproduction against the paper's shape claims using the
//! JSON rows the experiment binaries dumped into `results/`.
//!
//! Run after (some of) the experiment binaries:
//!
//! ```sh
//! cargo run --release -p a3cs-bench --bin check_claims
//! ```
//!
//! Prints one PASS / PARTIAL / FAIL / MISSING verdict per claim; the same
//! assessments appear narratively in `EXPERIMENTS.md`.

use a3cs_bench::report::status as emit;
use serde_json::Value;
use std::fs;
use std::path::Path;

struct Verdict {
    claim: &'static str,
    status: String,
    detail: String,
}

fn load(name: &str) -> Option<Value> {
    let path = Path::new("results").join(format!("{name}.json"));
    let text = fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

fn f(v: &Value) -> f64 {
    v.as_f64().unwrap_or(f64::NAN)
}

fn status(pass: usize, total: usize) -> String {
    if total == 0 {
        "MISSING".into()
    } else if pass == total {
        format!("PASS ({pass}/{total})")
    } else if pass * 2 >= total {
        format!("PARTIAL ({pass}/{total})")
    } else {
        format!("FAIL ({pass}/{total})")
    }
}

/// Fig. 3: per game, A3C-S+DAS has the best FPS and a score no worse than
/// ResNet-14's (small tolerance for evaluation noise).
fn check_fig3() -> Verdict {
    let Some(rows) = load("fig3_fps_tradeoff") else {
        return Verdict {
            claim: "Fig3: A3C-S+DAS best FPS at comparable score; DAS > DNNBuilder",
            status: "MISSING".into(),
            detail: "run fig3_fps_tradeoff first".into(),
        };
    };
    let rows = rows.as_array().cloned().unwrap_or_default();
    let mut games: Vec<String> = rows
        .iter()
        .filter_map(|r| r["game"].as_str().map(ToOwned::to_owned))
        .collect();
    games.sort();
    games.dedup();
    let (mut pass, mut total) = (0, 0);
    for game in &games {
        let get = |design: &str, field: &str| {
            rows.iter()
                .find(|r| r["game"] == game.as_str() && r["design"] == design)
                .map(|r| f(&r[field]))
        };
        let (Some(das_fps), Some(dnnb_fps), Some(res_fps)) = (
            get("A3C-S + DAS", "fps"),
            get("A3C-S + DNNBuilder", "fps"),
            get("ResNet-14 + DAS", "fps"),
        ) else {
            continue;
        };
        let das_score = get("A3C-S + DAS", "score").unwrap_or(f64::NAN);
        let res_score = get("ResNet-14 + DAS", "score").unwrap_or(f64::NAN);
        total += 2;
        if das_fps > dnnb_fps {
            pass += 1;
        }
        if das_fps > res_fps && das_score >= res_score - res_score.abs() * 0.2 - 1.0 {
            pass += 1;
        }
    }
    Verdict {
        claim: "Fig3: A3C-S+DAS best FPS at comparable score; DAS > DNNBuilder",
        status: status(pass, total),
        detail: format!("{} games checked", games.len()),
    }
}

/// Table III: A3C-S FPS exceeds FA3C's 260 on every game.
fn check_table3() -> Verdict {
    let Some(rows) = load("table3_vs_fa3c") else {
        return Verdict {
            claim: "Tab3: FPS speedup over FA3C on every game",
            status: "MISSING".into(),
            detail: "run table3_vs_fa3c first".into(),
        };
    };
    let rows = rows.as_array().cloned().unwrap_or_default();
    let total = rows.len();
    let pass = rows.iter().filter(|r| f(&r["fps_speedup"]) > 1.0).count();
    Verdict {
        claim: "Tab3: FPS speedup over FA3C on every game",
        status: status(pass, total),
        detail: format!(
            "speedups: {}",
            rows.iter()
                .map(|r| format!("{:.0}x", f(&r["fps_speedup"])))
                .collect::<Vec<_>>()
                .join(" ")
        ),
    }
}

/// Table I: (i) some ResNet beats Vanilla; (ii) ResNet-74 is not the best.
fn check_table1() -> Verdict {
    let Some(rows) = load("table1_model_sizes") else {
        return Verdict {
            claim: "Tab1: deeper beats Vanilla; biggest net is not optimal",
            status: "MISSING".into(),
            detail: "run table1_model_sizes first".into(),
        };
    };
    let rows = rows.as_array().cloned().unwrap_or_default();
    let (mut deeper_wins, mut not74, mut total) = (0, 0, 0);
    for r in &rows {
        let s = &r["scores"];
        let vanilla = f(&s["Vanilla"]);
        let resnets = ["ResNet-14", "ResNet-20", "ResNet-38", "ResNet-74"];
        let best_resnet = resnets.iter().map(|k| f(&s[*k])).fold(f64::MIN, f64::max);
        let best_overall = best_resnet.max(vanilla);
        total += 1;
        if best_resnet >= vanilla {
            deeper_wins += 1;
        }
        if f(&s["ResNet-74"]) < best_overall {
            not74 += 1;
        }
    }
    Verdict {
        claim: "Tab1: deeper beats Vanilla; biggest net is not optimal",
        status: status(deeper_wins + not74, total * 2),
        detail: format!("deeper-wins {deeper_wins}/{total}, resnet74-not-best {not74}/{total}"),
    }
}

/// Table II: AC-distillation is at least as good as no distillation.
fn check_table2() -> Verdict {
    let Some(rows) = load("table2_distillation") else {
        return Verdict {
            claim: "Tab2: AC-distillation >= no distillation per row",
            status: "MISSING".into(),
            detail: "run table2_distillation first".into(),
        };
    };
    let rows = rows.as_array().cloned().unwrap_or_default();
    let total = rows.len();
    let pass = rows
        .iter()
        .filter(|r| f(&r["ac"]) >= f(&r["none"]) * 0.95 - 0.5)
        .count();
    Verdict {
        claim: "Tab2: AC-distillation >= no distillation per row",
        status: status(pass, total),
        detail: format!("{total} (game, student) rows"),
    }
}

/// Fig. 2: one-level final score >= bi-level final score per game.
fn check_fig2() -> Verdict {
    let Some(rows) = load("fig2_search_schemes") else {
        return Verdict {
            claim: "Fig2: one-level >= bi-level at end of search",
            status: "MISSING".into(),
            detail: "run fig2_search_schemes first".into(),
        };
    };
    let rows = rows.as_array().cloned().unwrap_or_default();
    let final_of = |game: &str, scheme: &str| {
        rows.iter()
            .find(|r| r["game"] == game && r["scheme"] == scheme)
            .and_then(|r| r["points"].as_array())
            .and_then(|p| p.last())
            .and_then(|p| p.get(1))
            .map(f)
    };
    let mut games: Vec<String> = rows
        .iter()
        .filter_map(|r| r["game"].as_str().map(ToOwned::to_owned))
        .collect();
    games.sort();
    games.dedup();
    let (mut pass, mut total) = (0, 0);
    for game in &games {
        if let (Some(one), Some(bi)) = (
            final_of(game, "A3C-S:One-level"),
            final_of(game, "A3C-S:Bi-level"),
        ) {
            total += 1;
            if one >= bi {
                pass += 1;
            }
        }
    }
    Verdict {
        claim: "Fig2: one-level >= bi-level at end of search",
        status: status(pass, total),
        detail: format!("{} games checked", games.len()),
    }
}

fn main() {
    emit("A3C-S reproduction claim check (reads results/*.json)\n");
    let verdicts = [
        check_table1(),
        check_table2(),
        check_fig2(),
        check_fig3(),
        check_table3(),
    ];
    let width = verdicts.iter().map(|v| v.claim.len()).max().unwrap_or(0);
    for v in &verdicts {
        emit(format!("{:<width$}  {:<14}  {}", v.claim, v.status, v.detail));
    }
}
