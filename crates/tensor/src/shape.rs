//! Shape bookkeeping helpers shared by [`crate::Tensor`] and the autograd ops.

use std::error::Error;
use std::fmt;

/// Error returned when constructing a tensor from mismatched data and shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    expected: usize,
    actual: usize,
    shape: Vec<usize>,
}

impl ShapeError {
    pub(crate) fn new(shape: &[usize], actual: usize) -> Self {
        Self {
            // A shape whose product overflows can never be satisfied by
            // real data; saturate so the error message stays meaningful.
            expected: checked_num_elements(shape).unwrap_or(usize::MAX),
            actual,
            shape: shape.to_vec(),
        }
    }
}

/// Error returned when a shape's element count overflows `usize`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizeOverflowError {
    shape: Vec<usize>,
}

impl fmt::Display for SizeOverflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shape {:?} has more elements than usize can represent",
            self.shape
        )
    }
}

impl Error for SizeOverflowError {}

/// Total number of elements implied by `shape`, erroring on overflow
/// instead of silently wrapping in release builds.
///
/// # Errors
///
/// [`SizeOverflowError`] when the product exceeds `usize::MAX`.
///
/// # Example
///
/// ```
/// assert_eq!(a3cs_tensor::checked_num_elements(&[2, 3, 4]), Ok(24));
/// assert!(a3cs_tensor::checked_num_elements(&[usize::MAX, 2]).is_err());
/// ```
pub fn checked_num_elements(shape: &[usize]) -> Result<usize, SizeOverflowError> {
    shape
        .iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
        .ok_or_else(|| SizeOverflowError {
            shape: shape.to_vec(),
        })
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shape {:?} requires {} elements but {} were provided",
            self.shape, self.expected, self.actual
        )
    }
}

impl Error for ShapeError {}

/// Total number of elements implied by `shape`.
///
/// The empty shape `[]` denotes a scalar and has one element.
///
/// # Example
///
/// ```
/// assert_eq!(a3cs_tensor::num_elements(&[2, 3, 4]), 24);
/// assert_eq!(a3cs_tensor::num_elements(&[]), 1);
/// ```
#[must_use]
pub fn num_elements(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Row-major (C-order) strides for `shape`.
///
/// # Example
///
/// ```
/// assert_eq!(a3cs_tensor::strides_for(&[2, 3, 4]), vec![12, 4, 1]);
/// ```
#[must_use]
pub fn strides_for(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![1; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    strides
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_elements_of_scalar_is_one() {
        assert_eq!(num_elements(&[]), 1);
    }

    #[test]
    fn num_elements_with_zero_dim_is_zero() {
        assert_eq!(num_elements(&[3, 0, 2]), 0);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(strides_for(&[4]), vec![1]);
        assert_eq!(strides_for(&[2, 5]), vec![5, 1]);
        assert_eq!(strides_for(&[2, 3, 4]), vec![12, 4, 1]);
    }

    #[test]
    fn strides_of_scalar_is_empty() {
        assert!(strides_for(&[]).is_empty());
    }

    #[test]
    fn shape_error_display_mentions_counts() {
        let err = ShapeError::new(&[2, 2], 3);
        let msg = err.to_string();
        assert!(msg.contains('4') && msg.contains('3'), "{msg}");
    }

    #[test]
    fn checked_num_elements_matches_unchecked_when_small() {
        for shape in [&[][..], &[3][..], &[2, 3, 4][..], &[3, 0, 2][..]] {
            assert_eq!(checked_num_elements(shape), Ok(num_elements(shape)));
        }
    }

    #[test]
    fn checked_num_elements_errors_on_overflow() {
        let err = checked_num_elements(&[usize::MAX, 2]).unwrap_err();
        assert!(err.to_string().contains("more elements"), "{err}");
        // Overflow in a middle factor, even when a later dim is zero:
        // the product is computed left-to-right, so this must also error
        // rather than "rescue" itself through the zero.
        assert!(checked_num_elements(&[usize::MAX, 3, 0]).is_err());
    }

    #[test]
    fn shape_error_saturates_on_overflowing_shape() {
        let err = ShapeError::new(&[usize::MAX, 2], 3);
        assert_eq!(err.expected, usize::MAX);
    }
}
