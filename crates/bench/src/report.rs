//! Table printing, JSON result persistence and the experiment binaries'
//! structured output channel.
//!
//! All human-facing output of the `crates/bench` binaries flows through
//! [`status`]/[`warn`] so that every line is mirrored into the telemetry
//! event stream (as `bench.status`/`bench.warn` instants) whenever a
//! [`telemetry::Session`] is active — traces then carry the experiment's
//! narrative alongside its phase timings.

use serde::Serialize;
use std::fs;
use std::path::PathBuf;

/// Print a progress/result line to stdout, mirroring it into the
/// telemetry event stream when a session is active.
pub fn status(line: impl AsRef<str>) {
    let line = line.as_ref();
    if telemetry::enabled() {
        telemetry::instant("bench.status", line);
    }
    println!("{line}");
}

/// Print a warning to stderr, mirroring it into the telemetry event
/// stream when a session is active.
pub fn warn(line: impl AsRef<str>) {
    let line = line.as_ref();
    if telemetry::enabled() {
        telemetry::instant("bench.warn", line);
    }
    eprintln!("warning: {line}");
}

/// Unwrap a setup result or exit the process with the error on stderr.
/// Experiment binaries have no caller to propagate errors to, so a bad
/// game/backbone/config name ends the run with a diagnostic instead of a
/// panic backtrace.
pub fn or_exit<T, E: std::fmt::Display>(result: Result<T, E>) -> T {
    match result {
        Ok(v) => v,
        Err(e) => {
            warn(format!("{e}"));
            std::process::exit(2);
        }
    }
}

/// Print an aligned text table through [`status`].
///
/// # Panics
///
/// Panics if a row's arity differs from the header's.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row arity mismatch");
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (cell, w) in cells.iter().zip(widths.iter()) {
            out.push_str(&format!("{cell:>w$}  ", w = w));
        }
        status(out.trim_end());
    };
    line(headers.iter().map(|s| (*s).to_owned()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Directory where experiment JSON dumps are written: `results/` under
/// the current working directory (the workspace root when invoked via
/// `cargo run`), created on demand.
#[must_use]
pub fn results_dir() -> PathBuf {
    PathBuf::from("results")
}

/// Serialise `value` as pretty JSON into `results/<name>.json`.
///
/// Failures are reported on stderr but do not abort the experiment (the
/// printed table is the primary artefact).
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let dir = results_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        warn(format!("cannot create {}: {e}", dir.display()));
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = fs::write(&path, json) {
                warn(format!("cannot write {}: {e}", path.display()));
            } else {
                status(format!("(results written to {})", path.display()));
            }
        }
        Err(e) => warn(format!("cannot serialise {name}: {e}")),
    }
}

/// Format a float compactly for table cells.
#[must_use]
pub fn fmt(v: f64) -> String {
    if v.abs() >= 10_000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_scales_precision() {
        assert_eq!(fmt(123_456.7), "123457");
        assert_eq!(fmt(123.456), "123.5");
        assert_eq!(fmt(1.2345), "1.23");
    }

    #[test]
    fn print_table_accepts_matching_rows() {
        print_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["33".into(), "4".into()]],
        );
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn print_table_rejects_ragged_rows() {
        print_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn or_exit_passes_ok_through() {
        let v: Result<u32, String> = Ok(7);
        assert_eq!(or_exit(v), 7);
    }

    #[test]
    fn status_lines_reach_the_telemetry_stream() {
        // The telemetry collector is process-global; this is the only test
        // in this crate that opens a session, so no serialisation needed.
        let session = telemetry::Session::start();
        status("hello from the bench");
        let trace = session.finish();
        assert!(trace
            .instants()
            .any(|i| i.name == "bench.status" && i.detail.contains("hello from the bench")));
    }
}
