//! Runtime robustness diagnostics: a structured log of every
//! fault-tolerance action the co-search loop takes — resumes, corrupt
//! checkpoints skipped, divergence sentinel trips, rollbacks, injected
//! faults — surfaced through [`crate::CoSearchResult`] so harnesses can
//! assert on (and operators can audit) how a run survived.

use serde::{Deserialize, Serialize};
use std::fmt;

/// What kind of robustness action happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RobustnessEventKind {
    /// The run resumed from an on-disk checkpoint instead of starting
    /// fresh.
    Resumed,
    /// A checkpoint file failed integrity verification and was skipped in
    /// favour of an older one.
    CorruptCheckpointSkipped,
    /// A recovered checkpoint parsed but could not be applied (config
    /// fingerprint or shape mismatch); the run started fresh instead.
    ResumeRejected,
    /// Writing a checkpoint failed; the run continued without it.
    CheckpointWriteFailed,
    /// The divergence sentinel saw a non-finite loss after backward.
    NonFiniteLoss,
    /// The divergence sentinel saw a non-finite parameter after an update.
    NonFiniteParam,
    /// The loop state was rolled back to the last good checkpoint.
    RolledBack,
    /// A sentinel tripped but the rollback budget was exhausted; the
    /// offending update was skipped and the run continued degraded.
    RollbackBudgetExhausted,
    /// A sentinel tripped before any checkpoint existed to roll back to;
    /// the offending update was skipped.
    NoCheckpointToRollBackTo,
    /// A configured fault from the injection plan fired.
    FaultInjected,
    /// A supervised phase panicked; its entry snapshot was restored.
    PhaseFailed,
    /// A failed phase was retried from its entry snapshot.
    PhaseRetried,
    /// A failed phase exhausted its retry budget; the run surfaced
    /// [`crate::SearchError::RunAbort`].
    RetriesExhausted,
    /// A phase overran the stall watchdog's soft deadline.
    PhaseStalled,
    /// A pool worker lane panicked and was quarantined (its restartable
    /// chunks, if any, were re-executed on the supervising thread).
    LaneQuarantined,
    /// A replacement worker was spawned for a quarantined lane.
    WorkerRespawned,
    /// The degradation ladder stepped the supervised thread count down.
    LadderStepped,
    /// A fleet session reached a terminal failed state (its siblings keep
    /// running).
    SessionFailed,
    /// A failed fleet session was scheduled for a restart from its last
    /// good checkpoint after a deterministic backoff.
    SessionRestarted,
    /// A failed fleet session exhausted `max_session_restarts`.
    SessionRestartsExhausted,
    /// A fleet session was cancelled via the session API.
    SessionCancelled,
    /// A store scrub found a broken checkpoint frame and quarantined it
    /// (renamed to `.bad`, never deleted).
    CheckpointQuarantined,
    /// Replaying a delta chain hit an unverifiable frame; recovery resumed
    /// from the longest verified prefix (or an older base) instead.
    DeltaChainFallback,
    /// A long delta chain was folded into a fresh base frame.
    StoreCompacted,
}

impl RobustnessEventKind {
    /// Stable lowercase label (used in logs and summaries).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RobustnessEventKind::Resumed => "resumed",
            RobustnessEventKind::CorruptCheckpointSkipped => "corrupt-checkpoint-skipped",
            RobustnessEventKind::ResumeRejected => "resume-rejected",
            RobustnessEventKind::CheckpointWriteFailed => "checkpoint-write-failed",
            RobustnessEventKind::NonFiniteLoss => "non-finite-loss",
            RobustnessEventKind::NonFiniteParam => "non-finite-param",
            RobustnessEventKind::RolledBack => "rolled-back",
            RobustnessEventKind::RollbackBudgetExhausted => "rollback-budget-exhausted",
            RobustnessEventKind::NoCheckpointToRollBackTo => "no-checkpoint-to-roll-back-to",
            RobustnessEventKind::FaultInjected => "fault-injected",
            RobustnessEventKind::PhaseFailed => "phase-failed",
            RobustnessEventKind::PhaseRetried => "phase-retried",
            RobustnessEventKind::RetriesExhausted => "retries-exhausted",
            RobustnessEventKind::PhaseStalled => "phase-stalled",
            RobustnessEventKind::LaneQuarantined => "lane-quarantined",
            RobustnessEventKind::WorkerRespawned => "worker-respawned",
            RobustnessEventKind::LadderStepped => "ladder-stepped",
            RobustnessEventKind::SessionFailed => "session-failed",
            RobustnessEventKind::SessionRestarted => "session-restarted",
            RobustnessEventKind::SessionRestartsExhausted => "session-restarts-exhausted",
            RobustnessEventKind::SessionCancelled => "session-cancelled",
            RobustnessEventKind::CheckpointQuarantined => "checkpoint-quarantined",
            RobustnessEventKind::DeltaChainFallback => "delta-chain-fallback",
            RobustnessEventKind::StoreCompacted => "store-compacted",
        }
    }

    /// Every kind, in a stable order (the binary checkpoint codec encodes a
    /// kind as its index here; appending new kinds keeps old payloads
    /// readable).
    #[must_use]
    pub fn all() -> &'static [RobustnessEventKind] {
        &[
            RobustnessEventKind::Resumed,
            RobustnessEventKind::CorruptCheckpointSkipped,
            RobustnessEventKind::ResumeRejected,
            RobustnessEventKind::CheckpointWriteFailed,
            RobustnessEventKind::NonFiniteLoss,
            RobustnessEventKind::NonFiniteParam,
            RobustnessEventKind::RolledBack,
            RobustnessEventKind::RollbackBudgetExhausted,
            RobustnessEventKind::NoCheckpointToRollBackTo,
            RobustnessEventKind::FaultInjected,
            RobustnessEventKind::PhaseFailed,
            RobustnessEventKind::PhaseRetried,
            RobustnessEventKind::RetriesExhausted,
            RobustnessEventKind::PhaseStalled,
            RobustnessEventKind::LaneQuarantined,
            RobustnessEventKind::WorkerRespawned,
            RobustnessEventKind::LadderStepped,
            RobustnessEventKind::SessionFailed,
            RobustnessEventKind::SessionRestarted,
            RobustnessEventKind::SessionRestartsExhausted,
            RobustnessEventKind::SessionCancelled,
            RobustnessEventKind::CheckpointQuarantined,
            RobustnessEventKind::DeltaChainFallback,
            RobustnessEventKind::StoreCompacted,
        ]
    }

    /// Inverse of [`RobustnessEventKind::label`].
    #[must_use]
    pub fn from_label(label: &str) -> Option<Self> {
        Self::all().iter().copied().find(|k| k.label() == label)
    }
}

impl fmt::Display for RobustnessEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One robustness action, stamped with the co-search iteration it happened
/// at.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RobustnessEvent {
    /// Co-search iteration (outer-loop index, not env steps) at the time.
    pub iteration: u64,
    /// What happened.
    pub kind: RobustnessEventKind,
    /// Human-readable specifics (paths, error messages, fault parameters).
    pub detail: String,
}

impl fmt::Display for RobustnessEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[iter {}] {}: {}", self.iteration, self.kind, self.detail)
    }
}

/// Ordered log of every robustness action a run took. Empty for a run that
/// needed none.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RobustnessLog {
    /// Events in the order they happened.
    pub events: Vec<RobustnessEvent>,
}

impl RobustnessLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event. Every robustness action is also mirrored into the
    /// telemetry event stream (when a telemetry session is active) so traces
    /// show *why* a rollback or resume happened alongside the phase timings.
    pub fn push(&mut self, iteration: u64, kind: RobustnessEventKind, detail: impl Into<String>) {
        let detail = detail.into();
        if telemetry::enabled() {
            telemetry::instant(kind.label(), &format!("[iter {iteration}] {detail}"));
        }
        self.events.push(RobustnessEvent {
            iteration,
            kind,
            detail,
        });
    }

    /// Number of events of `kind`.
    #[must_use]
    pub fn count(&self, kind: RobustnessEventKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// `true` if no robustness action was needed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_counts_by_kind() {
        let mut log = RobustnessLog::new();
        assert!(log.is_empty());
        log.push(3, RobustnessEventKind::NonFiniteLoss, "loss = nan");
        log.push(3, RobustnessEventKind::RolledBack, "to iteration 2");
        log.push(9, RobustnessEventKind::NonFiniteLoss, "loss = inf");
        assert_eq!(log.count(RobustnessEventKind::NonFiniteLoss), 2);
        assert_eq!(log.count(RobustnessEventKind::RolledBack), 1);
        assert_eq!(log.count(RobustnessEventKind::Resumed), 0);
        assert!(!log.is_empty());
    }

    #[test]
    fn event_serialises_round_trip() {
        let mut log = RobustnessLog::new();
        log.push(7, RobustnessEventKind::FaultInjected, "nan loss at 7");
        let json = serde_json::to_string(&log).expect("serialises");
        let back: RobustnessLog = serde_json::from_str(&json).expect("parses");
        assert_eq!(log, back);
    }

    #[test]
    fn labels_round_trip_through_from_label() {
        for &kind in RobustnessEventKind::all() {
            assert_eq!(RobustnessEventKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(RobustnessEventKind::from_label("no-such-kind"), None);
    }

    #[test]
    fn display_is_readable() {
        let e = RobustnessEvent {
            iteration: 4,
            kind: RobustnessEventKind::RolledBack,
            detail: "to iteration 3".to_string(),
        };
        assert_eq!(e.to_string(), "[iter 4] rolled-back: to iteration 3");
    }
}
