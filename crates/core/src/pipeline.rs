//! The A3C-S co-search loop (paper Alg. 1).

use crate::config::{CoSearchConfig, SearchScheme};
use crate::result::CoSearchResult;
use a3cs_accel::{DasEngine, PerfModel};
use a3cs_check::{check_search_setup, check_supernet, max_arch_depth, Report};
use a3cs_drl::{
    a2c_losses, clip_grad_norm, evaluate, ActorCritic, Adam, DistillConfig, DistillMode,
    EnvFactory, EvalProtocol, LrSchedule, Optimizer, RmsProp, RolloutRunner,
};
use a3cs_envs::wrappers::{ClipReward, EpisodeLimit};
use a3cs_envs::Environment;
use a3cs_nas::SuperNet;
use a3cs_tensor::{Tape, Tensor};
use std::rc::Rc;

/// Layer-wise hardware cost of every candidate operator of every supernet
/// cell on `accel` (Eq. 8's `L_cost^{α_i^l}`): the cycle count of the
/// operator's compute layers on the cheapest chunk. Skip operators with
/// no compute layers cost zero.
#[must_use]
pub fn per_op_costs(
    supernet: &SuperNet,
    accel: &a3cs_accel::AcceleratorConfig,
    target: &a3cs_accel::FpgaTarget,
) -> Vec<Vec<f64>> {
    let bw_share = target.dram_bytes_per_cycle() / accel.chunks.len().max(1) as f64;
    supernet
        .candidate_layer_descs()
        .iter()
        .map(|per_op| {
            per_op
                .iter()
                .map(|descs| {
                    if descs.is_empty() {
                        return 0.0;
                    }
                    accel
                        .chunks
                        .iter()
                        .map(|chunk| {
                            descs
                                .iter()
                                .map(|d| {
                                    let dims = a3cs_accel::LayerDims::from_desc(d);
                                    PerfModel::layer_cycles(chunk, &dims, bw_share).0
                                })
                                .sum::<f64>()
                        })
                        .fold(f64::INFINITY, f64::min)
                })
                .collect()
        })
        .collect()
}

/// Static pre-flight verification of a co-search configuration: symbolic
/// shape inference over every operator the supernet can derive, plus
/// legality of the accelerator search setup (knob lists, chunk count,
/// assignment coverage of the deepest derivable network).
///
/// Runs in O(config) — no tensors are allocated and no search step is
/// taken — so it is cheap enough to gate every [`CoSearch`] construction.
#[must_use]
pub fn preflight(config: &CoSearchConfig) -> Report {
    let mut report = check_supernet(&config.supernet);
    report.merge(check_search_setup(
        &config.das.space,
        config.das.num_chunks,
        config.das.max_layers,
        max_arch_depth(&config.supernet),
    ));
    report
}

/// The co-search driver: owns the supernet agent, the DAS engine and the
/// two optimisers (RMSProp for `θ`, Adam for `α` — paper Section V-A).
pub struct CoSearch {
    config: CoSearchConfig,
    seed: u64,
    supernet: Rc<SuperNet>,
    agent: ActorCritic,
    das: DasEngine,
}

impl CoSearch {
    /// Construct a fresh co-search with its own supernet and `φ`
    /// distribution, after the [`preflight`] gate passes.
    ///
    /// # Errors
    ///
    /// Returns the full diagnostic [`Report`] when the configuration fails
    /// any static check, so callers can print every problem at once
    /// instead of fixing them one panic at a time.
    pub fn try_new(config: CoSearchConfig, seed: u64) -> Result<Self, Report> {
        let report = preflight(&config);
        if !report.is_clean() {
            return Err(report);
        }
        Ok(Self::build(config, seed))
    }

    /// Construct a fresh co-search with its own supernet and `φ`
    /// distribution.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails the static [`preflight`] checks.
    #[must_use]
    pub fn new(config: CoSearchConfig, seed: u64) -> Self {
        match Self::try_new(config, seed) {
            Ok(search) => search,
            Err(report) => panic!("co-search pre-flight failed:\n{report}"),
        }
    }

    fn build(config: CoSearchConfig, seed: u64) -> Self {
        if let Some(n) = config.threads {
            // First caller wins: the pool is process-global, and results
            // are bit-identical for every thread count anyway.
            let _ = threadpool::configure_global(n);
        }
        let supernet = Rc::new(SuperNet::new(config.supernet, seed));
        let (p, h, w) = (
            config.supernet.in_planes,
            config.supernet.height,
            config.supernet.width,
        );
        let agent = ActorCritic::new(
            Box::new(Rc::clone(&supernet)),
            config.supernet.feat_dim,
            (p, h, w),
            config.n_actions,
            seed.wrapping_add(1),
        );
        let das = DasEngine::new(config.das.clone(), seed.wrapping_add(2));
        CoSearch {
            config,
            seed,
            supernet,
            agent,
            das,
        }
    }

    /// The supernet under search.
    #[must_use]
    pub fn supernet(&self) -> &SuperNet {
        &self.supernet
    }

    /// The supernet-backed agent.
    #[must_use]
    pub fn agent(&self) -> &ActorCritic {
        &self.agent
    }

    /// The accelerator search engine (φ distribution).
    #[must_use]
    pub fn das(&self) -> &DasEngine {
        &self.das
    }

    /// Apply Eq. 8: add `λ ·` (normalised layer-wise hardware cost of the
    /// activated operator on the current accelerator `φ*`) to that
    /// operator's `α` gradient, for every cell.
    fn apply_cost_gradient(&self, sampled: &[usize]) {
        let accel = self.das.best(self.supernet.most_likely_layer_descs().len());
        let costs = per_op_costs(&self.supernet, &accel, &self.config.target);
        for (cell_idx, cell_costs) in costs.iter().enumerate() {
            let max_cost = cell_costs.iter().copied().fold(0.0, f64::max).max(1e-9);
            let activated = sampled[cell_idx];
            let rel = (cell_costs[activated] / max_cost) as f32;
            let num_ops = cell_costs.len();
            let mut grad = Tensor::zeros(&[num_ops]);
            grad.data_mut()[activated] = self.config.lambda * rel;
            self.supernet.arch().cell(cell_idx).accumulate_grad(&grad);
        }
    }

    /// Run the full co-search (Alg. 1) against environments from
    /// `factory`, optionally distilling from `teacher`.
    pub fn run(
        &mut self,
        factory: &EnvFactory<'_>,
        teacher: Option<&ActorCritic>,
    ) -> CoSearchResult {
        let cfg = self.config.clone();
        let distill = match cfg.scheme {
            SearchScheme::DirectNas => DistillConfig {
                mode: DistillMode::None,
                ..cfg.distill
            },
            _ => cfg.distill,
        };
        let teacher = match distill.mode {
            DistillMode::None => None,
            _ => teacher,
        };

        let cap = cfg.episode_cap;
        let train_factory = move |seed: u64| -> Box<dyn Environment> {
            Box::new(EpisodeLimit::new(ClipReward::new(factory(seed)), cap))
        };
        let mut train_runner = RolloutRunner::new(&train_factory, cfg.n_envs, self.seed);
        // Bi-level mode draws its α updates from held-out rollouts.
        let mut val_runner = match cfg.scheme {
            SearchScheme::BiLevel => Some(RolloutRunner::new(
                &train_factory,
                cfg.n_envs,
                self.seed ^ 0x55aa_55aa,
            )),
            _ => None,
        };

        let weight_params = self.agent.params();
        let alpha_params = self.supernet.arch().params();
        let mut weight_opt = RmsProp::new(cfg.weight_lr);
        let mut alpha_opt = Adam::new(cfg.alpha_lr);
        let schedule = LrSchedule {
            initial_lr: cfg.weight_lr,
            final_lr: cfg.weight_lr * 0.1,
            constant_steps: cfg.total_steps / 3,
            total_steps: cfg.total_steps,
        };

        let mut steps: u64 = 0;
        let mut next_eval = cfg.eval_every.min(cfg.total_steps);
        let mut score_curve = Vec::new();
        let mut alpha_entropy_curve = Vec::new();
        let mut iteration: u64 = 0;

        // Rollouts sample operator paths per Eq. 6 (Alg. 1); evaluations
        // below temporarily switch back to the argmax network.
        self.supernet.set_eval_sampling(true);
        while steps < cfg.total_steps {
            self.supernet.set_step(steps);

            // --- φ update (Eq. 5/9) on the current most-likely network.
            let proxy_layers = self.supernet.most_likely_layer_descs();
            for _ in 0..cfg.das_steps_per_iter {
                let _ = self.das.step(&proxy_layers, &cfg.target);
            }

            // --- rollout + L_task.
            let (runner, update_weights, update_alpha) = match cfg.scheme {
                SearchScheme::BiLevel => {
                    if iteration % 2 == 0 {
                        (&mut train_runner, true, false)
                    } else {
                        match val_runner.as_mut() {
                            Some(runner) => (runner, false, true),
                            None => unreachable!("bilevel scheme constructs a validation runner"),
                        }
                    }
                }
                _ => (&mut train_runner, true, true),
            };
            let rollout = runner.collect(&self.agent, cfg.rollout_len);
            steps += rollout.transitions() as u64;

            let tape = Tape::new();
            self.agent.zero_grad();
            self.supernet.arch().zero_grad();
            let (loss, _stats) =
                a2c_losses(&tape, &self.agent, &rollout, &cfg.a2c, &distill, teacher);
            loss.backward();

            if update_alpha {
                // --- λ·L_cost gradient on the activated ops (Eq. 8).
                let sampled = self.supernet.last_sampled_indices();
                self.apply_cost_gradient(&sampled);
                alpha_opt.step(&alpha_params);
            }
            if update_weights {
                let _ = clip_grad_norm(&weight_params, cfg.max_grad_norm);
                weight_opt.set_lr(schedule.at(steps));
                weight_opt.step(&weight_params);
            }
            iteration += 1;

            // --- periodic evaluation of the argmax network (Fig. 2 data).
            if steps >= next_eval {
                let protocol = EvalProtocol {
                    episodes: cfg.eval_episodes,
                    noop_max: 8,
                    max_steps: cfg.eval_max_steps,
                    seed: self.seed ^ steps,
                    greedy: false,
                };
                self.supernet.set_eval_sampling(false);
                let score = evaluate(&self.agent, factory, &protocol);
                self.supernet.set_eval_sampling(true);
                score_curve.push((steps, score));
                alpha_entropy_curve.push((steps, self.supernet.arch().mean_entropy()));
                next_eval += cfg.eval_every;
            }
        }

        // --- derive the final pair: argmax α network + refined DAS φ.
        self.supernet.set_eval_sampling(false);
        let arch = self.supernet.most_likely_arch();
        let final_layers = self.supernet.most_likely_layer_descs();
        let accelerator = self
            .das
            .run(&final_layers, &cfg.target, cfg.das_final_iters);
        let report = PerfModel::evaluate(&accelerator, &final_layers, &cfg.target);

        CoSearchResult {
            arch,
            accelerator,
            report,
            score_curve,
            alpha_entropy_curve,
            steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoSearchConfig;
    use a3cs_envs::Breakout;

    fn factory(seed: u64) -> Box<dyn Environment> {
        Box::new(Breakout::new(seed))
    }

    fn tiny_config(total_steps: u64) -> CoSearchConfig {
        let mut cfg = CoSearchConfig::tiny(3, 12, 12, 3);
        cfg.total_steps = total_steps;
        cfg.eval_every = total_steps;
        cfg.eval_episodes = 2;
        cfg.eval_max_steps = 40;
        cfg.das_final_iters = 50;
        cfg
    }

    #[test]
    fn cosearch_produces_consistent_result() {
        let mut search = CoSearch::new(tiny_config(300), 1);
        let result = search.run(&factory, None);
        assert_eq!(result.arch.len(), 6);
        assert!(result.report.fps > 0.0);
        assert_eq!(
            result.accelerator.assignment.len(),
            search.supernet().most_likely_layer_descs().len()
        );
        assert!(!result.score_curve.is_empty());
        assert!(result.steps >= 300);
    }

    #[test]
    fn cost_pressure_moves_alpha_away_from_uniform() {
        let mut cfg = tiny_config(600);
        cfg.lambda = 2.0; // strong cost pressure
        let mut search = CoSearch::new(cfg, 2);
        let h0 = search.supernet().arch().mean_entropy();
        let _ = search.run(&factory, None);
        let h1 = search.supernet().arch().mean_entropy();
        assert!(h1 < h0, "α should sharpen under cost pressure: {h0} -> {h1}");
    }

    #[test]
    fn bilevel_mode_runs() {
        let mut cfg = tiny_config(300);
        cfg.scheme = SearchScheme::BiLevel;
        let result = CoSearch::new(cfg, 3).run(&factory, None);
        assert_eq!(result.arch.len(), 6);
    }

    #[test]
    fn direct_nas_ignores_teacher() {
        let mut cfg = tiny_config(200);
        cfg.scheme = SearchScheme::DirectNas;
        // Teacher has incompatible shape on purpose: it must never be used.
        let mut search = CoSearch::new(cfg, 4);
        let result = search.run(&factory, None);
        assert_eq!(result.arch.len(), 6);
    }

    #[test]
    fn cosearch_sharpens_the_phi_distribution() {
        let mut cfg = tiny_config(500);
        cfg.das_steps_per_iter = 3;
        let mut search = CoSearch::new(cfg, 13);
        let h0 = search.das().mean_entropy();
        let _ = search.run(&factory, None);
        assert!(
            search.das().mean_entropy() < h0,
            "φ entropy should fall as DAS commits"
        );
    }

    #[test]
    fn per_op_costs_rank_operators_sensibly() {
        use a3cs_accel::{DasConfig, DasEngine, FpgaTarget};
        use a3cs_nas::{SuperNet, SupernetConfig, ALL_OPS};

        let sn = SuperNet::new(SupernetConfig::tiny(3, 12, 12), 9);
        let das = DasEngine::new(DasConfig::default(), 9);
        let accel = das.best(sn.most_likely_layer_descs().len());
        let costs = per_op_costs(&sn, &accel, &FpgaTarget::zc706());
        assert_eq!(costs.len(), sn.num_cells());
        let skip_idx = ALL_OPS.len() - 1;
        for cell in &costs {
            assert_eq!(cell.len(), ALL_OPS.len());
            // Every op costs something except possibly identity skips.
            assert!(cell.iter().all(|&c| c >= 0.0 && c.is_finite()));
            // conv5x5 (idx 1) is never cheaper than conv3x3 (idx 0).
            assert!(cell[1] >= cell[0]);
            // ir_k3_e5 (idx 4) is never cheaper than ir_k3_e1 (idx 2).
            assert!(cell[4] >= cell[2]);
            // skip is the cheapest option in the cell.
            let min = cell.iter().copied().fold(f64::INFINITY, f64::min);
            assert_eq!(cell[skip_idx], min);
        }
        // Identity skips (stride-1, equal channels) are exactly free.
        assert_eq!(costs[1][skip_idx], 0.0);
    }

    #[test]
    fn preflight_accepts_the_stock_configs() {
        assert!(preflight(&tiny_config(300)).is_clean());
        assert!(preflight(&CoSearchConfig::paper(4, 84, 84, 6)).is_clean());
    }

    #[test]
    fn preflight_rejects_a_broken_cell_count() {
        let mut cfg = tiny_config(300);
        cfg.supernet.num_cells = 5; // not a multiple of 3
        let report = preflight(&cfg);
        assert!(!report.is_clean());
        assert!(report.has_code(a3cs_check::codes::ARCH_BAD_STRUCTURE));
        assert!(CoSearch::try_new(cfg, 0).is_err());
    }

    #[test]
    fn preflight_rejects_insufficient_assignment_coverage() {
        let mut cfg = tiny_config(300);
        cfg.das.max_layers = 3; // far fewer than the deepest derivable net
        let report = preflight(&cfg);
        assert!(report.has_code(a3cs_check::codes::ACCEL_DEPTH_EXCEEDS_KNOBS));
        assert!(CoSearch::try_new(cfg, 0).is_err());
    }

    #[test]
    #[should_panic(expected = "co-search pre-flight failed")]
    fn new_panics_on_preflight_failure() {
        let mut cfg = tiny_config(300);
        cfg.das.num_chunks = 0;
        let _ = CoSearch::new(cfg, 0);
    }

    #[test]
    fn derived_accelerator_is_dsp_feasible() {
        let mut search = CoSearch::new(tiny_config(300), 5);
        let result = search.run(&factory, None);
        assert!(
            result.report.dsp_used <= 900 * 2,
            "resource penalty should keep DSPs near budget: {}",
            result.report.dsp_used
        );
    }
}
