//! Offline vendored stand-in for `serde_json`: renders the vendored
//! `serde::Value` tree as JSON text and parses it back with a
//! recursive-descent parser. Matches `serde_json` conventions where the
//! workspace depends on them: `Index<&str>` yields `Null` for missing
//! fields, non-finite floats serialize as `null`, and object key order is
//! preserved.

#![deny(missing_docs)]

pub use serde::Value;

/// JSON encode/decode failure (same type as `serde::Error`).
pub type Error = serde::Error;

use serde::{Deserialize, Serialize};

/// Serialize `value` to compact JSON.
///
/// # Errors
///
/// This vendored implementation cannot fail, but keeps the fallible
/// signature for `serde_json` compatibility.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` to 2-space-indented JSON.
///
/// # Errors
///
/// This vendored implementation cannot fail, but keeps the fallible
/// signature for `serde_json` compatibility.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any [`Deserialize`] type.
///
/// # Errors
///
/// Returns an [`Error`] describing the first syntax or shape problem.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => {
            if n.is_finite() {
                // `{}` on f64 prints the shortest representation that
                // round-trips, and integral values without a trailing `.0`.
                out.push_str(&format!("{n}"));
            } else {
                // serde_json serializes non-finite floats as null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.iter(), items.len(), indent, depth, |out, item, ind, d| {
                write_value(out, item, ind, d);
            });
        }
        Value::Object(fields) => {
            out.push('{');
            write_items(out, fields.iter(), fields.len(), indent, depth, |out, (k, val), ind, d| {
                write_string(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, val, ind, d);
            });
            out.push('}');
        }
    }
}

fn write_seq<'a, I, T: 'a>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, &'a T, Option<usize>, usize),
) where
    I: Iterator<Item = &'a T>,
{
    out.push('[');
    write_items(out, items, len, indent, depth, |out, item, ind, d| {
        write_item(out, item, ind, d);
    });
    out.push(']');
}

fn write_items<'a, I, T: 'a>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, &'a T, Option<usize>, usize),
) where
    I: Iterator<Item = &'a T>,
{
    if len == 0 {
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::msg(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy runs of plain UTF-8 bytes in one go.
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.parse_hex4()?;
                            // Surrogate pairs are the only subtlety; reject
                            // lone surrogates, combine proper pairs.
                            let c = if (0xd800..0xdc00).contains(&code) {
                                if !(self.eat_literal("\\u")) {
                                    return Err(Error::msg("lone high surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(Error::msg("invalid low surrogate"));
                                }
                                let combined =
                                    0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::msg("invalid surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        other => {
                            return Err(Error::msg(format!(
                                "invalid escape {:?} at byte {}",
                                other.map(|b| b as char),
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                None => return Err(Error::msg("unterminated string")),
                Some(_) => unreachable!("fast path consumed plain bytes"),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::msg("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::msg("invalid \\u escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| Error::msg("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::msg(format!("invalid number `{text}` at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("pe \"array\"\n".into())),
            ("dims".into(), Value::Array(vec![Value::Num(3.0), Value::Num(-1.5)])),
            ("ok".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
        ]);
        let compact = to_string(&v).expect("serialize");
        assert_eq!(from_str::<Value>(&compact).expect("parse"), v);
        let pretty = to_string_pretty(&v).expect("serialize");
        assert_eq!(from_str::<Value>(&pretty).expect("parse"), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn parses_numbers_and_escapes() {
        assert_eq!(from_str::<f64>("1.25e2").expect("number"), 125.0);
        assert_eq!(from_str::<i64>("-42").expect("number"), -42);
        assert_eq!(from_str::<String>(r#""aé\t""#).expect("string"), "a\u{e9}\t");
        assert_eq!(from_str::<String>(r#""😀""#).expect("emoji"), "\u{1f600}");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>(r#""unterminated"#).is_err());
        assert!(from_str::<Value>("nul").is_err());
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).expect("serialize"), "null");
        assert_eq!(to_string(&f64::INFINITY).expect("serialize"), "null");
    }
}
