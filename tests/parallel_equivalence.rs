//! Parallel-vs-sequential equivalence: the deterministic parallel layer
//! must produce bit-identical results at every thread count — rollouts,
//! evaluation scores and conv2d forward/backward, same seeds throughout.

use a3cs::drl::{collect_rollout, evaluate, ActorCritic, EvalProtocol, Rollout};
use a3cs::envs::{make_env, Environment};
use a3cs::nn::resnet;
use a3cs::tensor::{Conv2dGeometry, Tape, Tensor};

fn breakout(seed: u64) -> Box<dyn Environment> {
    make_env("Breakout", seed).expect("Breakout exists")
}

fn resnet20_agent(seed: u64) -> ActorCritic {
    let backbone = resnet(20, 3, 12, 12, 8, 32, seed);
    ActorCritic::new(Box::new(backbone), 32, (3, 12, 12), 3, seed)
}

fn bits(data: &[f32]) -> Vec<u32> {
    data.iter().map(|x| x.to_bits()).collect()
}

fn assert_rollouts_identical(a: &Rollout, b: &Rollout) {
    assert_eq!(a.actions, b.actions);
    assert_eq!(a.dones, b.dones);
    assert_eq!(bits(&a.rewards), bits(&b.rewards));
    assert_eq!(bits(&a.observations), bits(&b.observations));
}

#[test]
fn rollouts_bit_identical_across_thread_counts() {
    let agent = resnet20_agent(1);
    let run = || collect_rollout(&agent, &breakout, 4, 5, 17);
    let seq = threadpool::with_threads(1, run);
    let par = threadpool::with_threads(4, run);
    assert_rollouts_identical(&seq, &par);
}

#[test]
fn eval_scores_bit_identical_across_thread_counts() {
    let agent = resnet20_agent(2);
    let protocol = EvalProtocol {
        episodes: 4,
        max_steps: 50,
        ..EvalProtocol::default()
    };
    let run = || evaluate(&agent, &breakout, &protocol);
    let seq = threadpool::with_threads(1, run);
    let par = threadpool::with_threads(4, run);
    assert_eq!(seq.to_bits(), par.to_bits());
}

#[test]
fn conv2d_forward_backward_bit_identical_across_thread_counts() {
    let geom = Conv2dGeometry {
        in_channels: 16,
        out_channels: 16,
        kernel: 3,
        stride: 1,
        padding: 1,
        in_h: 12,
        in_w: 12,
    };
    let x_t = Tensor::randn(&[8, 16, 12, 12], 0.5, 3);
    let w_t = Tensor::randn(&[16, 16, 3, 3], 0.5, 4);
    let run = || {
        let tape = Tape::new();
        let x = tape.leaf(x_t.clone());
        let w = tape.leaf(w_t.clone());
        let y = x.conv2d(&w, geom);
        y.square().sum().backward();
        let grad = |g: Option<Tensor>| bits(g.expect("leaf gets a gradient").data());
        (bits(y.value().data()), grad(w.grad()), grad(x.grad()))
    };
    let seq = threadpool::with_threads(1, run);
    let par = threadpool::with_threads(4, run);
    assert_eq!(seq, par);
}

#[test]
fn full_agent_forward_bit_identical_across_thread_counts() {
    // End-to-end: every conv, depthwise conv and GEMM in a ResNet-20
    // forward pass, batch of 8.
    let agent = resnet20_agent(5);
    let obs_len = 3 * 12 * 12;
    let batch: Vec<f32> = (0..8 * obs_len).map(|i| (i % 13) as f32 * 0.07).collect();
    let run = || bits(agent.policy_probs(&batch, 8).data());
    let seq = threadpool::with_threads(1, run);
    let par = threadpool::with_threads(4, run);
    assert_eq!(seq, par);
}
