//! Minimal argument parsing shared by the experiment binaries.
//!
//! The harnesses use positional game names as filters and a handful of
//! `--flag value` options; anything heavier than this hand-rolled parser
//! would be an unjustified dependency.

/// Parse `--flag <value>` from an argument list.
#[must_use]
pub fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// `true` if the bare switch `--flag` is present.
#[must_use]
pub fn has_switch(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Positional arguments (everything that is not a `--flag` or its value).
///
/// Note: treats every `--flag` as value-taking; bare switches consume the
/// following positional, so put switches last or use [`has_switch`]-only
/// binaries.
#[must_use]
pub fn positional(args: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = true;
            continue;
        }
        out.push(a.clone());
    }
    out
}

/// Filter a static roster by positional argument names; an empty filter
/// selects everything.
#[must_use]
pub fn filter_games(roster: &[&'static str], filter: &[String]) -> Vec<&'static str> {
    roster
        .iter()
        .copied()
        .filter(|g| filter.is_empty() || filter.iter().any(|f| f == g))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parse_flag_extracts_typed_values() {
        let a = args(&["Breakout", "--steps", "12000", "--top-k", "3"]);
        assert_eq!(parse_flag::<u64>(&a, "--steps"), Some(12000));
        assert_eq!(parse_flag::<usize>(&a, "--top-k"), Some(3));
        assert_eq!(parse_flag::<u64>(&a, "--missing"), None);
    }

    #[test]
    fn parse_flag_rejects_unparseable() {
        let a = args(&["--steps", "many"]);
        assert_eq!(parse_flag::<u64>(&a, "--steps"), None);
    }

    #[test]
    fn positional_skips_flag_values() {
        let a = args(&["Pong", "--steps", "100", "Breakout"]);
        assert_eq!(positional(&a), vec!["Pong", "Breakout"]);
    }

    #[test]
    fn has_switch_detects_bare_flags() {
        let a = args(&["--beta2-only"]);
        assert!(has_switch(&a, "--beta2-only"));
        assert!(!has_switch(&a, "--beta3-only"));
    }

    #[test]
    fn filter_games_empty_selects_all() {
        let roster = ["A", "B", "C"];
        assert_eq!(filter_games(&roster, &[]), vec!["A", "B", "C"]);
        assert_eq!(filter_games(&roster, &args(&["B", "Z"])), vec!["B"]);
    }
}
