//! The A3C-S co-search loop (paper Alg. 1), with an optional
//! fault-tolerance layer: resumable checkpoints, divergence sentinels with
//! rollback, and deterministic fault injection (all off by default — see
//! [`crate::FaultConfig`]).

use crate::checkpoint::{
    apply_tensor_reprs, config_fingerprint, curve_to_repr, das_to_repr, optim_to_repr, pair_u64,
    repr_to_curve, repr_to_das, repr_to_optim, repr_to_runner, repr_to_supernet, runner_to_repr,
    supernet_to_repr, tensors_to_repr, u64_pair, CheckpointError, SearchCheckpoint,
    SEARCH_CHECKPOINT_VERSION,
};
use crate::config::{CoSearchConfig, DeriveEngine, SearchScheme};
use crate::fault::{CheckpointFormat, FaultDriver, FaultyIo};
use crate::result::CoSearchResult;
use crate::robustness::{RobustnessEventKind, RobustnessLog};
use crate::supervision::Supervisor;
use a3cs_accel::{BeamConfig, BeamSearch, DasEngine, PerfModel};
use a3cs_check::{check_search_setup, check_supernet, max_arch_depth, Report};
use a3cs_drl::{
    a2c_losses, clip_grad_norm, encode_base_frame, encode_delta_frame, evaluate, fnv1a64,
    ActorCritic, Adam, CheckpointStore, DistillConfig, DistillMode, EnvFactory, EvalProtocol,
    LrSchedule, Optimizer, RmsProp, RolloutRunner, StdIo,
};
use a3cs_envs::wrappers::{ClipReward, EpisodeLimit};
use a3cs_envs::Environment;
use a3cs_nas::SuperNet;
use a3cs_nn::Param;
use a3cs_tensor::{Tape, Tensor};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;

/// Why [`CoSearch::run_guarded`] stopped before the search completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchError {
    /// A scheduled [`crate::Fault::Abort`] fired: the loop simulated a
    /// process crash at an iteration boundary. The checkpoint store (if
    /// configured) holds whatever was last written; a fresh `CoSearch` on
    /// the same config/seed resumes from it bit-identically.
    Aborted {
        /// Co-search iteration at which the simulated crash fired.
        iteration: u64,
    },
    /// A supervised phase kept panicking past its retry budget (or its
    /// entry snapshot failed to restore): the supervisor gave up on
    /// in-process containment and surfaced the failure as a value instead
    /// of a panic. `log` carries the full attempt history.
    RunAbort {
        /// Name of the supervised phase that exhausted its retries.
        phase: String,
        /// Co-search iteration at which the phase kept failing.
        iteration: u64,
        /// Attempts made (initial execution plus retries).
        attempts: u32,
        /// Complete robustness log up to the abort, including one
        /// `phase-failed` event per attempt.
        log: RobustnessLog,
    },
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::Aborted { iteration } => {
                write!(f, "search aborted by injected crash at iteration {iteration}")
            }
            SearchError::RunAbort {
                phase,
                iteration,
                attempts,
                ..
            } => write!(
                f,
                "supervised phase {phase} failed {attempts} time(s) at iteration {iteration} \
                 and exhausted its retry budget"
            ),
        }
    }
}

impl std::error::Error for SearchError {}

/// Best-effort description of a panic payload for the robustness log.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&'static str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Everything `run_guarded` mutates per iteration, gathered so the
/// checkpoint capture/apply paths see one coherent bundle.
struct RunState {
    train_runner: RolloutRunner,
    val_runner: Option<RolloutRunner>,
    weight_opt: RmsProp,
    alpha_opt: Adam,
    steps: u64,
    next_eval: u64,
    score_curve: Vec<(u64, f32)>,
    alpha_entropy_curve: Vec<(u64, f32)>,
    iteration: u64,
    /// Multiplier on both learning rates; decays by `lr_backoff` per
    /// rollback (1.0 until a rollback happens).
    lr_scale: f32,
    rollbacks_left: u32,
    log: RobustnessLog,
}

/// First parameter containing a non-finite value, if any.
fn first_non_finite(params: &[Param], what: &str) -> Option<String> {
    params.iter().find_map(|p| {
        if p.value().data().iter().any(|x| !x.is_finite()) {
            Some(format!("{what} parameter {:?} is non-finite", p.name()))
        } else {
            None
        }
    })
}

/// Layer-wise hardware cost of every candidate operator of every supernet
/// cell on `accel` (Eq. 8's `L_cost^{α_i^l}`): the cycle count of the
/// operator's compute layers on the cheapest chunk. Skip operators with
/// no compute layers cost zero.
#[must_use]
pub fn per_op_costs(
    supernet: &SuperNet,
    accel: &a3cs_accel::AcceleratorConfig,
    target: &a3cs_accel::FpgaTarget,
) -> Vec<Vec<f64>> {
    let bw_share = target.dram_bytes_per_cycle() / accel.chunks.len().max(1) as f64;
    supernet
        .candidate_layer_descs()
        .iter()
        .map(|per_op| {
            per_op
                .iter()
                .map(|descs| {
                    if descs.is_empty() {
                        return 0.0;
                    }
                    accel
                        .chunks
                        .iter()
                        .map(|chunk| {
                            descs
                                .iter()
                                .map(|d| {
                                    let dims = a3cs_accel::LayerDims::from_desc(d);
                                    PerfModel::layer_cycles(chunk, &dims, bw_share).0
                                })
                                .sum::<f64>()
                        })
                        .fold(f64::INFINITY, f64::min)
                })
                .collect()
        })
        .collect()
}

/// Static pre-flight verification of a co-search configuration: symbolic
/// shape inference over every operator the supernet can derive, plus
/// legality of the accelerator search setup (knob lists, chunk count,
/// assignment coverage of the deepest derivable network).
///
/// Runs in O(config) — no tensors are allocated and no search step is
/// taken — so it is cheap enough to gate every [`CoSearch`] construction.
#[must_use]
pub fn preflight(config: &CoSearchConfig) -> Report {
    let mut report = check_supernet(&config.supernet);
    report.merge(check_search_setup(
        &config.das.space,
        config.das.num_chunks,
        config.das.max_layers,
        max_arch_depth(&config.supernet),
    ));
    report
}

/// The co-search driver: owns the supernet agent, the DAS engine and the
/// two optimisers (RMSProp for `θ`, Adam for `α` — paper Section V-A).
pub struct CoSearch {
    config: CoSearchConfig,
    seed: u64,
    supernet: Rc<SuperNet>,
    agent: ActorCritic,
    das: DasEngine,
}

impl CoSearch {
    /// Construct a fresh co-search with its own supernet and `φ`
    /// distribution, after the [`preflight`] gate passes.
    ///
    /// # Errors
    ///
    /// Returns the full diagnostic [`Report`] when the configuration fails
    /// any static check, so callers can print every problem at once
    /// instead of fixing them one panic at a time.
    pub fn try_new(config: CoSearchConfig, seed: u64) -> Result<Self, Report> {
        let report = preflight(&config);
        if !report.is_clean() {
            return Err(report);
        }
        Ok(Self::build(config, seed))
    }

    fn build(config: CoSearchConfig, seed: u64) -> Self {
        if let Some(n) = config.threads {
            // First caller wins: the pool is process-global, and results
            // are bit-identical for every thread count anyway.
            let _ = threadpool::configure_global(n);
        }
        let supernet = Rc::new(SuperNet::new(config.supernet, seed));
        let (p, h, w) = (
            config.supernet.in_planes,
            config.supernet.height,
            config.supernet.width,
        );
        let agent = ActorCritic::new(
            Box::new(Rc::clone(&supernet)),
            config.supernet.feat_dim,
            (p, h, w),
            config.n_actions,
            seed.wrapping_add(1),
        );
        let das = DasEngine::new(config.das.clone(), seed.wrapping_add(2));
        CoSearch {
            config,
            seed,
            supernet,
            agent,
            das,
        }
    }

    /// The supernet under search.
    #[must_use]
    pub fn supernet(&self) -> &SuperNet {
        &self.supernet
    }

    /// The supernet-backed agent.
    #[must_use]
    pub fn agent(&self) -> &ActorCritic {
        &self.agent
    }

    /// The accelerator search engine (φ distribution).
    #[must_use]
    pub fn das(&self) -> &DasEngine {
        &self.das
    }

    /// Apply Eq. 8: add `λ ·` (normalised layer-wise hardware cost of the
    /// activated operator on the current accelerator `φ*`) to that
    /// operator's `α` gradient, for every cell.
    fn apply_cost_gradient(&self, sampled: &[usize]) {
        let accel = self.das.best(self.supernet.most_likely_layer_descs().len());
        let costs = per_op_costs(&self.supernet, &accel, &self.config.target);
        for (cell_idx, cell_costs) in costs.iter().enumerate() {
            let max_cost = cell_costs.iter().copied().fold(0.0, f64::max).max(1e-9);
            let activated = sampled[cell_idx];
            let rel = (cell_costs[activated] / max_cost) as f32;
            let num_ops = cell_costs.len();
            let mut grad = Tensor::zeros(&[num_ops]);
            grad.data_mut()[activated] = self.config.lambda * rel;
            self.supernet.arch().cell(cell_idx).accumulate_grad(&grad);
        }
    }

    /// Fresh (iteration-zero) loop state for this search.
    fn fresh_run_state(&self, train_factory: &EnvFactory<'_>) -> RunState {
        let cfg = &self.config;
        RunState {
            train_runner: RolloutRunner::new(train_factory, cfg.n_envs, self.seed),
            // Bi-level mode draws its α updates from held-out rollouts.
            val_runner: match cfg.scheme {
                SearchScheme::BiLevel => Some(RolloutRunner::new(
                    train_factory,
                    cfg.n_envs,
                    self.seed ^ 0x55aa_55aa,
                )),
                _ => None,
            },
            weight_opt: RmsProp::new(cfg.weight_lr),
            alpha_opt: Adam::new(cfg.alpha_lr),
            steps: 0,
            next_eval: cfg.eval_every.min(cfg.total_steps),
            score_curve: Vec::new(),
            alpha_entropy_curve: Vec::new(),
            iteration: 0,
            lr_scale: 1.0,
            rollbacks_left: cfg.fault.max_rollbacks,
            log: RobustnessLog::new(),
        }
    }

    /// Snapshot the complete loop state at an iteration boundary.
    fn capture_checkpoint(&self, st: &RunState) -> SearchCheckpoint {
        SearchCheckpoint {
            version: SEARCH_CHECKPOINT_VERSION,
            fingerprint: config_fingerprint(&self.config),
            seed: u64_pair(self.seed),
            steps: st.steps,
            iteration: st.iteration,
            next_eval: st.next_eval,
            score_curve: curve_to_repr(&st.score_curve),
            entropy_curve: curve_to_repr(&st.alpha_entropy_curve),
            weight_params: tensors_to_repr(&self.agent.params()),
            state_tensors: tensors_to_repr(&self.agent.state()),
            supernet: supernet_to_repr(&self.supernet.export_search_state()),
            weight_opt: optim_to_repr(&st.weight_opt.export_state()),
            alpha_opt: optim_to_repr(&st.alpha_opt.export_state()),
            das: das_to_repr(&self.das.export_state()),
            train_runner: runner_to_repr(&st.train_runner.export_state()),
            val_runner: st
                .val_runner
                .as_ref()
                .map(|r| runner_to_repr(&r.export_state())),
            lr_scale: st.lr_scale.to_bits(),
            rollbacks_left: st.rollbacks_left,
            events: st.log.events.clone(),
        }
    }

    /// Restore the loop to a captured iteration boundary. On `Err` the
    /// search/run state may be partially overwritten — callers either
    /// rebuild from scratch (resume path) or know the checkpoint cannot
    /// mismatch (in-memory rollback path).
    fn apply_checkpoint(
        &mut self,
        ck: &SearchCheckpoint,
        st: &mut RunState,
    ) -> Result<(), CheckpointError> {
        let expected = config_fingerprint(&self.config);
        if ck.fingerprint != expected {
            return Err(CheckpointError::Fingerprint {
                expected,
                found: ck.fingerprint.clone(),
            });
        }
        if pair_u64(ck.seed) != self.seed {
            return Err(CheckpointError::Incompatible(format!(
                "checkpoint seed {} vs this run's {}",
                pair_u64(ck.seed),
                self.seed
            )));
        }
        if ck.val_runner.is_some() != st.val_runner.is_some() {
            return Err(CheckpointError::Incompatible(
                "checkpoint and run disagree on the validation runner".to_string(),
            ));
        }
        apply_tensor_reprs(&ck.weight_params, &self.agent.params(), "agent params")?;
        apply_tensor_reprs(&ck.state_tensors, &self.agent.state(), "agent state")?;
        self.supernet
            .import_search_state(&repr_to_supernet(&ck.supernet)?)
            .map_err(|e| CheckpointError::Incompatible(format!("supernet state: {e:?}")))?;
        st.weight_opt
            .import_state(&repr_to_optim(&ck.weight_opt)?)
            .map_err(|e| CheckpointError::Incompatible(format!("weight optimiser: {e}")))?;
        st.alpha_opt
            .import_state(&repr_to_optim(&ck.alpha_opt)?)
            .map_err(|e| CheckpointError::Incompatible(format!("alpha optimiser: {e}")))?;
        self.das
            .import_state(&repr_to_das(&ck.das)?)
            .map_err(|e| CheckpointError::Incompatible(format!("DAS state: {e}")))?;
        st.train_runner
            .import_state(&repr_to_runner(&ck.train_runner)?)
            .map_err(|e| CheckpointError::Incompatible(format!("train runner: {e}")))?;
        if let (Some(runner), Some(repr)) = (st.val_runner.as_mut(), ck.val_runner.as_ref()) {
            runner
                .import_state(&repr_to_runner(repr)?)
                .map_err(|e| CheckpointError::Incompatible(format!("validation runner: {e}")))?;
        }
        st.steps = ck.steps;
        st.iteration = ck.iteration;
        st.next_eval = ck.next_eval;
        st.score_curve = repr_to_curve(&ck.score_curve);
        st.alpha_entropy_curve = repr_to_curve(&ck.entropy_curve);
        st.lr_scale = f32::from_bits(ck.lr_scale);
        st.rollbacks_left = ck.rollbacks_left;
        st.log = RobustnessLog {
            events: ck.events.clone(),
        };
        Ok(())
    }

    /// Run `f` as one supervised phase (see `DESIGN.md` §12).
    ///
    /// Without a supervisor this is a plain call. With one, the phase-entry
    /// state is snapshotted, the phase runs under the supervisor's
    /// isolation-mode pool with the stall watchdog armed, and a panic
    /// anywhere inside the phase restores the snapshot and retries —
    /// bounded by `max_phase_retries` — before surfacing
    /// [`SearchError::RunAbort`]. The snapshot restore is exact (PR 3's
    /// checkpoint machinery), so a retry that succeeds replays the same
    /// trajectory a fault-free run would have taken, bit for bit.
    fn supervised<T>(
        &mut self,
        st: &mut RunState,
        driver: &mut FaultDriver,
        sup: &mut Option<Supervisor>,
        phase: &'static str,
        f: impl Fn(&mut Self, &mut RunState, &mut FaultDriver) -> T,
    ) -> Result<T, SearchError> {
        let Some(sup) = sup.as_mut() else {
            return Ok(f(self, st, driver));
        };
        let snapshot = self.capture_checkpoint(st);
        let mut attempts: u32 = 0;
        loop {
            if driver.worker_panic_now(phase, st.iteration) {
                st.log.push(
                    st.iteration,
                    RobustnessEventKind::FaultInjected,
                    format!("worker panic armed during {phase}"),
                );
                sup.pool.arm_worker_panic();
            }
            let stall_ms = driver.stall_now(phase, st.iteration);
            sup.watchdog.arm(phase, st.iteration, sup.deadline(phase));
            // a3cs::allow(wall-clock): feeds only the watchdog's EWMA
            // deadline (observe-only); never touches loop state or results.
            let started = Instant::now();
            if let Some(millis) = stall_ms {
                st.log.push(
                    st.iteration,
                    RobustnessEventKind::FaultInjected,
                    format!("{phase} stalled for {millis} ms"),
                );
                std::thread::sleep(std::time::Duration::from_millis(millis));
            }
            let pool = Arc::clone(&sup.pool);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                threadpool::with_pool(pool, || {
                    if attempts == 0 {
                        f(&mut *self, st, driver)
                    } else {
                        // Tag every record a retry produces with its attempt
                        // number; the first execution stays untagged so
                        // fault-free traces are byte-identical to before.
                        telemetry::with_retry(Some(attempts), || f(&mut *self, st, driver))
                    }
                })
            }));
            sup.watchdog.disarm();
            sup.timings.record(phase, started.elapsed());
            for stall in sup.watchdog.drain_stalls() {
                st.log.push(
                    stall.iteration,
                    RobustnessEventKind::PhaseStalled,
                    format!(
                        "{} overran its soft deadline of {} ms",
                        stall.phase, stall.deadline_ms
                    ),
                );
            }
            sup.absorb_pool_health(&mut st.log, st.iteration);
            match outcome {
                Ok(value) => return Ok(value),
                Err(payload) => {
                    attempts += 1;
                    st.log.push(
                        st.iteration,
                        RobustnessEventKind::PhaseFailed,
                        format!(
                            "{phase} attempt {attempts} panicked: {}",
                            panic_message(payload.as_ref())
                        ),
                    );
                    // Restore the phase-entry snapshot. The log is monotone
                    // and must survive the restore.
                    let events = std::mem::take(&mut st.log.events);
                    let restored = self.apply_checkpoint(&snapshot, st);
                    st.log.events = events;
                    if let Err(e) = restored {
                        st.log.push(
                            st.iteration,
                            RobustnessEventKind::RetriesExhausted,
                            format!("{phase} entry snapshot failed to restore: {e}"),
                        );
                        return Err(SearchError::RunAbort {
                            phase: phase.to_string(),
                            iteration: st.iteration,
                            attempts,
                            log: st.log.clone(),
                        });
                    }
                    if attempts > sup.max_retries {
                        st.log.push(
                            st.iteration,
                            RobustnessEventKind::RetriesExhausted,
                            format!(
                                "{phase} panicked {attempts} time(s), retry budget {}",
                                sup.max_retries
                            ),
                        );
                        return Err(SearchError::RunAbort {
                            phase: phase.to_string(),
                            iteration: st.iteration,
                            attempts,
                            log: st.log.clone(),
                        });
                    }
                    st.log.push(
                        st.iteration,
                        RobustnessEventKind::PhaseRetried,
                        format!(
                            "{phase} retrying from its entry snapshot (attempt {} of {})",
                            attempts + 1,
                            sup.max_retries + 1
                        ),
                    );
                }
            }
        }
    }

    /// Run the full co-search (Alg. 1) against environments from
    /// `factory`, optionally distilling from `teacher`.
    ///
    /// # Panics
    ///
    /// Panics if the fault plan schedules an [`crate::Fault::Abort`] or an
    /// in-process fault (worker panic, env panic, stall) — injected faults
    /// can end a run early, which only [`CoSearch::run_guarded`] can
    /// express in its return type.
    pub fn run(
        &mut self,
        factory: &EnvFactory<'_>,
        teacher: Option<&ActorCritic>,
    ) -> CoSearchResult {
        assert!(
            !self.config.fault.plan.has_abort(),
            "the fault plan schedules an abort: call run_guarded, which \
             surfaces it as SearchError::Aborted"
        );
        assert!(
            !self.config.fault.plan.has_supervised_fault(),
            "the fault plan schedules in-process faults: call run_guarded, \
             which surfaces retry exhaustion as SearchError::RunAbort"
        );
        match self.run_guarded(factory, teacher) {
            Ok(result) => result,
            Err(err) => {
                unreachable!("run_guarded only fails on scheduled faults, ruled out above: {err}")
            }
        }
    }

    /// [`CoSearch::run`] with the full fault-tolerance layer surfaced:
    /// auto-resume from the newest valid checkpoint in
    /// `config.fault.checkpoint_dir`, periodic atomic checkpoint writes,
    /// divergence sentinels with bounded rollback, deterministic fault
    /// injection, and (when `config.fault.supervision` is set or the plan
    /// schedules an in-process fault) supervised execution: phase retries
    /// from entry snapshots, lane quarantine with deterministic chunk
    /// re-execution, stall watchdogs and the degradation ladder. Every
    /// robustness action taken is recorded in
    /// [`CoSearchResult::robustness`].
    ///
    /// With the default [`crate::FaultConfig`] this is exactly `run`.
    ///
    /// # Errors
    ///
    /// [`SearchError::Aborted`] when a scheduled [`crate::Fault::Abort`]
    /// fires, and [`SearchError::RunAbort`] when a supervised phase
    /// exhausts its retry budget (real I/O or divergence problems degrade
    /// gracefully and are logged instead).
    pub fn run_guarded(
        &mut self,
        factory: &EnvFactory<'_>,
        teacher: Option<&ActorCritic>,
    ) -> Result<CoSearchResult, SearchError> {
        self.run_guarded_observed(factory, teacher, |_| {})
    }

    /// [`CoSearch::run_guarded`] with a read-only progress hook: `observe`
    /// is called with the open [`GuardedRun`] right after `start_run` and
    /// after every completed step, mirroring the fleet's tick-boundary
    /// observer for solo runs (an `a3cs-obs` publisher hooks in here). The
    /// observer receives `&GuardedRun` — it can read counters and the
    /// robustness log but cannot steer the run, so the observed trajectory
    /// is bit-identical to `run_guarded` with no observer.
    ///
    /// # Errors
    ///
    /// Same contract as [`CoSearch::run_guarded`].
    pub fn run_guarded_observed(
        &mut self,
        factory: &EnvFactory<'_>,
        teacher: Option<&ActorCritic>,
        mut observe: impl FnMut(&GuardedRun),
    ) -> Result<CoSearchResult, SearchError> {
        let mut run = self.start_run(factory);
        observe(&run);
        loop {
            let outcome = run.step(self, factory, teacher)?;
            observe(&run);
            if outcome == StepOutcome::Finished {
                return Ok(run.finish(self));
            }
        }
    }

    /// Begin a guarded run without driving it to completion: the prologue
    /// of [`CoSearch::run_guarded`] — fresh loop state, checkpoint store,
    /// auto-resume from the newest valid on-disk checkpoint (rebuilding the
    /// search from scratch when a recovered checkpoint is rejected), fault
    /// driver and supervisor — reified as a [`GuardedRun`] stepper.
    ///
    /// The fleet orchestrator uses this to interleave many sessions
    /// cooperatively on one thread, one [`GuardedRun::step`] per scheduler
    /// tick; `run_guarded` is exactly `start_run` + `step` to completion +
    /// [`GuardedRun::finish`], so a stepped run is bit-identical to a
    /// driven one.
    pub fn start_run(&mut self, factory: &EnvFactory<'_>) -> GuardedRun {
        let cfg = self.config.clone();
        let distill = match cfg.scheme {
            SearchScheme::DirectNas => DistillConfig {
                mode: DistillMode::None,
                ..cfg.distill
            },
            _ => cfg.distill,
        };

        let cap = cfg.episode_cap;
        let train_factory = move |seed: u64| -> Box<dyn Environment> {
            Box::new(EpisodeLimit::new(ClipReward::new(factory(seed)), cap))
        };
        let mut st = self.fresh_run_state(&train_factory);
        let store = cfg
            .fault
            .checkpoint_dir
            .as_ref()
            .map(|dir| CheckpointStore::new(dir.clone(), cfg.fault.keep));
        let driver = FaultDriver::new(cfg.fault.plan.clone());
        let checkpoint_every = cfg.fault.checkpoint_every.max(1);
        let mut restore_count: u64 = 0;
        let mut quarantined: u64 = 0;

        // --- auto-resume from the newest valid on-disk checkpoint. In
        // delta mode the chain-aware recovery replays base + deltas with
        // end-to-end verification; a scrub afterwards quarantines whatever
        // failed so the next resume starts from a clean store.
        if let Some(store) = &store {
            let recovery = if cfg.fault.durability.delta {
                store.recover_checkpoint()
            } else {
                store.recover()
            };
            for diagnostic in &recovery.skipped {
                st.log.push(
                    0,
                    RobustnessEventKind::CorruptCheckpointSkipped,
                    diagnostic.clone(),
                );
            }
            for diagnostic in &recovery.fallbacks {
                st.log.push(
                    0,
                    RobustnessEventKind::DeltaChainFallback,
                    diagnostic.clone(),
                );
            }
            if cfg.fault.durability.delta {
                let scrubbed = store.scrub(&mut StdIo);
                telemetry::CHECKPOINT_SCRUB_RUNS.add(1);
                telemetry::CHECKPOINT_SCRUB_QUARANTINED.add(scrubbed.quarantined.len() as u64);
                quarantined += scrubbed.quarantined.len() as u64;
                for entry in &scrubbed.quarantined {
                    st.log.push(0, RobustnessEventKind::CheckpointQuarantined, entry.clone());
                }
            }
            if let Some((iter, payload)) = recovery.checkpoint {
                let outcome = SearchCheckpoint::decode(&payload).and_then(|ck| {
                    let prior_events = std::mem::take(&mut st.log.events);
                    let applied = self.apply_checkpoint(&ck, &mut st);
                    // apply overwrites the log with the checkpoint's events
                    // on success (and leaves it alone on failure): keep the
                    // skip diagnostics either way.
                    st.log.events.extend(prior_events);
                    applied
                });
                match outcome {
                    Ok(()) => {
                        telemetry::CHECKPOINT_RESTORES.add(1);
                        restore_count += 1;
                        st.log.push(
                            st.iteration,
                            RobustnessEventKind::Resumed,
                            format!(
                                "from checkpoint at iteration {iter} ({} env steps)",
                                st.steps
                            ),
                        );
                    }
                    Err(e) => {
                        // The failed apply may have left partial state:
                        // rebuild the search and the run state from scratch.
                        st.log.push(
                            0,
                            RobustnessEventKind::ResumeRejected,
                            format!("checkpoint at iteration {iter}: {e}"),
                        );
                        let log = std::mem::take(&mut st.log);
                        *self = Self::build(self.config.clone(), self.seed);
                        st = self.fresh_run_state(&train_factory);
                        st.log = log;
                    }
                }
            }
        }

        // --- supervision: contain in-process faults instead of dying.
        // Auto-enabled when the plan schedules one, so injected faults are
        // never accidentally fatal.
        let sup: Option<Supervisor> = (cfg.fault.supervision
            || cfg.fault.plan.has_supervised_fault())
        .then(|| {
            let lanes = cfg.threads.unwrap_or_else(|| threadpool::current().threads());
            Supervisor::new(&cfg.fault, lanes)
        });

        let weight_params = self.agent.params();
        let alpha_params = self.supernet.arch().params();
        let schedule = LrSchedule {
            initial_lr: cfg.weight_lr,
            final_lr: cfg.weight_lr * 0.1,
            constant_steps: cfg.total_steps / 3,
            total_steps: cfg.total_steps,
        };

        // Rollouts sample operator paths per Eq. 6 (Alg. 1); evaluations
        // temporarily switch back to the argmax network.
        self.supernet.set_eval_sampling(true);
        GuardedRun {
            cfg,
            distill,
            st,
            store,
            driver,
            checkpoint_every,
            sup,
            weight_params,
            alpha_params,
            schedule,
            last_good: None,
            bytes_written: 0,
            restore_count,
            chain: None,
            delta_frames: 0,
            quarantined,
            logical_bytes: 0,
        }
    }
}

/// Outcome of one [`GuardedRun::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// One co-search iteration (or a divergence rollback) ran; the step
    /// budget is not yet spent.
    Ran,
    /// The step budget is spent: call [`GuardedRun::finish`] to derive the
    /// final architecture/accelerator pair.
    Finished,
}

/// An in-flight guarded co-search: the fault-tolerance machinery of
/// [`CoSearch::run_guarded`] — auto-resume, periodic checkpoints,
/// divergence rollback, fault injection, supervised phases — reified as a
/// stepper, so a caller can interleave many searches cooperatively (the
/// fleet orchestrator drives one `step` per scheduler tick and polls
/// progress between ticks).
///
/// Holds no borrow of its [`CoSearch`]: the search, environment factory
/// and teacher are passed into every call, and must be the ones
/// [`CoSearch::start_run`] saw (same config, same seed, same factory) or
/// the trajectory diverges from the solo run's.
pub struct GuardedRun {
    cfg: CoSearchConfig,
    distill: DistillConfig,
    st: RunState,
    store: Option<CheckpointStore>,
    driver: FaultDriver,
    checkpoint_every: u64,
    sup: Option<Supervisor>,
    weight_params: Vec<Param>,
    alpha_params: Vec<Param>,
    schedule: LrSchedule,
    last_good: Option<SearchCheckpoint>,
    bytes_written: u64,
    restore_count: u64,
    /// Open delta chain: the last payload persisted this run, which the
    /// next delta frame diffs against. `None` forces a fresh base frame at
    /// the next checkpoint boundary.
    chain: Option<ChainState>,
    delta_frames: u64,
    quarantined: u64,
    /// Uncompressed payload bytes this run produced (the numerator of the
    /// `checkpoint.compression_ratio` gauge; `bytes_written` is the
    /// denominator).
    logical_bytes: u64,
}

/// The writer's view of an open delta chain (DESIGN.md §17): enough to
/// encode the next delta frame and verify it belongs to this chain.
struct ChainState {
    parent_payload: Vec<u8>,
    parent_iteration: u64,
    chain_id: u64,
    position: u32,
}

impl GuardedRun {
    /// Run one co-search iteration, or conclude that the budget is spent.
    ///
    /// A divergence rollback counts as a step: state rewinds to the last
    /// good checkpoint and [`StepOutcome::Ran`] is returned without the
    /// iteration counter advancing — exactly the `continue` of the driven
    /// loop.
    ///
    /// # Errors
    ///
    /// Same contract as [`CoSearch::run_guarded`]:
    /// [`SearchError::Aborted`] when a scheduled crash fires,
    /// [`SearchError::RunAbort`] when a supervised phase exhausts its
    /// retries. After an error the run should be dropped; the checkpoint
    /// store (if any) holds the last persisted state for a restart.
    pub fn step(
        &mut self,
        search: &mut CoSearch,
        factory: &EnvFactory<'_>,
        teacher: Option<&ActorCritic>,
    ) -> Result<StepOutcome, SearchError> {
        if self.st.steps >= self.cfg.total_steps {
            return Ok(StepOutcome::Finished);
        }
        let teacher = match self.distill.mode {
            DistillMode::None => None,
            _ => teacher,
        };

        // --- simulated crash (only ever fires from the fault plan).
        if self.driver.abort_now(self.st.iteration) {
            self.st.log.push(
                self.st.iteration,
                RobustnessEventKind::FaultInjected,
                "abort (simulated crash)",
            );
            search.supernet.set_eval_sampling(false);
            return Err(SearchError::Aborted {
                iteration: self.st.iteration,
            });
        }

        // Phase spans are observe-only: they time the iteration but
        // never influence it (see DESIGN.md §11).
        let _iteration_span = telemetry::span!("iteration", self.st.iteration);

        // --- checkpoint boundary: persist and/or arm the rollback.
        if (self.store.is_some() || self.cfg.fault.sentinel)
            && self.st.iteration % self.checkpoint_every == 0
        {
            let _span = telemetry::span!("checkpoint_io");
            let ck = search.capture_checkpoint(&self.st);
            if let Some(store) = &self.store {
                let payload = match self.cfg.fault.format {
                    CheckpointFormat::Json => ck.to_json().into_bytes(),
                    CheckpointFormat::Binary => ck.to_bytes(),
                };
                telemetry::CHECKPOINT_BYTES.add(payload.len() as u64);
                telemetry::CHECKPOINT_BYTES_HIST.record(payload.len() as u64);
                // Any injected I/O fault armed for this iteration fails the
                // write *inside* the durable path, exercising exactly the
                // code a real disk error would.
                let armed = self.driver.io_fault_now(self.st.iteration);
                if let Some(mode) = armed {
                    self.st.log.push(
                        self.st.iteration,
                        RobustnessEventKind::FaultInjected,
                        mode.describe(),
                    );
                }
                let mut io = FaultyIo::new(armed);
                let durability = self.cfg.fault.durability;
                let written = if !durability.delta {
                    store
                        .write_with(&mut io, self.st.iteration, &payload)
                        .map(|path| (path, payload.len() as u64, false))
                } else if let Some(chain) = self
                    .chain
                    .as_ref()
                    .filter(|c| (c.position as usize) < durability.max_chain_len)
                {
                    let frame = encode_delta_frame(
                        &chain.parent_payload,
                        &payload,
                        chain.chain_id,
                        chain.position + 1,
                        chain.parent_iteration,
                        durability.codec,
                    );
                    store
                        .write_delta_frame(&mut io, self.st.iteration, &frame)
                        .map(|(path, sealed)| (path, sealed, true))
                } else {
                    if self.chain.take().is_some() {
                        // Inline base roll at max_chain_len: bounds the
                        // replay cost. Routine, so it bumps the compaction
                        // counter without a robustness event.
                        telemetry::CHECKPOINT_COMPACTIONS.add(1);
                    }
                    let frame = encode_base_frame(&payload, durability.codec);
                    store
                        .write_base_frame(&mut io, self.st.iteration, &frame)
                        .map(|(path, sealed)| (path, sealed, false))
                };
                match written {
                    Ok((path, on_disk, was_delta)) => {
                        telemetry::CHECKPOINT_BYTES_WRITTEN.add(on_disk);
                        self.bytes_written += on_disk;
                        self.logical_bytes += payload.len() as u64;
                        if durability.delta {
                            if was_delta {
                                telemetry::CHECKPOINT_DELTA_FRAMES.add(1);
                                telemetry::CHECKPOINT_DELTA_BYTES.add(on_disk);
                                self.delta_frames += 1;
                                let chain = match self.chain.as_mut() {
                                    Some(chain) => chain,
                                    None => unreachable!("a delta write implies an open chain"),
                                };
                                chain.parent_payload = payload;
                                chain.parent_iteration = self.st.iteration;
                                chain.position += 1;
                            } else {
                                let chain_id = fnv1a64(&payload);
                                self.chain = Some(ChainState {
                                    parent_payload: payload,
                                    parent_iteration: self.st.iteration,
                                    chain_id,
                                    position: 0,
                                });
                            }
                            if self.bytes_written > 0 {
                                telemetry::CHECKPOINT_COMPRESSION_RATIO.set(
                                    self.logical_bytes as f64 / self.bytes_written as f64,
                                );
                            }
                        }
                        for applied in
                            self.driver.corrupt_checkpoint_now(self.st.iteration, &path)
                        {
                            self.st.log.push(
                                self.st.iteration,
                                RobustnessEventKind::FaultInjected,
                                applied,
                            );
                        }
                    }
                    Err(e) => {
                        // A failed write leaves the on-disk chain state
                        // unknown: force a fresh base at the next boundary
                        // instead of chaining off a parent that may never
                        // have landed.
                        self.chain = None;
                        self.st.log.push(
                            self.st.iteration,
                            RobustnessEventKind::CheckpointWriteFailed,
                            e.to_string(),
                        );
                    }
                }
            }
            if self.cfg.fault.sentinel {
                self.last_good = Some(ck);
            }
        }

        search.supernet.set_step(self.st.steps);

        // --- φ update (Eq. 5/9) on the current most-likely network.
        search.supervised(
            &mut self.st,
            &mut self.driver,
            &mut self.sup,
            "das_sweep",
            |s, _st, _driver| {
                let _span = telemetry::span!("das_sweep");
                let proxy_layers = s.supernet.most_likely_layer_descs();
                for _ in 0..s.config.das_steps_per_iter {
                    let _ = s.das.step(&proxy_layers, &s.config.target);
                }
            },
        )?;

        // --- rollout + L_task.
        let use_val =
            matches!(self.cfg.scheme, SearchScheme::BiLevel) && self.st.iteration % 2 != 0;
        let (update_weights, update_alpha) = match self.cfg.scheme {
            SearchScheme::BiLevel => (!use_val, use_val),
            _ => (true, true),
        };
        let rollout =
            search.supervised(&mut self.st, &mut self.driver, &mut self.sup, "rollout", |s, st, driver| {
                    if let Some(lane) = driver.env_panic_now(st.iteration) {
                        st.log.push(
                            st.iteration,
                            RobustnessEventKind::FaultInjected,
                            format!("environment lane {lane} poisoned to panic"),
                        );
                        let armed = if use_val {
                            st.val_runner.as_ref()
                        } else {
                            Some(&st.train_runner)
                        };
                        if let Some(runner) = armed {
                            runner.arm_panic(lane);
                        }
                    }
                    let runner = if use_val {
                        match st.val_runner.as_mut() {
                            Some(runner) => runner,
                            None => unreachable!("bilevel scheme constructs a validation runner"),
                        }
                    } else {
                        &mut st.train_runner
                    };
                    let rollout = runner.collect(&s.agent, s.config.rollout_len);
                    st.steps += rollout.transitions() as u64;
                    rollout
                })?;

            // --- the update: loss + backward + both optimizers, one
            // supervised unit. The cost gradient (Eq. 8) accumulates into
            // the α grads, which are not checkpointed — so the whole
            // grad-producing + grad-consuming sequence must retry together.
            let cfg = &self.cfg;
            let distill = &self.distill;
            let weight_params = &self.weight_params;
            let alpha_params = &self.alpha_params;
            let schedule = &self.schedule;
            let tripped =
                search.supervised(&mut self.st, &mut self.driver, &mut self.sup, "update", |s, st, driver| {
                    let loss_span = telemetry::span!("loss_backward");
                    let tape = Tape::new();
                    s.agent.zero_grad();
                    s.supernet.arch().zero_grad();
                    let (mut loss, _stats) =
                        a2c_losses(&tape, &s.agent, &rollout, &cfg.a2c, &distill, teacher);
                    if driver.nan_loss_now(st.iteration) {
                        st.log.push(
                            st.iteration,
                            RobustnessEventKind::FaultInjected,
                            "loss poisoned with NaN",
                        );
                        loss = loss.scale(f32::NAN);
                    }

                    // --- divergence sentinel: a non-finite loss is caught
                    // before it can touch the parameters; a non-finite
                    // parameter right after the updates that produced it.
                    let mut tripped: Option<String> = None;
                    if cfg.fault.sentinel {
                        let value = loss.value().item();
                        if !value.is_finite() {
                            st.log.push(
                                st.iteration,
                                RobustnessEventKind::NonFiniteLoss,
                                format!("loss = {value}"),
                            );
                            tripped = Some(format!("non-finite loss {value}"));
                        }
                    }
                    if tripped.is_none() {
                        loss.backward();
                    }
                    drop(loss_span);
                    if tripped.is_none() {
                        let _span = telemetry::span!("optimizer_step");
                        if update_alpha {
                            // --- λ·L_cost gradient on the activated ops (Eq. 8).
                            let sampled = s.supernet.last_sampled_indices();
                            s.apply_cost_gradient(&sampled);
                            st.alpha_opt.set_lr(cfg.alpha_lr * st.lr_scale);
                            st.alpha_opt.step(&alpha_params);
                        }
                        if update_weights {
                            let _ = clip_grad_norm(&weight_params, cfg.max_grad_norm);
                            st.weight_opt.set_lr(schedule.at(st.steps) * st.lr_scale);
                            st.weight_opt.step(&weight_params);
                        }
                        if cfg.fault.sentinel {
                            let bad = first_non_finite(&weight_params, "agent")
                                .or_else(|| first_non_finite(&alpha_params, "alpha"));
                            if let Some(bad) = bad {
                                st.log.push(
                                    st.iteration,
                                    RobustnessEventKind::NonFiniteParam,
                                    bad.clone(),
                                );
                                tripped = Some(bad);
                            }
                        }
                    }
                    tripped
                })?;
        if let Some(reason) = tripped {
            if let Some(good) = self.last_good.clone() {
                if self.st.rollbacks_left > 0 {
                    // Monotone fields survive the restore: the log, the
                    // decayed lr and the spent budget must not rewind.
                    let events = std::mem::take(&mut self.st.log.events);
                    let lr_scale = self.st.lr_scale * cfg.fault.lr_backoff;
                    let rollbacks_left = self.st.rollbacks_left - 1;
                    let tripped_at = self.st.iteration;
                    match search.apply_checkpoint(&good, &mut self.st) {
                        Ok(()) => {}
                        Err(e) => {
                            unreachable!("checkpoint captured this run always applies: {e}")
                        }
                    }
                    self.st.log.events = events;
                    self.st.lr_scale = lr_scale;
                    self.st.rollbacks_left = rollbacks_left;
                    // The rewound state may re-checkpoint at iterations the
                    // open chain already covers: roll a fresh base instead
                    // of writing conflicting deltas.
                    self.chain = None;
                    telemetry::ROLLBACK_COUNT.add(1);
                    telemetry::CHECKPOINT_RESTORES.add(1);
                    self.restore_count += 1;
                    self.st.log.push(
                        tripped_at,
                        RobustnessEventKind::RolledBack,
                        format!(
                            "to iteration {} after {reason} ({} rollbacks left)",
                            good.iteration(),
                            rollbacks_left
                        ),
                    );
                    return Ok(StepOutcome::Ran);
                }
                self.st.log.push(
                    self.st.iteration,
                    RobustnessEventKind::RollbackBudgetExhausted,
                    format!("update skipped after {reason}"),
                );
            } else {
                self.st.log.push(
                    self.st.iteration,
                    RobustnessEventKind::NoCheckpointToRollBackTo,
                    format!("update skipped after {reason}"),
                );
            }
        }
        self.st.iteration += 1;

        // --- periodic evaluation of the argmax network (Fig. 2 data).
        if self.st.steps >= self.st.next_eval {
            search.supervised(
                &mut self.st,
                &mut self.driver,
                &mut self.sup,
                "eval",
                |s, st, _driver| {
                    let protocol = EvalProtocol {
                        episodes: s.config.eval_episodes,
                        noop_max: 8,
                        max_steps: s.config.eval_max_steps,
                        seed: s.seed ^ st.steps,
                        greedy: false,
                    };
                    s.supernet.set_eval_sampling(false);
                    let score = evaluate(&s.agent, factory, &protocol);
                    s.supernet.set_eval_sampling(true);
                    st.score_curve.push((st.steps, score));
                    st.alpha_entropy_curve
                        .push((st.steps, s.supernet.arch().mean_entropy()));
                    st.next_eval += s.config.eval_every;
                },
            )?;
        }

        Ok(if self.st.steps >= self.cfg.total_steps {
            StepOutcome::Finished
        } else {
            StepOutcome::Ran
        })
    }

    /// Derive the final architecture/accelerator pair and assemble the
    /// [`CoSearchResult`]. Call once [`GuardedRun::step`] returns
    /// [`StepOutcome::Finished`]; finishing earlier derives from whatever
    /// state the search has reached.
    #[must_use]
    pub fn finish(self, search: &mut CoSearch) -> CoSearchResult {
        let cfg = &self.cfg;
        // --- derive the final pair: argmax α network + refined DAS φ.
        let (arch, accelerator, report) = {
            let _span = telemetry::span!("derive");
            search.supernet.set_eval_sampling(false);
            let arch = search.supernet.most_likely_arch();
            let final_layers = search.supernet.most_likely_layer_descs();
            let accelerator = match cfg.derive_engine {
                DeriveEngine::Das => {
                    search
                        .das
                        .run(&final_layers, &cfg.target, cfg.das_final_iters)
                }
                DeriveEngine::DasThenBeam {
                    width,
                    generations,
                    mutations,
                } => {
                    let _ = search
                        .das
                        .run(&final_layers, &cfg.target, cfg.das_final_iters);
                    // Seed the beam with the DAS argmax vector: the seed
                    // stays in the beam, so refinement can only match or
                    // improve the DAS design's cost.
                    let seed_choices = search.das.best_choices(final_layers.len());
                    let mut beam = BeamSearch::new(
                        BeamConfig {
                            space: cfg.das.space.clone(),
                            num_chunks: cfg.das.num_chunks,
                            width,
                            mutations_per_parent: mutations,
                            cost: cfg.das.cost,
                            memo_log2: cfg.das.memo_log2,
                        },
                        search.seed.wrapping_add(3),
                    );
                    let (refined, _) =
                        beam.run_from(&[seed_choices], &final_layers, &cfg.target, generations);
                    refined
                }
            };
            let report = PerfModel::evaluate(&accelerator, &final_layers, &cfg.target);
            (arch, accelerator, report)
        };

        // Surface the aggregated telemetry (a read-only snapshot; the
        // caller's session still owns the raw trace). Inside a fleet the
        // snapshot is scoped to this session's records; solo runs are
        // unscoped, so the filter is the identity there.
        let telemetry_summary = if telemetry::enabled() {
            telemetry::snapshot()
                .for_session(telemetry::current_session())
                .summary()
        } else {
            telemetry::TelemetrySummary::default()
        };

        CoSearchResult {
            arch,
            accelerator,
            report,
            score_curve: self.st.score_curve,
            alpha_entropy_curve: self.st.alpha_entropy_curve,
            steps: self.st.steps,
            robustness: self.st.log,
            telemetry: telemetry_summary,
        }
    }

    /// Env steps consumed so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.st.steps
    }

    /// Total env-step budget for this run.
    #[must_use]
    pub fn total_steps(&self) -> u64 {
        self.cfg.total_steps
    }

    /// Outer-loop iteration index (does not advance on a rollback).
    #[must_use]
    pub fn iteration(&self) -> u64 {
        self.st.iteration
    }

    /// The robustness log accumulated so far.
    #[must_use]
    pub fn robustness(&self) -> &RobustnessLog {
        &self.st.log
    }

    /// Checkpoint bytes successfully persisted by this run (also counted
    /// in the `checkpoint.bytes_written` telemetry metric).
    #[must_use]
    pub fn checkpoint_bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Checkpoint restores this run performed: auto-resume at start plus
    /// divergence rollbacks (the `checkpoint.restore_count` metric).
    #[must_use]
    pub fn checkpoint_restores(&self) -> u64 {
        self.restore_count
    }

    /// Delta frames this run persisted (the `checkpoint.delta_frames`
    /// metric). Zero unless [`crate::DurabilityConfig::delta`] is on.
    #[must_use]
    pub fn checkpoint_delta_frames(&self) -> u64 {
        self.delta_frames
    }

    /// Broken checkpoint frames the resume-time scrub quarantined (the
    /// `checkpoint.scrub_quarantined` metric).
    #[must_use]
    pub fn checkpoint_quarantined(&self) -> u64 {
        self.quarantined
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoSearchConfig;
    use a3cs_envs::Breakout;

    fn factory(seed: u64) -> Box<dyn Environment> {
        Box::new(Breakout::new(seed))
    }

    fn tiny_config(total_steps: u64) -> CoSearchConfig {
        let mut cfg = CoSearchConfig::tiny(3, 12, 12, 3);
        cfg.total_steps = total_steps;
        cfg.eval_every = total_steps;
        cfg.eval_episodes = 2;
        cfg.eval_max_steps = 40;
        cfg.das_final_iters = 50;
        cfg
    }

    fn search(cfg: CoSearchConfig, seed: u64) -> CoSearch {
        CoSearch::try_new(cfg, seed).expect("stock test config passes preflight")
    }

    #[test]
    fn cosearch_produces_consistent_result() {
        let mut search = search(tiny_config(300), 1);
        let result = search.run(&factory, None);
        assert_eq!(result.arch.len(), 6);
        assert!(result.report.fps > 0.0);
        assert_eq!(
            result.accelerator.assignment.len(),
            search.supernet().most_likely_layer_descs().len()
        );
        assert!(!result.score_curve.is_empty());
        assert!(result.steps >= 300);
    }

    #[test]
    fn beam_refined_derivation_never_loses_to_das_alone() {
        // Same config and seed, so both runs reach the derive phase with
        // identical DAS state; the beam is seeded with the DAS argmax and
        // keeps it in the beam, so its design can only match or improve.
        use a3cs_accel::CostWeights;
        let seed = 4;
        let mut das_only = search(tiny_config(200), seed);
        let das_result = das_only.run(&factory, None);
        let mut cfg = tiny_config(200);
        cfg.derive_engine = DeriveEngine::DasThenBeam {
            width: 6,
            generations: 4,
            mutations: 4,
        };
        let mut refined = search(cfg.clone(), seed);
        let refined_result = refined.run(&factory, None);
        assert_eq!(das_result.arch, refined_result.arch, "α derivation unchanged");
        let layers = refined.supernet().most_likely_layer_descs();
        assert_eq!(refined_result.accelerator.assignment.len(), layers.len());
        assert!(refined_result.accelerator.assignment_contiguous());
        let weights = CostWeights::default();
        let cost_of = |r: &CoSearchResult| PerfModel::cost(&r.report, &cfg.target, &weights);
        assert!(
            cost_of(&refined_result) <= cost_of(&das_result) + 1e-9,
            "beam refinement must not regress: {} vs {}",
            cost_of(&refined_result),
            cost_of(&das_result)
        );
    }

    #[test]
    fn cost_pressure_moves_alpha_away_from_uniform() {
        let mut cfg = tiny_config(600);
        cfg.lambda = 2.0; // strong cost pressure
        let mut search = search(cfg, 2);
        let h0 = search.supernet().arch().mean_entropy();
        let _ = search.run(&factory, None);
        let h1 = search.supernet().arch().mean_entropy();
        assert!(h1 < h0, "α should sharpen under cost pressure: {h0} -> {h1}");
    }

    #[test]
    fn bilevel_mode_runs() {
        let mut cfg = tiny_config(300);
        cfg.scheme = SearchScheme::BiLevel;
        let result = search(cfg, 3).run(&factory, None);
        assert_eq!(result.arch.len(), 6);
    }

    #[test]
    fn direct_nas_ignores_teacher() {
        let mut cfg = tiny_config(200);
        cfg.scheme = SearchScheme::DirectNas;
        // Teacher has incompatible shape on purpose: it must never be used.
        let mut search = search(cfg, 4);
        let result = search.run(&factory, None);
        assert_eq!(result.arch.len(), 6);
    }

    #[test]
    fn cosearch_sharpens_the_phi_distribution() {
        let mut cfg = tiny_config(500);
        cfg.das_steps_per_iter = 3;
        let mut search = search(cfg, 13);
        let h0 = search.das().mean_entropy();
        let _ = search.run(&factory, None);
        assert!(
            search.das().mean_entropy() < h0,
            "φ entropy should fall as DAS commits"
        );
    }

    #[test]
    fn per_op_costs_rank_operators_sensibly() {
        use a3cs_accel::{DasConfig, DasEngine, FpgaTarget};
        use a3cs_nas::{SuperNet, SupernetConfig, ALL_OPS};

        let sn = SuperNet::new(SupernetConfig::tiny(3, 12, 12), 9);
        let das = DasEngine::new(DasConfig::default(), 9);
        let accel = das.best(sn.most_likely_layer_descs().len());
        let costs = per_op_costs(&sn, &accel, &FpgaTarget::zc706());
        assert_eq!(costs.len(), sn.num_cells());
        let skip_idx = ALL_OPS.len() - 1;
        for cell in &costs {
            assert_eq!(cell.len(), ALL_OPS.len());
            // Every op costs something except possibly identity skips.
            assert!(cell.iter().all(|&c| c >= 0.0 && c.is_finite()));
            // conv5x5 (idx 1) is never cheaper than conv3x3 (idx 0).
            assert!(cell[1] >= cell[0]);
            // ir_k3_e5 (idx 4) is never cheaper than ir_k3_e1 (idx 2).
            assert!(cell[4] >= cell[2]);
            // skip is the cheapest option in the cell.
            let min = cell.iter().copied().fold(f64::INFINITY, f64::min);
            assert_eq!(cell[skip_idx], min);
        }
        // Identity skips (stride-1, equal channels) are exactly free.
        assert_eq!(costs[1][skip_idx], 0.0);
    }

    #[test]
    fn preflight_accepts_the_stock_configs() {
        assert!(preflight(&tiny_config(300)).is_clean());
        assert!(preflight(&CoSearchConfig::paper(4, 84, 84, 6)).is_clean());
    }

    #[test]
    fn preflight_rejects_a_broken_cell_count() {
        let mut cfg = tiny_config(300);
        cfg.supernet.num_cells = 5; // not a multiple of 3
        let report = preflight(&cfg);
        assert!(!report.is_clean());
        assert!(report.has_code(a3cs_check::codes::ARCH_BAD_STRUCTURE));
        assert!(CoSearch::try_new(cfg, 0).is_err());
    }

    #[test]
    fn preflight_rejects_insufficient_assignment_coverage() {
        let mut cfg = tiny_config(300);
        cfg.das.max_layers = 3; // far fewer than the deepest derivable net
        let report = preflight(&cfg);
        assert!(report.has_code(a3cs_check::codes::ACCEL_DEPTH_EXCEEDS_KNOBS));
        assert!(CoSearch::try_new(cfg, 0).is_err());
    }

    #[test]
    fn try_new_reports_every_preflight_problem() {
        let mut cfg = tiny_config(300);
        cfg.das.num_chunks = 0;
        let report = match CoSearch::try_new(cfg, 0) {
            Ok(_) => unreachable!("broken config must be rejected"),
            Err(report) => report,
        };
        assert!(!report.is_clean());
        assert!(!report.to_string().is_empty());
    }

    #[test]
    fn derived_accelerator_is_dsp_feasible() {
        let mut search = search(tiny_config(300), 5);
        let result = search.run(&factory, None);
        assert!(
            result.report.dsp_used <= 900 * 2,
            "resource penalty should keep DSPs near budget: {}",
            result.report.dsp_used
        );
    }
}
