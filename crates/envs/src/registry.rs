//! Name-based environment construction.

use crate::env::Environment;
use crate::games::{
    Alien, Assault, Asterix, Asteroids, Atlantis, BattleZone, BeamRider, Bowling, Boxing,
    Breakout, Centipede, ChopperCommand, CrazyClimber, DemonAttack, Pong, Qbert, Seaquest,
    SpaceInvaders, Tennis, TimePilot, WizardOfWor,
};
use std::error::Error;
use std::fmt;

/// Error returned by [`make_env`] for an unrecognised game name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownGameError {
    name: String,
}

impl fmt::Display for UnknownGameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown game {:?}; known games: {}",
            self.name,
            game_names().join(", ")
        )
    }
}

impl Error for UnknownGameError {}

/// Names of all available games, in a stable order.
#[must_use]
pub fn game_names() -> Vec<&'static str> {
    vec![
        "Alien",
        "Assault",
        "Asterix",
        "Asteroids",
        "Atlantis",
        "BattleZone",
        "BeamRider",
        "Bowling",
        "Boxing",
        "Breakout",
        "Centipede",
        "ChopperCommand",
        "CrazyClimber",
        "DemonAttack",
        "Pong",
        "Qbert",
        "Seaquest",
        "SpaceInvaders",
        "Tennis",
        "TimePilot",
        "WizardOfWor",
    ]
}

/// Construct a seeded game by name.
///
/// # Errors
///
/// Returns [`UnknownGameError`] if `name` is not one of [`game_names`].
///
/// # Example
///
/// ```
/// let env = a3cs_envs::make_env("Pong", 1)?;
/// assert_eq!(a3cs_envs::Environment::action_count(&env), 3);
/// # Ok::<(), a3cs_envs::UnknownGameError>(())
/// ```
pub fn make_env(name: &str, seed: u64) -> Result<Box<dyn Environment>, UnknownGameError> {
    Ok(match name {
        "Alien" => Box::new(Alien::new(seed)),
        "Assault" => Box::new(Assault::new(seed)),
        "Asteroids" => Box::new(Asteroids::new(seed)),
        "Asterix" => Box::new(Asterix::new(seed)),
        "Atlantis" => Box::new(Atlantis::new(seed)),
        "BattleZone" => Box::new(BattleZone::new(seed)),
        "BeamRider" => Box::new(BeamRider::new(seed)),
        "Bowling" => Box::new(Bowling::new(seed)),
        "Boxing" => Box::new(Boxing::new(seed)),
        "Breakout" => Box::new(Breakout::new(seed)),
        "Centipede" => Box::new(Centipede::new(seed)),
        "ChopperCommand" => Box::new(ChopperCommand::new(seed)),
        "CrazyClimber" => Box::new(CrazyClimber::new(seed)),
        "DemonAttack" => Box::new(DemonAttack::new(seed)),
        "Pong" => Box::new(Pong::new(seed)),
        "Qbert" => Box::new(Qbert::new(seed)),
        "Seaquest" => Box::new(Seaquest::new(seed)),
        "SpaceInvaders" => Box::new(SpaceInvaders::new(seed)),
        "Tennis" => Box::new(Tennis::new(seed)),
        "TimePilot" => Box::new(TimePilot::new(seed)),
        "WizardOfWor" => Box::new(WizardOfWor::new(seed)),
        other => {
            return Err(UnknownGameError {
                name: other.to_owned(),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_game_constructs_and_resets() {
        for name in game_names() {
            let mut env = make_env(name, 1).expect("listed game must construct");
            assert_eq!(env.name(), name);
            let obs = env.reset();
            assert_eq!(obs.len(), env.observation_len(), "{name}");
            assert!(env.action_count() >= 3, "{name}");
        }
    }

    #[test]
    fn unknown_game_reports_roster() {
        let Err(err) = make_env("Frogger", 0) else {
            panic!("Frogger must be unknown");
        };
        let msg = err.to_string();
        assert!(msg.contains("Frogger") && msg.contains("Breakout"));
    }

    #[test]
    fn table3_games_are_all_present() {
        // Table III of the paper compares on these six titles.
        for name in [
            "BeamRider",
            "Breakout",
            "Pong",
            "Qbert",
            "Seaquest",
            "SpaceInvaders",
        ] {
            assert!(make_env(name, 0).is_ok(), "{name} missing");
        }
    }
}
