//! Composite residual blocks: the ResNet basic block and the MobileNetV2
//! inverted-residual block used as NAS candidate operators.

use crate::describe::{FeatureShape, LayerDesc};
use crate::layers::{BatchNorm2d, Conv2d, DepthwiseConv2d};
use crate::module::Module;
use crate::param::Param;
use a3cs_tensor::{Tape, Var};

/// Classic ResNet basic block: two 3×3 convolutions with batch-norm and a
/// (possibly projected) identity shortcut.
pub struct BasicBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    shortcut: Option<(Conv2d, BatchNorm2d)>,
}

impl BasicBlock {
    /// Create a basic block. A 1×1 projection shortcut is inserted when the
    /// stride is not 1 or the channel count changes.
    ///
    /// # Panics
    ///
    /// Panics if any structural argument is zero.
    #[must_use]
    pub fn new(name: &str, in_ch: usize, out_ch: usize, stride: usize, seed: u64) -> Self {
        let conv1 = Conv2d::new(
            &format!("{name}.conv1"),
            in_ch,
            out_ch,
            3,
            stride,
            1,
            false,
            seed,
        );
        let bn1 = BatchNorm2d::new(&format!("{name}.bn1"), out_ch);
        let conv2 = Conv2d::new(
            &format!("{name}.conv2"),
            out_ch,
            out_ch,
            3,
            1,
            1,
            false,
            seed.wrapping_add(1),
        );
        let bn2 = BatchNorm2d::new(&format!("{name}.bn2"), out_ch);
        let shortcut = (stride != 1 || in_ch != out_ch).then(|| {
            (
                Conv2d::new(
                    &format!("{name}.down"),
                    in_ch,
                    out_ch,
                    1,
                    stride,
                    0,
                    false,
                    seed.wrapping_add(2),
                ),
                BatchNorm2d::new(&format!("{name}.down_bn"), out_ch),
            )
        });
        BasicBlock {
            conv1,
            bn1,
            conv2,
            bn2,
            shortcut,
        }
    }
}

impl Module for BasicBlock {
    fn forward(&self, tape: &Tape, x: &Var, train: bool) -> Var {
        let h = self.conv1.forward(tape, x, train);
        let h = self.bn1.forward(tape, &h, train).relu();
        let h = self.conv2.forward(tape, &h, train);
        let h = self.bn2.forward(tape, &h, train);
        let identity = match &self.shortcut {
            Some((conv, bn)) => {
                let s = conv.forward(tape, x, train);
                bn.forward(tape, &s, train)
            }
            None => x.clone(),
        };
        h.add(&identity).relu()
    }

    fn params(&self) -> Vec<Param> {
        let mut p = self.conv1.params();
        p.extend(self.bn1.params());
        p.extend(self.conv2.params());
        p.extend(self.bn2.params());
        if let Some((conv, bn)) = &self.shortcut {
            p.extend(conv.params());
            p.extend(bn.params());
        }
        p
    }

    fn state(&self) -> Vec<Param> {
        let mut s = self.bn1.state();
        s.extend(self.bn2.state());
        if let Some((_, bn)) = &self.shortcut {
            s.extend(bn.state());
        }
        s
    }

    fn describe(&self, input: FeatureShape) -> (Vec<LayerDesc>, FeatureShape) {
        let (mut descs, mid) = self.conv1.describe(input);
        let (d2, out) = self.conv2.describe(mid);
        descs.extend(d2);
        if let Some((conv, _)) = &self.shortcut {
            let (ds, sout) = conv.describe(input);
            assert_eq!(sout, out, "shortcut must match the main path shape");
            descs.extend(ds);
        }
        (descs, out)
    }
}

/// MobileNetV2-style inverted residual: 1×1 expand → k×k depthwise →
/// 1×1 project, with an identity skip when the shape is preserved.
///
/// This is the parameterised candidate operator of the A3C-S supernet
/// (kernel ∈ {3, 5}, expansion ∈ {1, 3, 5}).
pub struct InvertedResidual {
    expand: Option<(Conv2d, BatchNorm2d)>,
    depthwise: DepthwiseConv2d,
    dw_bn: BatchNorm2d,
    project: Conv2d,
    proj_bn: BatchNorm2d,
    use_skip: bool,
}

impl InvertedResidual {
    /// Create an inverted-residual block.
    ///
    /// # Panics
    ///
    /// Panics if any structural argument is zero.
    #[must_use]
    pub fn new(
        name: &str,
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        expansion: usize,
        seed: u64,
    ) -> Self {
        assert!(expansion > 0, "expansion must be positive");
        let hidden = in_ch * expansion;
        let expand = (expansion != 1).then(|| {
            (
                Conv2d::new(
                    &format!("{name}.expand"),
                    in_ch,
                    hidden,
                    1,
                    1,
                    0,
                    false,
                    seed,
                ),
                BatchNorm2d::new(&format!("{name}.expand_bn"), hidden),
            )
        });
        let depthwise = DepthwiseConv2d::new(
            &format!("{name}.dw"),
            hidden,
            kernel,
            stride,
            kernel / 2,
            seed.wrapping_add(1),
        );
        let dw_bn = BatchNorm2d::new(&format!("{name}.dw_bn"), hidden);
        let project = Conv2d::new(
            &format!("{name}.project"),
            hidden,
            out_ch,
            1,
            1,
            0,
            false,
            seed.wrapping_add(2),
        );
        let proj_bn = BatchNorm2d::new(&format!("{name}.project_bn"), out_ch);
        InvertedResidual {
            expand,
            depthwise,
            dw_bn,
            project,
            proj_bn,
            use_skip: stride == 1 && in_ch == out_ch,
        }
    }
}

impl Module for InvertedResidual {
    fn forward(&self, tape: &Tape, x: &Var, train: bool) -> Var {
        let mut h = x.clone();
        if let Some((conv, bn)) = &self.expand {
            h = conv.forward(tape, &h, train);
            h = bn.forward(tape, &h, train).relu();
        }
        h = self.depthwise.forward(tape, &h, train);
        h = self.dw_bn.forward(tape, &h, train).relu();
        h = self.project.forward(tape, &h, train);
        h = self.proj_bn.forward(tape, &h, train);
        if self.use_skip {
            h = h.add(x);
        }
        h
    }

    fn params(&self) -> Vec<Param> {
        let mut p = Vec::new();
        if let Some((conv, bn)) = &self.expand {
            p.extend(conv.params());
            p.extend(bn.params());
        }
        p.extend(self.depthwise.params());
        p.extend(self.dw_bn.params());
        p.extend(self.project.params());
        p.extend(self.proj_bn.params());
        p
    }

    fn state(&self) -> Vec<Param> {
        let mut s = Vec::new();
        if let Some((_, bn)) = &self.expand {
            s.extend(bn.state());
        }
        s.extend(self.dw_bn.state());
        s.extend(self.proj_bn.state());
        s
    }

    fn describe(&self, input: FeatureShape) -> (Vec<LayerDesc>, FeatureShape) {
        let mut descs = Vec::new();
        let mut shape = input;
        if let Some((conv, _)) = &self.expand {
            let (d, s) = conv.describe(shape);
            descs.extend(d);
            shape = s;
        }
        let (d, s) = self.depthwise.describe(shape);
        descs.extend(d);
        shape = s;
        let (d, s) = self.project.describe(shape);
        descs.extend(d);
        (descs, s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a3cs_tensor::Tensor;

    #[test]
    fn basic_block_identity_shape() {
        let block = BasicBlock::new("b", 8, 8, 1, 1);
        let tape = Tape::new();
        let x = tape.leaf(Tensor::randn(&[2, 8, 6, 6], 0.5, 1));
        let y = block.forward(&tape, &x, true);
        assert_eq!(y.shape(), vec![2, 8, 6, 6]);
        assert_eq!(block.params().len(), 6); // 2 bias-free convs + 2 BNs * (gamma,beta)
    }

    #[test]
    fn basic_block_downsample_shape_and_shortcut() {
        let block = BasicBlock::new("b", 8, 16, 2, 1);
        let tape = Tape::new();
        let x = tape.leaf(Tensor::randn(&[1, 8, 6, 6], 0.5, 2));
        let y = block.forward(&tape, &x, true);
        assert_eq!(y.shape(), vec![1, 16, 3, 3]);
        let (descs, out) = block.describe(FeatureShape::image(8, 6, 6));
        assert_eq!(descs.len(), 3); // conv1, conv2, shortcut conv
        assert_eq!(out, FeatureShape::image(16, 3, 3));
    }

    #[test]
    fn inverted_residual_skip_only_when_shape_preserved() {
        let with_skip = InvertedResidual::new("ir", 8, 8, 3, 1, 3, 1);
        assert!(with_skip.use_skip);
        let stride2 = InvertedResidual::new("ir", 8, 8, 3, 2, 3, 1);
        assert!(!stride2.use_skip);
        let widen = InvertedResidual::new("ir", 8, 16, 3, 1, 3, 1);
        assert!(!widen.use_skip);
    }

    #[test]
    fn inverted_residual_forward_shapes() {
        for (kernel, stride, expansion) in [(3, 1, 1), (3, 2, 3), (5, 1, 5), (5, 2, 1)] {
            let ir = InvertedResidual::new("ir", 6, 10, kernel, stride, expansion, 3);
            let tape = Tape::new();
            let x = tape.leaf(Tensor::randn(&[1, 6, 8, 8], 0.5, 4));
            let y = ir.forward(&tape, &x, true);
            let expect_hw = if stride == 2 { 4 } else { 8 };
            assert_eq!(
                y.shape(),
                vec![1, 10, expect_hw, expect_hw],
                "k={kernel} s={stride} e={expansion}"
            );
        }
    }

    #[test]
    fn inverted_residual_expansion_one_has_no_expand_conv() {
        let ir = InvertedResidual::new("ir", 8, 8, 3, 1, 1, 1);
        let (descs, _) = ir.describe(FeatureShape::image(8, 6, 6));
        assert_eq!(descs.len(), 2); // depthwise + project only
        let ir3 = InvertedResidual::new("ir", 8, 8, 3, 1, 3, 1);
        let (descs3, _) = ir3.describe(FeatureShape::image(8, 6, 6));
        assert_eq!(descs3.len(), 3);
    }

    #[test]
    fn gradients_reach_all_block_params() {
        let block = BasicBlock::new("b", 4, 8, 2, 9);
        let tape = Tape::new();
        let x = tape.leaf(Tensor::randn(&[2, 4, 6, 6], 0.5, 5));
        block.forward(&tape, &x, true).square().sum().backward();
        for p in block.params() {
            assert!(
                p.grad().sq_norm() > 0.0 || p.name().ends_with("beta"),
                "no grad reached {}",
                p.name()
            );
        }
    }
}
