//! Boxing: land punches on a scripted opponent within a time limit.

use crate::env::{Canvas, Environment, StepOutcome};
use crate::games::clamp;
use crate::state::{EnvState, RestoreError, StateReader, StateWriter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GRID: usize = 12;
const ROUND_STEPS: u32 = 240;

/// Boxing stand-in: a fixed-length round in a ring. Landing a punch on the
/// adjacent opponent pays `+1` and knocks them back; the scripted opponent
/// approaches and counter-punches (`-1`). The episode always lasts
/// a fixed 240 steps, so the score is the hit differential — bounded
/// like Atari Boxing's 100-point knockout scale.
///
/// Actions: `0` no-op, `1` up, `2` down, `3` left, `4` right, `5` punch.
#[derive(Debug, Clone)]
pub struct Boxing {
    rng: StdRng,
    player: (isize, isize),
    opponent: (isize, isize),
    clock: u32,
    done: bool,
}

fn adjacent(a: (isize, isize), b: (isize, isize)) -> bool {
    (a.0 - b.0).abs() <= 1 && (a.1 - b.1).abs() <= 1 && a != b
}

impl Boxing {
    /// Create a seeded Boxing game.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Boxing {
            rng: StdRng::seed_from_u64(seed),
            player: (GRID as isize / 2, 2),
            opponent: (GRID as isize / 2, GRID as isize - 3),
            clock: 0,
            done: true,
        }
    }

    fn observe(&self) -> Vec<f32> {
        let mut canvas = Canvas::new(3, GRID, GRID);
        canvas.paint(0, self.player.0, self.player.1, 1.0);
        canvas.paint(1, self.opponent.0, self.opponent.1, 1.0);
        // Round-time bar on plane 2.
        let bar = ((ROUND_STEPS - self.clock) as usize * GRID) / ROUND_STEPS as usize;
        for c in 0..bar {
            canvas.paint(2, 0, c as isize, 1.0);
        }
        canvas.into_observation()
    }

    fn knock_back(from: (isize, isize), target: (isize, isize)) -> (isize, isize) {
        let dr = (target.0 - from.0).signum();
        let dc = (target.1 - from.1).signum();
        (
            clamp(target.0 + dr * 2, 0, GRID as isize - 1),
            clamp(target.1 + dc * 2, 0, GRID as isize - 1),
        )
    }
}

impl Environment for Boxing {
    fn name(&self) -> &str {
        "Boxing"
    }

    fn observation_shape(&self) -> (usize, usize, usize) {
        (3, GRID, GRID)
    }

    fn action_count(&self) -> usize {
        6
    }

    fn reset(&mut self) -> Vec<f32> {
        self.player = (GRID as isize / 2, 2);
        self.opponent = (GRID as isize / 2, GRID as isize - 3);
        self.clock = 0;
        self.done = false;
        self.observe()
    }

    fn step(&mut self, action: usize) -> StepOutcome {
        assert!(!self.done, "episode is over; call reset()");
        assert!(action < self.action_count(), "invalid action {action}");
        self.clock += 1;
        let mut reward = 0.0f32;

        let (dr, dc) = match action {
            1 => (-1, 0),
            2 => (1, 0),
            3 => (0, -1),
            4 => (0, 1),
            _ => (0, 0),
        };
        let next = (
            clamp(self.player.0 + dr, 0, GRID as isize - 1),
            clamp(self.player.1 + dc, 0, GRID as isize - 1),
        );
        if next != self.opponent {
            self.player = next;
        }

        if action == 5 && adjacent(self.player, self.opponent) {
            reward += 1.0;
            self.opponent = Self::knock_back(self.player, self.opponent);
        }

        // Opponent: approach, punch when adjacent (with some hesitation).
        if adjacent(self.opponent, self.player) {
            if self.rng.gen_bool(0.4) {
                reward -= 1.0;
                self.player = Self::knock_back(self.opponent, self.player);
            }
        } else if self.rng.gen_bool(0.75) {
            let dr = (self.player.0 - self.opponent.0).signum();
            let dc = (self.player.1 - self.opponent.1).signum();
            let next = (
                clamp(self.opponent.0 + dr, 0, GRID as isize - 1),
                clamp(self.opponent.1 + dc, 0, GRID as isize - 1),
            );
            if next != self.player {
                self.opponent = next;
            }
        }

        if self.clock >= ROUND_STEPS {
            self.done = true;
        }

        StepOutcome {
            observation: self.observe(),
            reward,
            done: self.done,
        }
    }

    fn snapshot(&self) -> EnvState {
        let mut w = StateWriter::new("Boxing");
        w.rng(&self.rng);
        w.isize(self.player.0);
        w.isize(self.player.1);
        w.isize(self.opponent.0);
        w.isize(self.opponent.1);
        w.u32(self.clock);
        w.bool(self.done);
        w.finish()
    }

    fn restore(&mut self, state: &EnvState) -> Result<(), RestoreError> {
        let mut r = StateReader::new(state, "Boxing")?;
        self.rng = r.rng()?;
        self.player = (r.isize()?, r.isize()?);
        self.opponent = (r.isize()?, r.isize()?);
        self.clock = r.u32()?;
        self.done = r.bool()?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::testkit::{assert_deterministic, random_rollout};

    #[test]
    fn deterministic_given_seed() {
        assert_deterministic(Boxing::new(61), Boxing::new(61), 500);
    }

    #[test]
    fn round_has_fixed_length() {
        let mut env = Boxing::new(1);
        let _ = env.reset();
        let mut steps = 0;
        loop {
            steps += 1;
            if env.step(0).done {
                break;
            }
        }
        assert_eq!(steps, ROUND_STEPS);
    }

    #[test]
    fn smoke_random_rollout() {
        let mut env = Boxing::new(2);
        let _ = random_rollout(&mut env, 800, 10);
    }

    #[test]
    fn punching_adjacent_opponent_scores() {
        let mut env = Boxing::new(3);
        let _ = env.reset();
        // Walk toward the opponent, then punch when adjacent.
        let mut landed = false;
        for _ in 0..60 {
            let action = if adjacent(env.player, env.opponent) {
                5
            } else if env.opponent.1 > env.player.1 {
                4
            } else {
                3
            };
            let out = env.step(action);
            if out.reward > 0.0 {
                landed = true;
                break;
            }
            if out.done {
                break;
            }
        }
        assert!(landed, "aggressive policy should land a punch");
    }

    #[test]
    fn fighters_never_overlap() {
        let mut env = Boxing::new(4);
        let _ = env.reset();
        for i in 0..400 {
            let out = env.step(i % 6);
            assert_ne!(env.player, env.opponent);
            if out.done {
                let _ = env.reset();
            }
        }
    }
}
