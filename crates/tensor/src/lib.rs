//! Dense `f32` tensors with reverse-mode automatic differentiation.
//!
//! This crate is the numerical substrate of the A3C-S reproduction. It
//! provides:
//!
//! - [`Tensor`]: a contiguous, shape-tagged `f32` array with elementwise
//!   arithmetic, reductions, matrix multiplication and convolution kernels;
//! - [`Tape`] / [`Var`]: a tape-based reverse-mode autograd engine covering
//!   every operation the DRL + NAS stack needs (dense/depthwise convolution,
//!   batch normalisation, softmax families, gather, pooling, ...);
//! - [`check_gradients`] / [`numeric_gradient`]: finite-difference
//!   gradient verification used by the test-suite.
//!
//! # Example
//!
//! ```
//! use a3cs_tensor::{Tape, Tensor};
//!
//! let tape = Tape::new();
//! let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap());
//! let y = x.mul(&x).sum(); // y = sum(x^2)
//! y.backward();
//! // dy/dx = 2x
//! assert_eq!(x.grad().unwrap().data(), &[2.0, 4.0, 6.0]);
//! ```

#![deny(missing_docs)]

mod grad_check;
mod linalg;
mod pooling;
mod shape;
mod tape;
mod tensor;
mod var;

pub use grad_check::{check_gradients, numeric_gradient, GradCheckReport};
pub use linalg::{col2im, im2col, matmul, matmul_a_bt, matmul_at_b, Conv2dGeometry};
pub use shape::{checked_num_elements, num_elements, strides_for, ShapeError, SizeOverflowError};
pub use tape::Tape;
pub use tensor::Tensor;
pub use var::Var;
