//! Telemetry integration: span attribution across pool workers, histogram
//! bucket edges, stable (normalized) JSONL/Chrome-trace output, and —
//! crucially — proof that turning telemetry on does not perturb the
//! co-search by a single bit.
//!
//! The telemetry collector is process-global, so every test that opens a
//! session serializes on [`lock`].

use a3cs::core::{CoSearch, CoSearchConfig, CoSearchResult};
use a3cs::envs::{Breakout, Environment};
use std::sync::{Mutex, MutexGuard, PoisonError};

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn factory(seed: u64) -> Box<dyn Environment> {
    Box::new(Breakout::new(seed))
}

fn tiny_config(total_steps: u64) -> CoSearchConfig {
    let mut cfg = CoSearchConfig::tiny(3, 12, 12, 3);
    cfg.total_steps = total_steps;
    cfg.eval_every = 100;
    cfg.eval_episodes = 2;
    cfg.eval_max_steps = 40;
    cfg.das_final_iters = 50;
    cfg
}

fn curve_bits(curve: &[(u64, f32)]) -> Vec<(u64, u32)> {
    curve.iter().map(|&(s, v)| (s, v.to_bits())).collect()
}

fn assert_results_bit_identical(a: &CoSearchResult, b: &CoSearchResult) {
    assert_eq!(format!("{:?}", a.arch), format!("{:?}", b.arch));
    assert_eq!(
        format!("{:?}", a.accelerator),
        format!("{:?}", b.accelerator)
    );
    assert_eq!(curve_bits(&a.score_curve), curve_bits(&b.score_curve));
    assert_eq!(
        curve_bits(&a.alpha_entropy_curve),
        curve_bits(&b.alpha_entropy_curve)
    );
    assert_eq!(a.steps, b.steps);
    assert_eq!(a.report.fps.to_bits(), b.report.fps.to_bits());
    assert_eq!(a.report.dsp_used, b.report.dsp_used);
}

#[test]
fn pool_worker_spans_attribute_to_the_forking_span() {
    let _guard = lock();
    let session = telemetry::Session::start();
    {
        let outer = telemetry::span!("outer");
        let _ = &outer;
        threadpool::with_threads(3, || {
            threadpool::current().parallel_for_chunks(64, |range| {
                let _inner = telemetry::span_with("chunk_work", range.start as u64);
            });
        });
    }
    let trace = session.finish();

    let spans: Vec<_> = trace.spans().collect();
    let outer = spans
        .iter()
        .find(|s| s.name == "outer")
        .expect("outer span recorded");
    let chunks: Vec<_> = spans.iter().filter(|s| s.name == "chunk_work").collect();
    assert_eq!(chunks.len(), 3, "one chunk span per lane: {spans:?}");
    for c in &chunks {
        assert_eq!(
            c.parent,
            Some(outer.id),
            "chunk span on tid {} must attribute to the forking span",
            c.tid
        );
        assert!(c.begin_ns >= outer.begin_ns && c.end_ns <= outer.end_ns);
    }
    // Chunks ran on more than one thread, and the pool reported its lanes.
    let tids: std::collections::BTreeSet<u64> = chunks.iter().map(|c| c.tid).collect();
    assert!(tids.len() > 1, "expected chunks on multiple threads");
    assert!(!trace.pool.is_empty(), "pool lane stats missing");
    let pool_tasks: u64 = trace.pool.iter().map(|w| w.tasks).sum();
    assert!(pool_tasks >= 2, "worker lanes recorded tasks: {:?}", trace.pool);
}

#[test]
fn histogram_buckets_split_at_powers_of_two() {
    let _guard = lock();
    let session = telemetry::Session::start();
    let h = &telemetry::GEMM_MACS_HIST;
    // Exercise both sides of several bucket edges plus the extremes.
    for v in [0u64, 1, 2, 3, 4, 7, 8, (1 << 31) - 1, 1 << 31, 1 << 32, u64::MAX] {
        h.record(v);
    }
    let counts = h.counts();
    let _ = session.finish();

    assert_eq!(counts[0], 1, "zero bucket");
    assert_eq!(counts[1], 1, "[1,2): just 1");
    assert_eq!(counts[2], 2, "[2,4): 2 and 3");
    assert_eq!(counts[3], 2, "[4,8): 4 and 7");
    assert_eq!(counts[4], 1, "[8,16): 8");
    assert_eq!(counts[31], 1, "[2^30,2^31): 2^31-1");
    assert_eq!(counts[32], 1, "[2^31,2^32): 2^31");
    let total: u64 = counts.iter().sum();
    assert_eq!(total, 11);
    assert_eq!(telemetry::Histogram::bucket_upper_bound(0), Some(1));
    assert_eq!(telemetry::Histogram::bucket_upper_bound(1), Some(2));
    assert_eq!(telemetry::Histogram::bucket_upper_bound(2), Some(4));
    // 2^31-1 and 2^31 land in adjacent buckets; 2^32 and u64::MAX overflow.
    let overflow = counts[counts.len() - 1];
    assert_eq!(overflow, 2, "values >= 2^32 overflow: {counts:?}");
    assert_eq!(telemetry::Histogram::bucket_upper_bound(counts.len() - 1), None);
}

#[test]
fn normalized_trace_serialization_is_deterministic() {
    let _guard = lock();
    let session = telemetry::Session::start();
    {
        let _iter = telemetry::span_with("iteration", 7);
        {
            let _rollout = telemetry::span!("rollout");
            telemetry::instant("fault-injected", "nan loss at 7");
        }
    }
    telemetry::ENV_STEPS.add(40);
    let trace = session.finish().normalized();

    let jsonl = trace.to_jsonl();
    assert_eq!(
        jsonl,
        concat!(
            "{\"type\":\"event\",\"name\":\"fault-injected\",\"detail\":\"nan loss at 7\",\"tid\":0,\"at_ns\":2}\n",
            "{\"type\":\"span\",\"id\":1,\"parent\":2,\"name\":\"rollout\",\"tid\":0,\"begin_ns\":1,\"end_ns\":3,\"arg\":null}\n",
            "{\"type\":\"span\",\"id\":2,\"parent\":null,\"name\":\"iteration\",\"tid\":0,\"begin_ns\":0,\"end_ns\":4,\"arg\":7}\n",
            "{\"type\":\"counter\",\"name\":\"env.steps\",\"value\":40}\n",
        )
    );
    // Every line of the real export parses as JSON.
    for line in jsonl.lines() {
        let parsed: Result<serde_json::Value, _> = serde_json::from_str(line);
        assert!(parsed.is_ok(), "unparseable JSONL line: {line}");
    }

    let chrome = trace.to_chrome_trace();
    assert_eq!(
        chrome,
        concat!(
            "{\"traceEvents\":[\n",
            "{\"name\":\"fault-injected\",\"cat\":\"a3cs\",\"ph\":\"i\",\"s\":\"t\",\"ts\":0.002,\"pid\":1,\"tid\":0,\"args\":{\"detail\":\"nan loss at 7\"}},\n",
            "{\"name\":\"rollout\",\"cat\":\"a3cs\",\"ph\":\"X\",\"ts\":0.001,\"dur\":0.002,\"pid\":1,\"tid\":0,\"args\":{\"id\":1,\"parent\":2}},\n",
            "{\"name\":\"iteration\",\"cat\":\"a3cs\",\"ph\":\"X\",\"ts\":0.000,\"dur\":0.004,\"pid\":1,\"tid\":0,\"args\":{\"id\":2,\"arg\":7}}\n",
            "],\"displayTimeUnit\":\"ms\"}\n",
        )
    );
    let parsed: Result<serde_json::Value, _> = serde_json::from_str(&chrome);
    assert!(parsed.is_ok(), "Chrome trace is not valid JSON");
}

#[test]
fn cosearch_with_telemetry_is_bit_identical_to_without() {
    let _guard = lock();
    // Reference: telemetry off. Sentinel on in both runs so the guarded
    // paths (in-memory checkpoint capture every iteration) are exercised.
    let mut cfg = tiny_config(300);
    cfg.fault.sentinel = true;
    let reference = CoSearch::try_new(cfg.clone(), 9)
        .expect("tiny config passes pre-flight")
        .run_guarded(&factory, None)
        .expect("reference run completes");

    let session = telemetry::Session::start();
    let traced = CoSearch::try_new(cfg, 9)
        .expect("tiny config passes pre-flight")
        .run_guarded(&factory, None)
        .expect("traced run completes");
    let trace = session.finish();

    assert_results_bit_identical(&reference, &traced);

    // The traced run surfaced a real summary; the reference stayed empty.
    assert!(reference.telemetry.is_empty());
    assert!(!traced.telemetry.is_empty());
    for phase in ["rollout", "loss_backward", "optimizer_step", "das_sweep", "eval"] {
        let stat = traced
            .telemetry
            .phase(phase)
            .unwrap_or_else(|| panic!("phase {phase:?} missing from summary"));
        assert!(stat.calls > 0);
    }
    assert!(traced.telemetry.counter("env.steps") >= 300);
    assert!(traced.telemetry.counter("gemm.macs") > 0);
    assert!(trace.spans().any(|s| s.name == "iteration"));
}
