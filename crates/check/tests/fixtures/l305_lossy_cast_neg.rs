//! Negative fixture: bit-exact conversions in a checkpoint path never
//! fire A3CS-L305.
pub fn write_f32(v: f32) -> u32 {
    v.to_bits()
}

pub fn read_f32(bits: u32) -> f32 {
    f32::from_bits(bits)
}

pub fn read_len(raw: u64) -> Option<usize> {
    usize::try_from(raw).ok()
}
