//! The DNNBuilder-style baseline accelerator generator (Zhang et al.,
//! ICCAD'18) used as the SOTA comparison point of Fig. 3.
//!
//! DNNBuilder builds a fine-grained per-layer pipeline: every layer gets
//! its own stage, with channel-parallelism factors allocated proportionally
//! to each layer's compute share under the DSP budget, and a line-buffer
//! (weight-stationary-like) dataflow. This module reconstructs that design
//! rule and emits an [`AcceleratorConfig`] evaluated by the *same*
//! predictor as DAS designs, keeping the Fig. 3 comparison apples to
//! apples.

use crate::template::{
    AcceleratorConfig, BufferAlloc, ChunkConfig, Dataflow, NocTopology, PeArray, Tiling,
};
use crate::zc706::FpgaTarget;
use a3cs_nn::LayerDesc;

/// The DNNBuilder baseline generator.
pub struct DnnBuilderModel;

impl DnnBuilderModel {
    /// Generate the per-layer pipelined accelerator for `layers` under
    /// `target`'s DSP budget.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    #[must_use]
    pub fn design(layers: &[LayerDesc], target: &FpgaTarget) -> AcceleratorConfig {
        assert!(!layers.is_empty(), "cannot design for an empty network");
        let total_macs: f64 = layers.iter().map(|l| l.macs() as f64).sum();
        // Reserve a small margin like DNNBuilder's resource allocator.
        let budget = (target.dsp_limit as f64 * 0.95).floor();

        let chunks: Vec<ChunkConfig> = layers
            .iter()
            .map(|layer| {
                let share = layer.macs() as f64 / total_macs;
                let pes = (budget * share).floor().max(1.0) as usize;
                let (rows, cols) = nearest_rect(pes);
                ChunkConfig {
                    pe: PeArray { rows, cols },
                    // Line-buffer based design: broadcast-style operand bus,
                    // weights pinned on chip per stage.
                    noc: NocTopology::Multicast,
                    dataflow: Dataflow::WeightStationary,
                    buffers: BufferAlloc {
                        input_kb: 16,
                        weight_kb: 32,
                        output_kb: 16,
                    },
                    tiling: Tiling {
                        tm: rows.max(2),
                        tn: 4,
                        tr: 4,
                        tc: 4,
                    },
                }
            })
            .collect();
        let assignment = (0..layers.len()).collect();
        AcceleratorConfig { chunks, assignment }
    }
}

/// Factor `n` into the most square `rows × cols ≤ n` rectangle.
fn nearest_rect(n: usize) -> (usize, usize) {
    let mut best = (1, n.max(1));
    let mut best_gap = usize::MAX;
    let mut r = 1;
    while r * r <= n {
        let c = n / r;
        let gap = c - r;
        if gap < best_gap {
            best_gap = gap;
            best = (r, c);
        }
        r += 1;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::PerfModel;
    use a3cs_nn::{resnet, vanilla};

    #[test]
    fn design_covers_every_layer_with_its_own_stage() {
        let net = vanilla(4, 12, 12, 32, 0);
        let layers = net.layer_descs();
        let accel = DnnBuilderModel::design(&layers, &FpgaTarget::zc706());
        assert_eq!(accel.chunks.len(), layers.len());
        assert_eq!(accel.assignment, (0..layers.len()).collect::<Vec<_>>());
    }

    #[test]
    fn design_respects_dsp_budget() {
        for depth in [14, 20] {
            let net = resnet(depth, 4, 12, 12, 8, 32, 0);
            let layers = net.layer_descs();
            let target = FpgaTarget::zc706();
            let accel = DnnBuilderModel::design(&layers, &target);
            assert!(
                accel.total_pes() <= target.dsp_limit,
                "depth {depth}: {} DSPs",
                accel.total_pes()
            );
        }
    }

    #[test]
    fn heavier_layers_get_more_pes() {
        let net = resnet(14, 4, 12, 12, 8, 32, 0);
        let layers = net.layer_descs();
        let accel = DnnBuilderModel::design(&layers, &FpgaTarget::zc706());
        let (hi, _) = layers
            .iter()
            .enumerate()
            .max_by_key(|(_, l)| l.macs())
            .expect("non-empty");
        let (lo, _) = layers
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.macs())
            .expect("non-empty");
        assert!(accel.chunks[hi].pe.count() >= accel.chunks[lo].pe.count());
    }

    #[test]
    fn design_is_evaluable() {
        let net = vanilla(4, 12, 12, 32, 0);
        let layers = net.layer_descs();
        let target = FpgaTarget::zc706();
        let accel = DnnBuilderModel::design(&layers, &target);
        let report = PerfModel::evaluate(&accel, &layers, &target);
        assert!(report.fps.is_finite() && report.fps > 0.0);
        assert!(report.feasible);
    }

    #[test]
    fn nearest_rect_is_roughly_square() {
        assert_eq!(nearest_rect(16), (4, 4));
        assert_eq!(nearest_rect(12), (3, 4));
        let (r, c) = nearest_rect(97);
        assert!(r * c <= 97 && r * c >= 80);
    }
}
