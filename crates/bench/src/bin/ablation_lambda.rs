//! Ablation: the hardware-cost weight `λ` of Eq. 4. Sweeping λ trades the
//! derived agent's test score against the matched accelerator's FPS —
//! the design knob behind the paper's "maximize both test scores and
//! hardware efficiency" framing.
//!
//! ```sh
//! A3CS_SCALE=short cargo run --release -p a3cs-bench --bin ablation_lambda [game]
//! ```

use a3cs_bench::report::{fmt, or_exit, print_table, save_json, status, warn};
use a3cs_bench::scale::Scale;
use a3cs_bench::setup::{
    agent_with, cosearch_config, factory_for, game_info, train_teacher, trainer_config,
};
use a3cs_core::CoSearch;
use a3cs_drl::{DistillConfig, Trainer};
use a3cs_nas::{derive_backbone, OpChoice};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    lambda: f32,
    score: f32,
    fps: f64,
    dsp: usize,
    macs: u64,
    skips: usize,
}

fn main() {
    let scale = or_exit(Scale::try_from_env());
    let game: &'static str = match std::env::args().nth(1).as_deref() {
        Some("Pong") | None => "Pong",
        Some("Breakout") => "Breakout",
        Some("SpaceInvaders") => "SpaceInvaders",
        Some(other) => {
            warn(format!(
                "unsupported game {other}; use Pong|Breakout|SpaceInvaders"
            ));
            std::process::exit(2);
        }
    };
    let lambdas = [0.0f32, 0.05, 0.2, 1.0, 5.0];
    status(format!(
        "λ ablation on {game}: cost weight vs (score, FPS, model size) (scale: {})\n",
        scale.name
    ));

    let info = or_exit(game_info(game));
    let factory = or_exit(factory_for(game));
    let teacher = or_exit(train_teacher(game, &scale, 8100));
    let ac = DistillConfig::ac_distillation();

    let mut rows = Vec::new();
    let mut dumps = Vec::new();
    for lambda in lambdas {
        let mut cfg = or_exit(cosearch_config(game, &scale));
        cfg.lambda = lambda;
        let mut search = or_exit(CoSearch::try_new(cfg, 81));
        let result = search.run(&factory, Some(&teacher));
        let derived = derive_backbone(search.supernet().config(), &result.arch, 82);
        let macs = derived.total_macs();
        let agent = agent_with(derived, &info, 83);
        let curve = Trainer::new(trainer_config(&scale, scale.train_steps), 84).train(
            &agent,
            &factory,
            Some((&ac, &teacher)),
        );
        let skips = result
            .arch
            .iter()
            .filter(|&&op| op == OpChoice::Skip)
            .count();
        status(format!(
            "λ={lambda:<5} score={:<8.1} fps={:<10.1} macs={macs} skips={skips}/{}",
            curve.best_score(),
            result.report.fps,
            result.arch.len()
        ));
        rows.push(vec![
            format!("{lambda}"),
            fmt(f64::from(curve.best_score())),
            fmt(result.report.fps),
            result.report.dsp_used.to_string(),
            macs.to_string(),
            format!("{skips}/{}", result.arch.len()),
        ]);
        dumps.push(Row {
            lambda,
            score: curve.best_score(),
            fps: result.report.fps,
            dsp: result.report.dsp_used,
            macs,
            skips,
        });
    }

    status("\nsummary:\n");
    print_table(&["lambda", "score", "FPS", "DSPs", "MACs", "skip ops"], &rows);
    status("\nexpected shape: FPS and skip-op share rise with λ; score holds then sags.");
    save_json("ablation_lambda", &dumps);
}
