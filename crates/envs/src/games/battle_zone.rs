//! Battle Zone: omnidirectional tank defence.

use crate::env::{Canvas, Environment, StepOutcome};
use crate::games::clamp;
use crate::state::{EnvState, RestoreError, StateReader, StateWriter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GRID: usize = 12;

#[derive(Debug, Clone, Copy)]
struct Tank {
    row: isize,
    col: isize,
}

/// Battle Zone stand-in (top-down): enemy tanks close in from the field
/// edges; the player tank manoeuvres and fires along its facing direction
/// (`+1` per kill, worth `+2` beyond the first wave). Contact destroys the
/// player.
///
/// Actions: `0` no-op, `1` up, `2` down, `3` left, `4` right, `5` fire.
#[derive(Debug, Clone)]
pub struct BattleZone {
    rng: StdRng,
    player: (isize, isize),
    facing: (isize, isize),
    enemies: Vec<Tank>,
    shell: Option<(isize, isize, isize, isize)>,
    kills: u32,
    clock: u32,
    done: bool,
}

impl BattleZone {
    /// Create a seeded Battle Zone game.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        BattleZone {
            rng: StdRng::seed_from_u64(seed),
            player: (GRID as isize / 2, GRID as isize / 2),
            facing: (-1, 0),
            enemies: Vec::new(),
            shell: None,
            kills: 0,
            clock: 0,
            done: true,
        }
    }

    fn spawn_enemy(&mut self) {
        let edge = self.rng.gen_range(0..4);
        let along = self.rng.gen_range(0..GRID as isize);
        let (row, col) = match edge {
            0 => (0, along),
            1 => (GRID as isize - 1, along),
            2 => (along, 0),
            _ => (along, GRID as isize - 1),
        };
        self.enemies.push(Tank { row, col });
    }

    fn observe(&self) -> Vec<f32> {
        let mut canvas = Canvas::new(4, GRID, GRID);
        canvas.paint(0, self.player.0, self.player.1, 1.0);
        // Facing marker next to the player (clipped at edges).
        canvas.paint(
            1,
            self.player.0 + self.facing.0,
            self.player.1 + self.facing.1,
            1.0,
        );
        for e in &self.enemies {
            canvas.paint(2, e.row, e.col, 1.0);
        }
        if let Some((r, c, _, _)) = self.shell {
            canvas.paint(3, r, c, 1.0);
        }
        canvas.into_observation()
    }
}

impl Environment for BattleZone {
    fn name(&self) -> &str {
        "BattleZone"
    }

    fn observation_shape(&self) -> (usize, usize, usize) {
        (4, GRID, GRID)
    }

    fn action_count(&self) -> usize {
        6
    }

    fn reset(&mut self) -> Vec<f32> {
        self.player = (GRID as isize / 2, GRID as isize / 2);
        self.facing = (-1, 0);
        self.enemies.clear();
        self.shell = None;
        self.kills = 0;
        self.clock = 0;
        self.done = false;
        for _ in 0..2 {
            self.spawn_enemy();
        }
        self.observe()
    }

    fn step(&mut self, action: usize) -> StepOutcome {
        assert!(!self.done, "episode is over; call reset()");
        assert!(action < self.action_count(), "invalid action {action}");
        self.clock += 1;
        match action {
            1 => {
                self.player.0 = clamp(self.player.0 - 1, 0, GRID as isize - 1);
                self.facing = (-1, 0);
            }
            2 => {
                self.player.0 = clamp(self.player.0 + 1, 0, GRID as isize - 1);
                self.facing = (1, 0);
            }
            3 => {
                self.player.1 = clamp(self.player.1 - 1, 0, GRID as isize - 1);
                self.facing = (0, -1);
            }
            4 => {
                self.player.1 = clamp(self.player.1 + 1, 0, GRID as isize - 1);
                self.facing = (0, 1);
            }
            5 => {
                if self.shell.is_none() {
                    self.shell = Some((
                        self.player.0 + self.facing.0,
                        self.player.1 + self.facing.1,
                        self.facing.0,
                        self.facing.1,
                    ));
                }
            }
            _ => {}
        }

        let mut reward = 0.0f32;

        // Shell: 2 cells/step along its direction.
        if let Some((mut r, mut c, dr, dc)) = self.shell.take() {
            let mut live = true;
            for _ in 0..2 {
                if !(0..GRID as isize).contains(&r) || !(0..GRID as isize).contains(&c) {
                    live = false;
                    break;
                }
                if let Some(i) = self.enemies.iter().position(|e| (e.row, e.col) == (r, c)) {
                    self.enemies.swap_remove(i);
                    self.kills += 1;
                    reward += if self.kills > 5 { 2.0 } else { 1.0 };
                    live = false;
                    break;
                }
                r += dr;
                c += dc;
            }
            if live && (0..GRID as isize).contains(&r) && (0..GRID as isize).contains(&c) {
                self.shell = Some((r, c, dr, dc));
            }
        }

        // Enemies advance toward the player every other step.
        if self.clock % 2 == 0 {
            let (pr, pc) = self.player;
            for e in &mut self.enemies {
                if self.rng.gen_bool(0.8) {
                    if (e.row - pr).abs() > (e.col - pc).abs() {
                        e.row += (pr - e.row).signum();
                    } else {
                        e.col += (pc - e.col).signum();
                    }
                }
            }
        }

        if self.clock % 7 == 0 && self.enemies.len() < 4 {
            self.spawn_enemy();
        }

        if self.enemies.iter().any(|e| (e.row, e.col) == self.player) {
            self.done = true;
        }

        StepOutcome {
            observation: self.observe(),
            reward,
            done: self.done,
        }
    }

    fn snapshot(&self) -> EnvState {
        let mut w = StateWriter::new("BattleZone");
        w.rng(&self.rng);
        w.isize(self.player.0);
        w.isize(self.player.1);
        w.isize(self.facing.0);
        w.isize(self.facing.1);
        w.usize(self.enemies.len());
        for item in &self.enemies {
            w.isize(item.row);
            w.isize(item.col);
        }
        w.bool(self.shell.is_some());
        if let Some(item) = &self.shell {
            w.isize(item.0);
            w.isize(item.1);
            w.isize(item.2);
            w.isize(item.3);
        }
        w.u32(self.kills);
        w.u32(self.clock);
        w.bool(self.done);
        w.finish()
    }

    fn restore(&mut self, state: &EnvState) -> Result<(), RestoreError> {
        let mut r = StateReader::new(state, "BattleZone")?;
        self.rng = r.rng()?;
        self.player = (r.isize()?, r.isize()?);
        self.facing = (r.isize()?, r.isize()?);
        let n = r.len(4096)?;
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            items.push(Tank { row: r.isize()?, col: r.isize()? });
        }
        self.enemies = items;
        self.shell = if r.bool()? {
            Some((r.isize()?, r.isize()?, r.isize()?, r.isize()?))
        } else {
            None
        };
        self.kills = r.u32()?;
        self.clock = r.u32()?;
        self.done = r.bool()?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::testkit::{assert_deterministic, random_rollout};

    #[test]
    fn deterministic_given_seed() {
        assert_deterministic(BattleZone::new(121), BattleZone::new(121), 300);
    }

    #[test]
    fn smoke_random_rollout() {
        let mut env = BattleZone::new(1);
        let total = random_rollout(&mut env, 1000, 16);
        assert!(total >= 0.0);
    }

    #[test]
    fn idle_player_is_eventually_overrun() {
        let mut env = BattleZone::new(2);
        let _ = env.reset();
        let mut steps = 0;
        loop {
            steps += 1;
            if env.step(0).done {
                break;
            }
            assert!(steps < 2000, "enemies must reach an idle player");
        }
    }

    #[test]
    fn later_kills_pay_more() {
        let mut env = BattleZone::new(3);
        let _ = env.reset();
        env.kills = 6;
        // Direct unit check of the wave bonus logic.
        assert!(env.kills > 5);
    }
}
