//! Workspace lint driver: `cargo run -p a3cs-check --bin lint [-- --update]`.
//!
//! Walks `crates/*/src`, counts panic-prone call sites and `#[must_use]`
//! omissions (see `a3cs_check::lint`), and compares the census against the
//! committed allowlist `crates/check/lint-allowlist.txt`. Counts may only
//! ratchet down; `--update` rewrites the allowlist to the current counts.

use a3cs_check::{compare, count_hits, format_allowlist, parse_allowlist, scan_source, LintHit};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const ALLOWLIST_REL: &str = "crates/check/lint-allowlist.txt";

fn repo_root() -> Option<PathBuf> {
    // This binary lives in crates/check; the workspace root is two up.
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = manifest.parent()?.parent()?;
    Some(root.to_path_buf())
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn scan_workspace(root: &Path) -> Result<Vec<LintHit>, String> {
    let crates_dir = root.join("crates");
    let entries =
        fs::read_dir(&crates_dir).map_err(|e| format!("cannot read {crates_dir:?}: {e}"))?;
    let mut crate_dirs: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    crate_dirs.sort();
    let mut hits = Vec::new();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files);
        for file in files {
            let source =
                fs::read_to_string(&file).map_err(|e| format!("cannot read {file:?}: {e}"))?;
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            hits.extend(scan_source(&rel, &source));
        }
    }
    Ok(hits)
}

fn run() -> Result<ExitCode, String> {
    let mut update = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--update" => update = true,
            other => return Err(format!("unknown argument `{other}` (only --update is accepted)")),
        }
    }
    let root = repo_root().ok_or_else(|| "cannot locate the workspace root".to_string())?;
    let hits = scan_workspace(&root)?;
    let actual = count_hits(&hits);
    let total: usize = actual.values().sum();
    let allowlist_path = root.join(ALLOWLIST_REL);

    if update {
        fs::write(&allowlist_path, format_allowlist(&actual))
            .map_err(|e| format!("cannot write {allowlist_path:?}: {e}"))?;
        println!("lint: allowlist updated with {total} grandfathered findings ({ALLOWLIST_REL})");
        return Ok(ExitCode::SUCCESS);
    }

    let allowed = match fs::read_to_string(&allowlist_path) {
        Ok(text) => parse_allowlist(&text)?,
        Err(e) => {
            return Err(format!(
                "cannot read {ALLOWLIST_REL}: {e}; run with --update to create it"
            ))
        }
    };
    let outcome = compare(&actual, &allowed);
    if !outcome.is_ok() {
        eprintln!("lint: counts above the allowlist (new findings must be fixed, not added):");
        for (file, category, got, cap) in &outcome.violations {
            eprintln!("  {file}: {category} {got} > allowed {cap}");
            for hit in &hits {
                if &hit.file == file && hit.category.as_str() == category {
                    eprintln!("    {file}:{}", hit.line);
                }
            }
        }
        return Ok(ExitCode::FAILURE);
    }
    if outcome.ratchets.is_empty() {
        println!("lint: clean against allowlist ({total} grandfathered findings)");
    } else {
        println!("lint: clean; {} entries improved — ratchet down with --update:", outcome.ratchets.len());
        for (file, category, got, cap) in &outcome.ratchets {
            println!("  {file}: {category} {got} (allowed {cap})");
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("lint: {message}");
            ExitCode::FAILURE
        }
    }
}
