//! Reference numbers quoted from the paper, used for side-by-side
//! paper-vs-measured reporting. Absolute values are not comparable (the
//! paper runs 3×10⁷-step ALE training and a physical ZC706); only the
//! *shape* — orderings, ratios, crossovers — is the reproduction target.

/// Table I: highest test scores on ALE for the five hand-designed
/// backbones, for the games this reproduction also implements.
/// Order: (game, Vanilla, ResNet-14, ResNet-20, ResNet-38, ResNet-74).
pub const TABLE1: &[(&str, [f64; 5])] = &[
    ("Breakout", [523.7, 776.5, 811.0, 818.5, 2.2]),
    ("Alien", [1724.0, 9007.0, 9323.0, 8829.0, 4456.0]),
    ("Asterix", [4850.0, 708_500.0, 856_800.0, 756_120.0, 539_060.0]),
    ("Atlantis", [3_064_320.0, 3_127_390.0, 3_156_130.0, 3_181_090.0, 3_046_490.0]),
    ("TimePilot", [4780.0, 9070.0, 9680.0, 9500.0, 9040.0]),
    ("SpaceInvaders", [1171.0, 9848.0, 46_870.0, 17_962.0, 15_111.0]),
    ("WizardOfWor", [1320.0, 2690.0, 3580.0, 3160.0, 1850.0]),
    ("Tennis", [-23.7, 13.8, 11.5, 19.6, 19.3]),
    ("Asteroids", [2095.0, 5690.0, 5744.0, 1947.0, 4792.0]),
    ("Assault", [10_164.0, 14_470.0, 17_314.0, 12_406.5, 9849.0]),
    ("BattleZone", [7600.0, 5800.0, 13_100.0, 13_300.0, 4100.0]),
    ("BeamRider", [5530.0, 23_984.0, 25_961.0, 29_498.0, 30_048.0]),
    ("Bowling", [28.1, 53.0, 59.2, 33.2, 50.8]),
    ("Boxing", [4.2, 100.0, 100.0, 99.3, 87.1]),
    ("Centipede", [5025.0, 6690.0, 6410.0, 6384.6, 6899.0]),
    ("ChopperCommand", [1320.0, 11_170.0, 14_910.0, 4370.0, 8240.0]),
];

/// Table II: `(game, vanilla [none, policy-only, AC], resnet14 [same])` for
/// the games this reproduction implements.
pub const TABLE2: &[(&str, [f64; 3], [f64; 3])] = &[
    ("Alien", [1724.0, 3096.0, 3419.0], [9007.0, 14_682.0, 15_723.0]),
    (
        "SpaceInvaders",
        [1171.0, 26_821.0, 30_124.0],
        [9848.0, 76_246.0, 111_189.0],
    ),
    ("Asterix", [4850.0, 59_020.0, 64_510.0], [708_500.0, 749_870.0, 849_400.0]),
    ("Asteroids", [2095.0, 4131.0, 4647.0], [5690.0, 15_371.0, 15_947.0]),
    ("Assault", [10_164.0, 8088.4, 9628.5], [14_470.0, 11_697.0, 14_052.0]),
    ("BattleZone", [7600.0, 14_200.0, 14_400.0], [5800.0, 16_300.0, 17_500.0]),
    ("BeamRider", [5530.0, 14_417.0, 21_519.0], [23_984.0, 38_311.0, 39_604.0]),
    ("Boxing", [4.2, 2.8, 100.0], [100.0, 100.0, 100.0]),
    ("Centipede", [5025.0, 5800.0, 6575.5], [6690.0, 7744.3, 8056.9]),
    (
        "ChopperCommand",
        [1320.0, 15_900.0, 19_120.0],
        [11_170.0, 26_320.0, 31_190.0],
    ),
    (
        "CrazyClimber",
        [118_300.0, 138_610.0, 145_700.0],
        [128_710.0, 135_290.0, 138_470.0],
    ),
    (
        "DemonAttack",
        [318_349.0, 463_823.0, 483_490.0],
        [481_818.0, 517_801.0, 521_051.0],
    ),
];

/// Table III: FA3C (score, FPS) vs A3C-S (score, FPS) as reported by the
/// paper; FA3C runs everything at 260 FPS.
pub const TABLE3: &[(&str, (f64, f64), (f64, f64))] = &[
    ("BeamRider", (3100.0, 260.0), (36_745.0, 617.7)),
    ("Breakout", (340.0, 260.0), (670.0, 1596.3)),
    ("Pong", (0.0, 260.0), (20.9, 787.4)),
    ("Qbert", (6100.0, 260.0), (15_194.0, 1222.9)),
    ("Seaquest", (170.0, 260.0), (478_940.0, 778.1)),
    ("SpaceInvaders", (830.0, 260.0), (109_417.0, 535.6)),
];

/// Games shown in the paper's Fig. 1 / Fig. 2 style curve plots that this
/// reproduction implements.
pub const CURVE_GAMES: &[&str] = &["Breakout", "Atlantis", "SpaceInvaders", "Pong"];

/// Games used for the Fig. 3 trade-off comparison.
pub const FIG3_GAMES: &[&str] = &["Breakout", "Pong", "SpaceInvaders", "Qbert"];

#[cfg(test)]
mod tests {
    use super::*;
    use a3cs_envs::game_names;

    #[test]
    fn quoted_games_exist_in_the_simulator() {
        let known = game_names();
        for (game, _) in TABLE1 {
            assert!(known.contains(game), "{game} missing from simulator");
        }
        for (game, _, _) in TABLE2 {
            assert!(known.contains(game), "{game} missing from simulator");
        }
        for (game, _, _) in TABLE3 {
            assert!(known.contains(game), "{game} missing from simulator");
        }
        for game in CURVE_GAMES.iter().chain(FIG3_GAMES) {
            assert!(known.contains(game), "{game} missing from simulator");
        }
    }

    #[test]
    fn table3_fa3c_runs_at_260_fps() {
        for (_, (_, fps), _) in TABLE3 {
            assert_eq!(*fps, 260.0);
        }
    }

    #[test]
    fn table2_ac_distillation_wins_on_most_rows() {
        // The paper's observation: AC-distillation is best on most tasks.
        let mut wins = 0;
        for (_, v, r) in TABLE2 {
            if v[2] >= v[0] && v[2] >= v[1] {
                wins += 1;
            }
            if r[2] >= r[0] && r[2] >= r[1] {
                wins += 1;
            }
        }
        assert!(wins >= TABLE2.len(), "paper data itself shows AC wins");
    }
}
