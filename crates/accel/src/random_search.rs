//! Uniform random search over the accelerator space — the ablation
//! baseline for DAS.

use crate::predictor::{CostWeights, PerfModel};
use crate::space::SearchSpace;
use crate::template::AcceleratorConfig;
use crate::zc706::FpgaTarget;
use a3cs_nn::LayerDesc;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random accelerator search: samples uniform configurations and keeps the
/// cheapest one.
pub struct RandomSearch {
    space: SearchSpace,
    num_chunks: usize,
    cost: CostWeights,
    rng: StdRng,
    best: Option<(AcceleratorConfig, f64)>,
}

impl RandomSearch {
    /// Create a random search over `space` with `num_chunks` chunks.
    ///
    /// # Panics
    ///
    /// Panics if `num_chunks` is zero.
    #[must_use]
    pub fn new(space: SearchSpace, num_chunks: usize, cost: CostWeights, seed: u64) -> Self {
        assert!(num_chunks > 0, "need at least one chunk");
        RandomSearch {
            space,
            num_chunks,
            cost,
            rng: StdRng::seed_from_u64(seed),
            best: None,
        }
    }

    /// Sample one configuration, evaluate it, and track the best. Returns
    /// the sampled cost.
    pub fn step(&mut self, layers: &[LayerDesc], target: &FpgaTarget) -> f64 {
        let sizes = self.space.knob_sizes(self.num_chunks, layers.len());
        let choices: Vec<usize> = sizes.iter().map(|&s| self.rng.gen_range(0..s)).collect();
        let accel = self.space.decode(self.num_chunks, layers.len(), &choices);
        let report = PerfModel::evaluate(&accel, layers, target);
        let cost = PerfModel::cost(&report, target, &self.cost);
        if self.best.as_ref().is_none_or(|(_, c)| cost < *c) {
            self.best = Some((accel, cost));
        }
        cost
    }

    /// Run `iters` samples and return the best configuration found.
    ///
    /// # Panics
    ///
    /// Panics if `iters` is zero.
    pub fn run(
        &mut self,
        layers: &[LayerDesc],
        target: &FpgaTarget,
        iters: usize,
    ) -> (AcceleratorConfig, f64) {
        assert!(iters > 0, "need at least one sample");
        for _ in 0..iters {
            let _ = self.step(layers, target);
        }
        self.best.clone().expect("at least one sample was taken")
    }

    /// Best `(config, cost)` found so far, if any.
    #[must_use]
    pub fn best(&self) -> Option<&(AcceleratorConfig, f64)> {
        self.best.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a3cs_nn::vanilla;

    #[test]
    fn best_cost_is_monotone_in_iterations() {
        let net = vanilla(4, 12, 12, 32, 0);
        let layers = net.layer_descs();
        let target = FpgaTarget::zc706();
        let mut rs = RandomSearch::new(
            SearchSpace::default(),
            2,
            CostWeights::default(),
            1,
        );
        let (_, after_10) = rs.run(&layers, &target, 10);
        let (_, after_more) = rs.run(&layers, &target, 90);
        assert!(after_more <= after_10);
    }

    #[test]
    fn sampled_configs_are_valid() {
        let net = vanilla(4, 12, 12, 32, 0);
        let layers = net.layer_descs();
        let target = FpgaTarget::zc706();
        let mut rs = RandomSearch::new(
            SearchSpace::default(),
            3,
            CostWeights::default(),
            2,
        );
        let (best, cost) = rs.run(&layers, &target, 20);
        assert!(best.assignment_valid());
        assert_eq!(best.assignment.len(), layers.len());
        assert!(cost.is_finite());
    }
}
