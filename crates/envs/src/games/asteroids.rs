//! Asteroids: drift-and-shoot among splitting rocks.

use crate::env::{Canvas, Environment, StepOutcome};
use crate::games::clamp;
use crate::state::{EnvState, RestoreError, StateReader, StateWriter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GRID: usize = 12;

#[derive(Debug, Clone, Copy)]
struct Rock {
    row: isize,
    col: isize,
    dr: isize,
    dc: isize,
    big: bool,
    phase: u32,
}

/// Asteroids stand-in: rocks drift across a wrapping field; shooting a big
/// rock (`+1`) splits it into two small rocks, shooting a small rock pays
/// `+2`. Colliding with any rock ends the episode. The ship fires along
/// its last movement direction.
///
/// Actions: `0` no-op, `1` up, `2` down, `3` left, `4` right, `5` fire.
#[derive(Debug, Clone)]
pub struct Asteroids {
    rng: StdRng,
    ship: (isize, isize),
    facing: (isize, isize),
    rocks: Vec<Rock>,
    bullet: Option<(isize, isize, isize, isize)>,
    clock: u32,
    done: bool,
}

impl Asteroids {
    /// Create a seeded Asteroids game.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Asteroids {
            rng: StdRng::seed_from_u64(seed),
            ship: (GRID as isize / 2, GRID as isize / 2),
            facing: (-1, 0),
            rocks: Vec::new(),
            bullet: None,
            clock: 0,
            done: true,
        }
    }

    fn spawn_rock(&mut self, big: bool) -> Rock {
        // Spawn on an edge, drifting inward-ish.
        let edge = self.rng.gen_range(0..4);
        let along = self.rng.gen_range(0..GRID as isize);
        let (row, col) = match edge {
            0 => (0, along),
            1 => (GRID as isize - 1, along),
            2 => (along, 0),
            _ => (along, GRID as isize - 1),
        };
        let mut dr = self.rng.gen_range(-1..=1);
        let mut dc = self.rng.gen_range(-1..=1);
        if dr == 0 && dc == 0 {
            dr = 1;
            dc = 0;
        }
        Rock {
            row,
            col,
            dr,
            dc,
            big,
            phase: self.rng.gen_range(0..2),
        }
    }

    fn observe(&self) -> Vec<f32> {
        let mut canvas = Canvas::new(4, GRID, GRID);
        canvas.paint(0, self.ship.0, self.ship.1, 1.0);
        for r in &self.rocks {
            canvas.paint(if r.big { 1 } else { 2 }, r.row, r.col, 1.0);
        }
        if let Some((r, c, _, _)) = self.bullet {
            canvas.paint(3, r, c, 1.0);
        }
        canvas.into_observation()
    }

    fn rock_hit(&mut self, idx: usize) -> f32 {
        let rock = self.rocks.swap_remove(idx);
        if rock.big {
            for _ in 0..2 {
                let mut dr = self.rng.gen_range(-1..=1);
                let dc = self.rng.gen_range(-1..=1);
                if dr == 0 && dc == 0 {
                    dr = -1;
                }
                self.rocks.push(Rock {
                    row: rock.row,
                    col: rock.col,
                    dr,
                    dc,
                    big: false,
                    phase: self.rng.gen_range(0..2),
                });
            }
            1.0
        } else {
            2.0
        }
    }
}

fn wrap(v: isize) -> isize {
    (v + GRID as isize) % GRID as isize
}

impl Environment for Asteroids {
    fn name(&self) -> &str {
        "Asteroids"
    }

    fn observation_shape(&self) -> (usize, usize, usize) {
        (4, GRID, GRID)
    }

    fn action_count(&self) -> usize {
        6
    }

    fn reset(&mut self) -> Vec<f32> {
        self.ship = (GRID as isize / 2, GRID as isize / 2);
        self.facing = (-1, 0);
        self.bullet = None;
        self.clock = 0;
        self.rocks.clear();
        for _ in 0..3 {
            let r = self.spawn_rock(true);
            self.rocks.push(r);
        }
        self.done = false;
        self.observe()
    }

    fn step(&mut self, action: usize) -> StepOutcome {
        assert!(!self.done, "episode is over; call reset()");
        assert!(action < self.action_count(), "invalid action {action}");
        self.clock += 1;
        match action {
            1 => {
                self.ship.0 = clamp(self.ship.0 - 1, 0, GRID as isize - 1);
                self.facing = (-1, 0);
            }
            2 => {
                self.ship.0 = clamp(self.ship.0 + 1, 0, GRID as isize - 1);
                self.facing = (1, 0);
            }
            3 => {
                self.ship.1 = clamp(self.ship.1 - 1, 0, GRID as isize - 1);
                self.facing = (0, -1);
            }
            4 => {
                self.ship.1 = clamp(self.ship.1 + 1, 0, GRID as isize - 1);
                self.facing = (0, 1);
            }
            5 => {
                if self.bullet.is_none() {
                    self.bullet = Some((
                        self.ship.0 + self.facing.0,
                        self.ship.1 + self.facing.1,
                        self.facing.0,
                        self.facing.1,
                    ));
                }
            }
            _ => {}
        }

        let mut reward = 0.0f32;

        // Bullet: 2 cells/step, no wrap.
        if let Some((mut r, mut c, dr, dc)) = self.bullet.take() {
            let mut live = true;
            for _ in 0..2 {
                if !(0..GRID as isize).contains(&r) || !(0..GRID as isize).contains(&c) {
                    live = false;
                    break;
                }
                if let Some(i) = self.rocks.iter().position(|k| (k.row, k.col) == (r, c)) {
                    reward += self.rock_hit(i);
                    live = false;
                    break;
                }
                r += dr;
                c += dc;
            }
            if live && (0..GRID as isize).contains(&r) && (0..GRID as isize).contains(&c) {
                self.bullet = Some((r, c, dr, dc));
            }
        }

        // Rocks drift (big rocks every other step), wrapping at edges.
        for rock in &mut self.rocks {
            let moves = if rock.big {
                u32::from((self.clock + rock.phase) % 2 == 0)
            } else {
                1
            };
            for _ in 0..moves {
                rock.row = wrap(rock.row + rock.dr);
                rock.col = wrap(rock.col + rock.dc);
            }
        }

        // Keep the field populated.
        if self.clock % 10 == 0 && self.rocks.len() < 6 {
            let r = self.spawn_rock(true);
            self.rocks.push(r);
        }

        if self.rocks.iter().any(|r| (r.row, r.col) == self.ship) {
            self.done = true;
        }

        StepOutcome {
            observation: self.observe(),
            reward,
            done: self.done,
        }
    }

    fn snapshot(&self) -> EnvState {
        let mut w = StateWriter::new("Asteroids");
        w.rng(&self.rng);
        w.isize(self.ship.0);
        w.isize(self.ship.1);
        w.isize(self.facing.0);
        w.isize(self.facing.1);
        w.usize(self.rocks.len());
        for item in &self.rocks {
            w.isize(item.row);
            w.isize(item.col);
            w.isize(item.dr);
            w.isize(item.dc);
            w.bool(item.big);
            w.u32(item.phase);
        }
        w.bool(self.bullet.is_some());
        if let Some(item) = &self.bullet {
            w.isize(item.0);
            w.isize(item.1);
            w.isize(item.2);
            w.isize(item.3);
        }
        w.u32(self.clock);
        w.bool(self.done);
        w.finish()
    }

    fn restore(&mut self, state: &EnvState) -> Result<(), RestoreError> {
        let mut r = StateReader::new(state, "Asteroids")?;
        self.rng = r.rng()?;
        self.ship = (r.isize()?, r.isize()?);
        self.facing = (r.isize()?, r.isize()?);
        let n = r.len(4096)?;
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            items.push(Rock { row: r.isize()?, col: r.isize()?, dr: r.isize()?, dc: r.isize()?, big: r.bool()?, phase: r.u32()? });
        }
        self.rocks = items;
        self.bullet = if r.bool()? {
            Some((r.isize()?, r.isize()?, r.isize()?, r.isize()?))
        } else {
            None
        };
        self.clock = r.u32()?;
        self.done = r.bool()?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::testkit::{assert_deterministic, random_rollout};

    #[test]
    fn deterministic_given_seed() {
        assert_deterministic(Asteroids::new(101), Asteroids::new(101), 300);
    }

    #[test]
    fn smoke_random_rollout() {
        let mut env = Asteroids::new(1);
        let total = random_rollout(&mut env, 1000, 14);
        assert!(total >= 0.0);
    }

    #[test]
    fn big_rock_splits_into_two_small() {
        let mut env = Asteroids::new(2);
        let _ = env.reset();
        let before_small = env.rocks.iter().filter(|r| !r.big).count();
        let big_idx = env.rocks.iter().position(|r| r.big).expect("big rocks exist");
        let reward = env.rock_hit(big_idx);
        assert_eq!(reward, 1.0);
        assert_eq!(
            env.rocks.iter().filter(|r| !r.big).count(),
            before_small + 2
        );
    }

    #[test]
    fn wrapping_keeps_rocks_in_bounds() {
        let mut env = Asteroids::new(3);
        let _ = env.reset();
        for _ in 0..200 {
            if env.done {
                let _ = env.reset();
            }
            let _ = env.step(0);
            for r in &env.rocks {
                assert!((0..GRID as isize).contains(&r.row));
                assert!((0..GRID as isize).contains(&r.col));
            }
        }
    }
}
