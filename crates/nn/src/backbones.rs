//! The paper's backbone zoo: the DQN-style *Vanilla* network and the
//! CIFAR-style ResNet family (depths 14/20/38/74, first conv stride 2,
//! fixed-width feature head), scaled down to the reproduction's
//! observation sizes.

use crate::blocks::BasicBlock;
use crate::describe::{FeatureShape, LayerDesc};
use crate::layers::{BatchNorm2d, Conv2d, Flatten, GlobalAvgPool, Linear, Relu};
use crate::module::Module;
use crate::param::Param;
use crate::sequential::Sequential;
use a3cs_tensor::{Tape, Var};

/// A named feature-extractor network with a fixed output feature size.
///
/// This is what the DRL agent wraps with policy/value heads and what the
/// accelerator predictor describes.
pub struct Backbone {
    name: String,
    net: Sequential,
    in_shape: FeatureShape,
    feat_dim: usize,
}

impl Backbone {
    /// Assemble a backbone from parts.
    ///
    /// # Panics
    ///
    /// Panics if `net.describe(in_shape)` does not end in a flat vector of
    /// `feat_dim` features.
    #[must_use]
    pub fn from_parts(
        name: &str,
        net: Sequential,
        in_shape: FeatureShape,
        feat_dim: usize,
    ) -> Self {
        let (_, out) = net.describe(in_shape);
        assert_eq!(
            out,
            FeatureShape::Flat { features: feat_dim },
            "backbone {name} must end in a flat {feat_dim}-feature vector"
        );
        Backbone {
            name: name.to_owned(),
            net,
            in_shape,
            feat_dim,
        }
    }

    /// The backbone's display name (e.g. `"ResNet-20"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Output feature dimensionality.
    #[must_use]
    pub fn feat_dim(&self) -> usize {
        self.feat_dim
    }

    /// The observation shape this backbone was built for.
    #[must_use]
    pub fn in_shape(&self) -> FeatureShape {
        self.in_shape
    }

    /// Compute-layer descriptors for the design-time input shape.
    #[must_use]
    pub fn layer_descs(&self) -> Vec<LayerDesc> {
        self.net.describe(self.in_shape).0
    }

    /// Total MACs per inference at the design-time input shape.
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.layer_descs().iter().map(LayerDesc::macs).sum()
    }
}

impl Module for Backbone {
    fn forward(&self, tape: &Tape, x: &Var, train: bool) -> Var {
        self.net.forward(tape, x, train)
    }

    fn params(&self) -> Vec<Param> {
        self.net.params()
    }

    fn state(&self) -> Vec<Param> {
        self.net.state()
    }

    fn describe(&self, input: FeatureShape) -> (Vec<LayerDesc>, FeatureShape) {
        self.net.describe(input)
    }
}

fn conv_out(side: usize, kernel: usize, stride: usize, padding: usize) -> usize {
    (side + 2 * padding - kernel) / stride + 1
}

/// The DQN-style small network ("Vanilla" in the paper), scaled to the
/// reproduction's observation sizes: two stride-2 convolutions followed by
/// a fully connected feature layer.
///
/// # Panics
///
/// Panics if the observation is too small for two stride-2 convolutions.
///
/// # Example
///
/// ```
/// let net = a3cs_nn::vanilla(4, 12, 12, 64, 0);
/// assert_eq!(net.name(), "Vanilla");
/// assert_eq!(net.feat_dim(), 64);
/// ```
#[must_use]
pub fn vanilla(in_planes: usize, height: usize, width: usize, feat_dim: usize, seed: u64) -> Backbone {
    let c1 = 16;
    let c2 = 32;
    let h1 = conv_out(height, 3, 2, 1);
    let w1 = conv_out(width, 3, 2, 1);
    let h2 = conv_out(h1, 3, 2, 1);
    let w2 = conv_out(w1, 3, 2, 1);
    let flat = c2 * h2 * w2;
    let net = Sequential::new()
        .push(Conv2d::new("vanilla.conv1", in_planes, c1, 3, 2, 1, true, seed))
        .push(Relu::new())
        .push(Conv2d::new(
            "vanilla.conv2",
            c1,
            c2,
            3,
            2,
            1,
            true,
            seed.wrapping_add(1),
        ))
        .push(Relu::new())
        .push(Flatten::new())
        .push(Linear::new(
            "vanilla.fc",
            flat,
            feat_dim,
            seed.wrapping_add(2),
        ))
        .push(Relu::new());
    Backbone::from_parts(
        "Vanilla",
        net,
        FeatureShape::image(in_planes, height, width),
        feat_dim,
    )
}

/// Blocks per group for a CIFAR-style ResNet of `depth = 6n + 2`.
///
/// # Panics
///
/// Panics unless `depth` is of the form `6n + 2` with `n >= 1`
/// (the paper uses 14, 20, 38 and 74).
#[must_use]
pub fn resnet_blocks_per_group(depth: usize) -> usize {
    assert!(
        depth >= 8 && (depth - 2) % 6 == 0,
        "ResNet depth must be 6n+2 (e.g. 14, 20, 38, 74), got {depth}"
    );
    (depth - 2) / 6
}

/// A CIFAR-style ResNet backbone with the paper's modifications: the stem
/// convolution has stride 2 and the head is a fixed-width fully connected
/// layer (256 in the paper; `feat_dim` here so the scale is configurable).
///
/// `base_width` is the channel count of the first group; groups 2 and 3
/// double and quadruple it with stride-2 transitions.
///
/// # Panics
///
/// Panics if `depth` is not of the form `6n + 2`, or the spatial input is
/// too small for three stride-2 stages.
///
/// # Example
///
/// ```
/// let net = a3cs_nn::resnet(14, 4, 12, 12, 8, 64, 0);
/// assert_eq!(net.name(), "ResNet-14");
/// // depth 14 => 2 blocks per group, 3 groups, plus stem and head.
/// assert!(net.total_macs() > 0);
/// ```
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn resnet(
    depth: usize,
    in_planes: usize,
    height: usize,
    width: usize,
    base_width: usize,
    feat_dim: usize,
    seed: u64,
) -> Backbone {
    let n = resnet_blocks_per_group(depth);
    let name = format!("ResNet-{depth}");
    let mut net = Sequential::new()
        .push(Conv2d::new(
            &format!("{name}.stem"),
            in_planes,
            base_width,
            3,
            2,
            1,
            false,
            seed,
        ))
        .push(BatchNorm2d::new(&format!("{name}.stem_bn"), base_width))
        .push(Relu::new());
    let widths = [base_width, base_width * 2, base_width * 4];
    let mut in_ch = base_width;
    let mut block_seed = seed.wrapping_add(10);
    for (g, &w) in widths.iter().enumerate() {
        for b in 0..n {
            let stride = if g > 0 && b == 0 { 2 } else { 1 };
            net.push_boxed(Box::new(BasicBlock::new(
                &format!("{name}.g{g}b{b}"),
                in_ch,
                w,
                stride,
                block_seed,
            )));
            in_ch = w;
            block_seed = block_seed.wrapping_add(7);
        }
    }
    let net = net
        .push(GlobalAvgPool::new())
        .push(Linear::new(
            &format!("{name}.fc"),
            widths[2],
            feat_dim,
            seed.wrapping_add(3),
        ))
        .push(Relu::new());
    Backbone::from_parts(
        &name,
        net,
        FeatureShape::image(in_planes, height, width),
        feat_dim,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use a3cs_tensor::{Tape, Tensor};

    #[test]
    fn blocks_per_group_matches_paper_depths() {
        assert_eq!(resnet_blocks_per_group(14), 2);
        assert_eq!(resnet_blocks_per_group(20), 3);
        assert_eq!(resnet_blocks_per_group(38), 6);
        assert_eq!(resnet_blocks_per_group(74), 12);
    }

    #[test]
    #[should_panic(expected = "6n+2")]
    fn invalid_depth_panics() {
        let _ = resnet_blocks_per_group(15);
    }

    #[test]
    fn vanilla_forward_shape() {
        let net = vanilla(4, 12, 12, 32, 1);
        let tape = Tape::new();
        let x = tape.leaf(Tensor::randn(&[3, 4, 12, 12], 0.3, 2));
        let y = net.forward(&tape, &x, true);
        assert_eq!(y.shape(), vec![3, 32]);
        assert!(y.value().all_finite());
    }

    #[test]
    fn resnet_forward_shape_all_depths() {
        for depth in [14, 20] {
            let net = resnet(depth, 4, 12, 12, 8, 32, 1);
            let tape = Tape::new();
            let x = tape.leaf(Tensor::randn(&[2, 4, 12, 12], 0.3, 2));
            let y = net.forward(&tape, &x, true);
            assert_eq!(y.shape(), vec![2, 32], "depth {depth}");
            assert!(y.value().all_finite(), "depth {depth}");
        }
    }

    #[test]
    fn deeper_resnets_have_more_macs_and_params() {
        let r14 = resnet(14, 4, 12, 12, 8, 32, 1);
        let r20 = resnet(20, 4, 12, 12, 8, 32, 1);
        let r38 = resnet(38, 4, 12, 12, 8, 32, 1);
        assert!(r20.total_macs() > r14.total_macs());
        assert!(r38.total_macs() > r20.total_macs());
        assert!(r38.param_count() > r20.param_count());
        assert!(r20.param_count() > r14.param_count());
    }

    #[test]
    fn vanilla_is_much_smaller_than_resnets() {
        let v = vanilla(4, 12, 12, 32, 1);
        let r14 = resnet(14, 4, 12, 12, 8, 32, 1);
        assert!(v.total_macs() < r14.total_macs());
    }

    #[test]
    fn layer_descs_cover_every_conv_and_fc() {
        let r14 = resnet(14, 4, 12, 12, 8, 32, 1);
        let descs = r14.layer_descs();
        // stem + 6 blocks * 2 convs + 2 downsample convs (group transitions)
        // + head fc = 16
        assert_eq!(descs.len(), 16);
        assert!(descs.iter().any(|d| d.name.ends_with(".fc")));
    }

    #[test]
    fn backbone_reports_design_input_shape() {
        let v = vanilla(2, 10, 10, 16, 0);
        assert_eq!(v.in_shape(), FeatureShape::image(2, 10, 10));
    }
}
