//! Alien: maze dot-collection while evading chasers.

use crate::env::{Canvas, Environment, StepOutcome};
use crate::state::{EnvState, RestoreError, StateReader, StateWriter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GRID: usize = 11;
const CHASERS: usize = 2;

/// Alien stand-in: a Pac-Man-style maze. Collect dots (`+1` each) while two
/// chasers pursue with imperfect greed; clearing the maze refills it with a
/// bonus, contact ends the episode.
///
/// Actions: `0` no-op, `1` up, `2` down, `3` left, `4` right.
#[derive(Debug, Clone)]
pub struct Alien {
    rng: StdRng,
    walls: [[bool; GRID]; GRID],
    dots: [[bool; GRID]; GRID],
    player: (isize, isize),
    chasers: [(isize, isize); CHASERS],
    done: bool,
}

fn maze_walls() -> [[bool; GRID]; GRID] {
    let mut walls = [[false; GRID]; GRID];
    for i in 0..GRID {
        walls[0][i] = true;
        walls[GRID - 1][i] = true;
        walls[i][0] = true;
        walls[i][GRID - 1] = true;
    }
    // Interior pillars at even/even coordinates form a lattice of corridors.
    for r in (2..GRID - 1).step_by(2) {
        for c in (2..GRID - 1).step_by(2) {
            walls[r][c] = true;
        }
    }
    walls
}

impl Alien {
    /// Create a seeded Alien game.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Alien {
            rng: StdRng::seed_from_u64(seed),
            walls: maze_walls(),
            dots: [[false; GRID]; GRID],
            player: (1, 1),
            chasers: [(0, 0); CHASERS],
            done: true,
        }
    }

    fn free(&self, r: isize, c: isize) -> bool {
        (0..GRID as isize).contains(&r)
            && (0..GRID as isize).contains(&c)
            && !self.walls[r as usize][c as usize]
    }

    fn refill_dots(&mut self) {
        for r in 0..GRID {
            for c in 0..GRID {
                self.dots[r][c] = !self.walls[r][c];
            }
        }
        let (pr, pc) = self.player;
        self.dots[pr as usize][pc as usize] = false;
    }

    fn dots_remaining(&self) -> usize {
        self.dots.iter().flatten().filter(|&&d| d).count()
    }

    fn observe(&self) -> Vec<f32> {
        let mut canvas = Canvas::new(4, GRID, GRID);
        for r in 0..GRID {
            for c in 0..GRID {
                if self.walls[r][c] {
                    canvas.paint(0, r as isize, c as isize, 1.0);
                }
                if self.dots[r][c] {
                    canvas.paint(1, r as isize, c as isize, 1.0);
                }
            }
        }
        canvas.paint(2, self.player.0, self.player.1, 1.0);
        for &(r, c) in &self.chasers {
            canvas.paint(3, r, c, 1.0);
        }
        canvas.into_observation()
    }

    fn chaser_step(&mut self, idx: usize) {
        let (cr, cc) = self.chasers[idx];
        let (pr, pc) = self.player;
        let moves = [(-1, 0), (1, 0), (0, -1), (0, 1)];
        let candidates: Vec<(isize, isize)> = moves
            .iter()
            .map(|&(dr, dc)| (cr + dr, cc + dc))
            .filter(|&(r, c)| self.free(r, c))
            .collect();
        if candidates.is_empty() {
            return;
        }
        let target = if self.rng.gen_bool(0.7) {
            // Greedy: minimise Manhattan distance to the player.
            match candidates
                .iter()
                .min_by_key(|&&(r, c)| (r - pr).abs() + (c - pc).abs())
            {
                Some(&best) => best,
                None => unreachable!("guarded by the is_empty check above"),
            }
        } else {
            candidates[self.rng.gen_range(0..candidates.len())]
        };
        self.chasers[idx] = target;
    }

    fn caught(&self) -> bool {
        self.chasers.iter().any(|&c| c == self.player)
    }
}

impl Environment for Alien {
    fn name(&self) -> &str {
        "Alien"
    }

    fn observation_shape(&self) -> (usize, usize, usize) {
        (4, GRID, GRID)
    }

    fn action_count(&self) -> usize {
        5
    }

    fn reset(&mut self) -> Vec<f32> {
        self.player = (1, 1);
        self.chasers = [
            (GRID as isize - 2, GRID as isize - 2),
            (1, GRID as isize - 2),
        ];
        self.refill_dots();
        self.done = false;
        self.observe()
    }

    fn step(&mut self, action: usize) -> StepOutcome {
        assert!(!self.done, "episode is over; call reset()");
        assert!(action < self.action_count(), "invalid action {action}");
        let (dr, dc) = match action {
            1 => (-1, 0),
            2 => (1, 0),
            3 => (0, -1),
            4 => (0, 1),
            _ => (0, 0),
        };
        let (nr, nc) = (self.player.0 + dr, self.player.1 + dc);
        if self.free(nr, nc) {
            self.player = (nr, nc);
        }

        let mut reward = 0.0f32;
        let (pr, pc) = (self.player.0 as usize, self.player.1 as usize);
        if self.dots[pr][pc] {
            self.dots[pr][pc] = false;
            reward += 1.0;
        }

        // Chasers move after the player; contact at any interleaving ends it.
        for i in 0..CHASERS {
            self.chaser_step(i);
        }
        if self.caught() {
            self.done = true;
        }

        if self.dots_remaining() == 0 {
            reward += 10.0;
            self.refill_dots();
        }

        StepOutcome {
            observation: self.observe(),
            reward,
            done: self.done,
        }
    }

    fn snapshot(&self) -> EnvState {
        let mut w = StateWriter::new("Alien");
        w.rng(&self.rng);
        for row in &self.walls {
            for &cell in row {
                w.bool(cell);
            }
        }
        for row in &self.dots {
            for &cell in row {
                w.bool(cell);
            }
        }
        w.isize(self.player.0);
        w.isize(self.player.1);
        for item in &self.chasers {
            w.isize(item.0);
            w.isize(item.1);
        }
        w.bool(self.done);
        w.finish()
    }

    fn restore(&mut self, state: &EnvState) -> Result<(), RestoreError> {
        let mut r = StateReader::new(state, "Alien")?;
        self.rng = r.rng()?;
        for row in &mut self.walls {
            for cell in row.iter_mut() {
                *cell = r.bool()?;
            }
        }
        for row in &mut self.dots {
            for cell in row.iter_mut() {
                *cell = r.bool()?;
            }
        }
        self.player = (r.isize()?, r.isize()?);
        for item in &mut self.chasers {
            *item = (r.isize()?, r.isize()?);
        }
        self.done = r.bool()?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::testkit::{assert_deterministic, random_rollout};

    #[test]
    fn deterministic_given_seed() {
        assert_deterministic(Alien::new(21), Alien::new(21), 300);
    }

    #[test]
    fn smoke_random_rollout() {
        let mut env = Alien::new(3);
        let total = random_rollout(&mut env, 1000, 4);
        assert!(total >= 0.0);
    }

    #[test]
    fn maze_has_connected_free_cells() {
        let env = Alien::new(0);
        // Flood fill from the start position; every non-wall cell must be
        // reachable, otherwise dots could be impossible to clear.
        let mut seen = [[false; GRID]; GRID];
        let mut stack = vec![(1isize, 1isize)];
        while let Some((r, c)) = stack.pop() {
            if seen[r as usize][c as usize] {
                continue;
            }
            seen[r as usize][c as usize] = true;
            for (dr, dc) in [(-1, 0), (1, 0), (0, -1), (0, 1)] {
                if env.free(r + dr, c + dc) && !seen[(r + dr) as usize][(c + dc) as usize] {
                    stack.push((r + dr, c + dc));
                }
            }
        }
        for r in 0..GRID {
            for c in 0..GRID {
                assert_eq!(
                    seen[r][c], !env.walls[r][c],
                    "cell ({r},{c}) reachability mismatch"
                );
            }
        }
    }

    #[test]
    fn moving_collects_dots() {
        let mut env = Alien::new(5);
        let _ = env.reset();
        let out = env.step(4); // step right onto a dot
        assert_eq!(out.reward, 1.0);
    }

    #[test]
    fn walls_block_movement() {
        let mut env = Alien::new(5);
        let _ = env.reset();
        let before = env.player;
        let _ = env.step(1); // up into the border wall
        assert_eq!(env.player, before);
    }
}
