//! Deterministic beam search over the accelerator space, built on the
//! transposition-table cost cache (`memo.rs`).
//!
//! Each generation expands every beam member with two move families:
//!
//! - **assignment-boundary shifts** — deterministic ±1 moves on the first
//!   /last layer of a chunk's contiguous interval (the only moves that
//!   keep the sorted assignment tail sorted, so every neighbour is a
//!   legal pipeline);
//! - **single-knob mutations** — seeded-random re-draws of one chunk knob
//!   `φ^m` to a different option.
//!
//! Neighbours are scored through a [`CachedCostModel`]; because a mutated
//! candidate shares all but one chunk with its parent, the per-chunk
//! partial table turns most of each score into table lookups. A sorted
//! visited set (binary-searched `Vec<u64>` of candidate keys — no
//! `HashSet`) stops re-scoring within a run, and **cached dominance
//! pruning** drops neighbours whose cached cost already loses to the
//! current beam's worst member without touching the pool. The search is
//! bit-deterministic given its seed.

use crate::memo::{CachedCostModel, CostModel, KeyHasher, MemoStats};
use crate::predictor::CostWeights;
use crate::space::SearchSpace;
use crate::template::AcceleratorConfig;
use crate::zc706::FpgaTarget;
use a3cs_nn::LayerDesc;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Beam-search hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct BeamConfig {
    /// The knob space.
    pub space: SearchSpace,
    /// Number of pipeline chunks to instantiate.
    pub num_chunks: usize,
    /// Beam width (candidates kept per generation).
    pub width: usize,
    /// Random single-knob mutations generated per beam member per
    /// generation (boundary shifts are always generated).
    pub mutations_per_parent: usize,
    /// Cost weights fed to the predictor.
    pub cost: CostWeights,
    /// `log2` of the cost-cache size (see [`CachedCostModel::new`]).
    pub memo_log2: u32,
}

impl Default for BeamConfig {
    fn default() -> Self {
        BeamConfig {
            space: SearchSpace::default(),
            num_chunks: 4,
            width: 16,
            mutations_per_parent: 8,
            cost: CostWeights::default(),
            memo_log2: 14,
        }
    }
}

/// One scored beam candidate.
#[derive(Debug, Clone)]
struct Candidate {
    choices: Vec<usize>,
    cost: f64,
    key: u64,
}

/// Beam search over a [`SearchSpace`] — the third search engine next to
/// `RandomSearch` and `ExhaustiveSearch`, strong enough to refine a DAS
/// result (see [`BeamSearch::run_from`]).
pub struct BeamSearch {
    config: BeamConfig,
    rng: StdRng,
    model: CachedCostModel,
}

/// Canonical per-run key of a choice vector (context is fixed within a
/// run, so the vector alone identifies a candidate).
fn candidate_key(choices: &[usize]) -> u64 {
    let mut h = KeyHasher::new();
    h.index(choices.len());
    for &c in choices {
        h.index(c);
    }
    h.finish()
}

/// Score `choices` and push it into `pool`, unless it was already seen
/// this run or its *cached* cost already loses to `prune_at` (the beam's
/// worst member) — the cached dominance prune.
fn admit(
    choices: Vec<usize>,
    model: &mut CachedCostModel,
    visited: &mut Vec<u64>,
    pool: &mut Vec<Candidate>,
    prune_at: f64,
) {
    let key = candidate_key(&choices);
    match visited.binary_search(&key) {
        Ok(_) => return,
        Err(pos) => visited.insert(pos, key),
    }
    if let Some(cached) = model.probe_choices(&choices) {
        if cached >= prune_at {
            return;
        }
    }
    let cost = model.cost_choices(&choices);
    pool.push(Candidate { choices, cost, key });
}

fn sort_and_trim(pool: &mut Vec<Candidate>, width: usize) {
    pool.sort_by(|a, b| a.cost.total_cmp(&b.cost).then(a.key.cmp(&b.key)));
    // Equal keys are identical candidates (identical cost), so they sort
    // adjacent and dedup removes them.
    pool.dedup_by_key(|c| c.key);
    pool.truncate(width);
}

impl BeamSearch {
    /// Create a beam search with a fresh cost cache.
    ///
    /// # Panics
    ///
    /// Panics if `num_chunks` or `width` is zero.
    #[must_use]
    pub fn new(config: BeamConfig, seed: u64) -> Self {
        assert!(config.num_chunks > 0, "need at least one chunk");
        assert!(config.width > 0, "need a beam of at least one");
        let model = CachedCostModel::new(config.memo_log2);
        BeamSearch {
            config,
            rng: StdRng::seed_from_u64(seed),
            model,
        }
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &BeamConfig {
        &self.config
    }

    /// Cost-cache counters accumulated across runs.
    #[must_use]
    pub fn cache_stats(&self) -> MemoStats {
        self.model.stats()
    }

    /// Run `generations` of beam search from a random initial beam and
    /// return the best `(config, cost)` found.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    pub fn run(
        &mut self,
        layers: &[LayerDesc],
        target: &FpgaTarget,
        generations: usize,
    ) -> (AcceleratorConfig, f64) {
        self.run_from(&[], layers, target, generations)
    }

    /// Run beam search seeded with explicit starting candidates (e.g. the
    /// DAS argmax vector), topped up with random candidates to the beam
    /// width. Seed assignment tails are sorted into canonical (contiguous)
    /// form; the returned cost is never worse than the best seed's cost.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or a seed has the wrong arity for the
    /// space.
    pub fn run_from(
        &mut self,
        seeds: &[Vec<usize>],
        layers: &[LayerDesc],
        target: &FpgaTarget,
        generations: usize,
    ) -> (AcceleratorConfig, f64) {
        assert!(!layers.is_empty(), "cannot search for an empty network");
        let BeamSearch { config, rng, model } = self;
        let sizes = config.space.knob_sizes(config.num_chunks, layers.len());
        let split = config.space.chunk_knob_sizes().len() * config.num_chunks;
        model.begin(&config.space, config.num_chunks, layers, target, &config.cost);

        // Chunk knobs with more than one option (the only mutable ones).
        let mutable: Vec<usize> = (0..split).filter(|&k| sizes[k] > 1).collect();

        let mut visited: Vec<u64> = Vec::new();
        let mut beam: Vec<Candidate> = Vec::new();

        for seed in seeds {
            assert_eq!(
                seed.len(),
                sizes.len(),
                "seed arity must match the space"
            );
            let mut choices = seed.clone();
            choices[split..].sort_unstable();
            admit(choices, model, &mut visited, &mut beam, f64::INFINITY);
        }
        // Top up with random candidates; a bounded number of draws keeps
        // termination guaranteed on spaces smaller than the beam.
        let mut draws = 0;
        while beam.len() < config.width && draws < config.width * 16 {
            let mut choices: Vec<usize> =
                sizes.iter().map(|&s| rng.gen_range(0..s)).collect();
            choices[split..].sort_unstable();
            admit(choices, model, &mut visited, &mut beam, f64::INFINITY);
            draws += 1;
        }
        assert!(!beam.is_empty(), "failed to seed the beam");
        sort_and_trim(&mut beam, config.width);

        for _ in 0..generations {
            let prune_at = if beam.len() >= config.width {
                beam[beam.len() - 1].cost
            } else {
                f64::INFINITY
            };
            let mut pool = beam.clone();
            for parent in &beam {
                // Deterministic assignment-boundary shifts.
                for i in split..parent.choices.len() {
                    let a = parent.choices[i];
                    if a > 0 && (i == split || parent.choices[i - 1] < a) {
                        let mut c = parent.choices.clone();
                        c[i] -= 1;
                        admit(c, model, &mut visited, &mut pool, prune_at);
                    }
                    let last = i + 1 == parent.choices.len();
                    if a + 1 < config.num_chunks && (last || parent.choices[i + 1] > a) {
                        let mut c = parent.choices.clone();
                        c[i] += 1;
                        admit(c, model, &mut visited, &mut pool, prune_at);
                    }
                }
                // Seeded-random single-knob mutations.
                for _ in 0..config.mutations_per_parent {
                    if mutable.is_empty() {
                        break;
                    }
                    let k = mutable[rng.gen_range(0..mutable.len())];
                    let mut c = parent.choices.clone();
                    // Draw from the other options so the mutant differs.
                    let mut v = rng.gen_range(0..sizes[k] - 1);
                    if v >= c[k] {
                        v += 1;
                    }
                    c[k] = v;
                    admit(c, model, &mut visited, &mut pool, prune_at);
                }
            }
            sort_and_trim(&mut pool, config.width);
            beam = pool;
        }

        // `sort_and_trim` keeps the beam non-empty (it only dedups and
        // truncates) and sorted, so the front is the incumbent best.
        let best = &beam[0];
        let accel = config
            .space
            .decode(config.num_chunks, layers.len(), &best.choices);
        (accel, best.cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::tiny_space;
    use crate::random_search::RandomSearch;
    use a3cs_nn::vanilla;

    fn layers() -> Vec<LayerDesc> {
        vanilla(4, 12, 12, 32, 0).layer_descs()
    }

    #[test]
    fn beam_is_deterministic_given_seed() {
        let layers = layers();
        let target = FpgaTarget::zc706();
        let run = |seed| {
            let mut beam = BeamSearch::new(
                BeamConfig {
                    num_chunks: 2,
                    width: 8,
                    ..BeamConfig::default()
                },
                seed,
            );
            beam.run(&layers, &target, 10)
        };
        let (a_cfg, a_cost) = run(21);
        let (b_cfg, b_cost) = run(21);
        assert_eq!(a_cfg, b_cfg);
        assert_eq!(a_cost.to_bits(), b_cost.to_bits());
        // Different seeds explore differently (overwhelmingly likely).
        let (_, c_cost) = run(22);
        let _ = c_cost;
    }

    #[test]
    fn seeded_run_never_loses_to_its_seed() {
        let layers = layers();
        let target = FpgaTarget::zc706();
        let space = SearchSpace::default();
        // A deliberately poor seed: every knob at option 0.
        let sizes = space.knob_sizes(2, layers.len());
        let seed_vec = vec![0usize; sizes.len()];
        let mut beam = BeamSearch::new(
            BeamConfig {
                num_chunks: 2,
                width: 8,
                ..BeamConfig::default()
            },
            3,
        );
        let seed_cost = {
            let mut model = CachedCostModel::new(8);
            model.begin(&space, 2, &layers, &target, &CostWeights::default());
            model.cost_choices(&seed_vec)
        };
        let (best, cost) = beam.run_from(&[seed_vec], &layers, &target, 8);
        assert!(cost <= seed_cost, "{cost} must not exceed seed {seed_cost}");
        assert!(best.assignment_contiguous());
        assert!(best.assignment_valid());
    }

    #[test]
    fn beam_competes_with_random_search_on_equal_budget() {
        let layers = layers();
        let target = FpgaTarget::zc706();
        let mut beam = BeamSearch::new(
            BeamConfig {
                num_chunks: 2,
                width: 12,
                mutations_per_parent: 8,
                ..BeamConfig::default()
            },
            5,
        );
        let (_, beam_cost) = beam.run(&layers, &target, 12);
        let mut random = RandomSearch::new(
            SearchSpace::default(),
            2,
            CostWeights::default(),
            5,
        );
        let (_, rand_cost) = random.run(&layers, &target, 200);
        // Guided local moves should at least keep pace with blind
        // sampling at a comparable evaluation budget.
        assert!(
            beam_cost <= rand_cost * 1.1,
            "beam {beam_cost} vs random {rand_cost}"
        );
    }

    #[test]
    fn repeat_runs_hit_the_cache() {
        let layers = layers();
        let target = FpgaTarget::zc706();
        let mut beam = BeamSearch::new(
            BeamConfig {
                space: tiny_space(),
                num_chunks: 1,
                width: 4,
                mutations_per_parent: 4,
                ..BeamConfig::default()
            },
            9,
        );
        let (first, first_cost) = beam.run(&layers, &target, 6);
        let hits_before = beam.cache_stats().hits;
        // Same context: the second run re-visits mostly-cached territory.
        let (second, second_cost) = beam.run(&layers, &target, 6);
        assert!(beam.cache_stats().hits > hits_before);
        // Both runs search the same space; costs must be comparable and
        // the later run (warm RNG, warm cache) must not regress the
        // incumbent's class.
        assert!(first_cost > 0.0 && second_cost > 0.0);
        assert!(first.assignment_valid() && second.assignment_valid());
    }
}
