//! Property-based tests over the whole game roster: every environment
//! must satisfy the `Environment` contract under arbitrary action
//! sequences and seeds.

use a3cs_envs::wrappers::{ClipReward, EpisodeLimit, FrameStack, NoopStart};
use a3cs_envs::{game_names, make_env};
use proptest::prelude::*;

fn arbitrary_game() -> impl Strategy<Value = &'static str> {
    prop::sample::select(game_names())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn observations_stay_in_unit_range(
        game in arbitrary_game(),
        seed in 0u64..1000,
        actions in prop::collection::vec(0usize..3, 1..60),
    ) {
        let mut env = make_env(game, seed).expect("known game");
        let obs = env.reset();
        prop_assert_eq!(obs.len(), env.observation_len());
        let n_actions = env.action_count();
        for &a in &actions {
            let out = env.step(a % n_actions);
            prop_assert_eq!(out.observation.len(), env.observation_len());
            prop_assert!(out.observation.iter().all(|v| (0.0..=1.0).contains(v)),
                "{game}: observation out of range");
            prop_assert!(out.reward.is_finite(), "{game}: non-finite reward");
            if out.done {
                env.reset();
            }
        }
    }

    #[test]
    fn same_seed_same_trajectory(
        game in arbitrary_game(),
        seed in 0u64..500,
        actions in prop::collection::vec(0usize..3, 1..40),
    ) {
        let mut a = make_env(game, seed).expect("known game");
        let mut b = make_env(game, seed).expect("known game");
        prop_assert_eq!(a.reset(), b.reset());
        let n = a.action_count();
        for &act in &actions {
            let oa = a.step(act % n);
            let ob = b.step(act % n);
            prop_assert_eq!(&oa, &ob, "{} diverged", game);
            if oa.done {
                prop_assert_eq!(a.reset(), b.reset());
            }
        }
    }

    #[test]
    fn clip_reward_bounds_all_games(
        game in arbitrary_game(),
        seed in 0u64..200,
        actions in prop::collection::vec(0usize..4, 1..50),
    ) {
        let mut env = ClipReward::new(make_env(game, seed).expect("known game"));
        use a3cs_envs::Environment;
        let _ = env.reset();
        let n = env.action_count();
        for &a in &actions {
            let out = env.step(a % n);
            prop_assert!([-1.0, 0.0, 1.0].contains(&out.reward));
            if out.done {
                env.reset();
            }
        }
    }

    #[test]
    fn frame_stack_observation_length_scales(
        game in arbitrary_game(),
        k in 1usize..5,
    ) {
        use a3cs_envs::Environment;
        let base = make_env(game, 0).expect("known game");
        let base_len = base.observation_len();
        let mut stacked = FrameStack::new(base, k);
        prop_assert_eq!(stacked.reset().len(), base_len * k);
    }

    #[test]
    fn episode_limit_is_respected(
        game in arbitrary_game(),
        cap in 1usize..30,
    ) {
        use a3cs_envs::Environment;
        let mut env = EpisodeLimit::new(make_env(game, 3).expect("known game"), cap);
        let _ = env.reset();
        let mut steps = 0;
        loop {
            steps += 1;
            if env.step(0).done {
                break;
            }
            prop_assert!(steps <= cap, "{game}: exceeded the cap");
        }
        prop_assert!(steps <= cap);
    }

    #[test]
    fn noop_start_never_exceeds_budget(
        game in arbitrary_game(),
        max_noops in 0usize..12,
        seed in 0u64..100,
    ) {
        use a3cs_envs::Environment;
        // NoopStart must always return a valid observation even when the
        // noops end an episode internally.
        let mut env = NoopStart::new(make_env(game, seed).expect("known game"), max_noops, seed);
        let obs = env.reset();
        prop_assert_eq!(obs.len(), env.observation_len());
    }
}
