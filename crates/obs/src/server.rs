//! The exposition service: a zero-dependency HTTP responder over
//! `std::net::TcpListener` serving `/metrics`, `/healthz` and `/fleet`.
//!
//! Consistency model (DESIGN.md §16): the run loop owns an
//! [`ObsPublisher`] and, at each tick boundary, renders the tick's
//! [`ObsSnapshot`] into the three response bodies and swaps them into a
//! mutex-guarded cell. The server thread only ever *reads* (clones) those
//! prerendered strings — it never touches telemetry, the fleet, or any
//! search state — so attaching a server cannot perturb a run: the
//! observe-only guarantee (observed == unobserved, bit-for-bit) holds by
//! construction and is asserted end-to-end by `tests/obs.rs` and the
//! `obs_smoke` gate.
//!
//! The single `thread::Builder` spawn below is the crate's only OS thread
//! and is confined behind a justified `a3cs::allow(thread-spawn)` waiver:
//! it performs no search work, only socket I/O over immutable strings.

use crate::expo::{render_health, render_prometheus};
use crate::rollup::{Aggregator, ObsSnapshot};
use a3cs_core::{GuardedRun, RobustnessLog};
use a3cs_fleet::{Fleet, FleetReport, SessionId, SessionReport, SessionState, TickObserver};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::Duration;

/// Response bodies prerendered by the publisher; the server thread only
/// clones them.
#[derive(Default)]
struct Published {
    ready: bool,
    metrics_text: String,
    health_json: String,
    fleet_json: String,
}

struct Shared {
    published: Mutex<Published>,
    shutdown: AtomicBool,
}

impl Shared {
    fn lock(&self) -> std::sync::MutexGuard<'_, Published> {
        // A panic while holding this lock can only come from String clone
        // OOM; recovering the guard keeps the server serving either way.
        self.published.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Handle to the running exposition service. Dropping (or calling
/// [`ObsServer::shutdown`]) stops the accept loop and joins the thread.
pub struct ObsServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    handle: Option<thread::JoinHandle<()>>,
}

impl ObsServer {
    /// Bind `127.0.0.1:0` (ephemeral port) and start the server thread.
    ///
    /// # Errors
    ///
    /// Propagates socket bind/clone and thread-spawn failures.
    pub fn bind_ephemeral() -> io::Result<ObsServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            published: Mutex::new(Published::default()),
            shutdown: AtomicBool::new(false),
        });
        let thread_shared = Arc::clone(&shared);
        // a3cs::allow(thread-spawn): the exposition server is observe-only
        // — it serves prerendered strings over sockets and never executes
        // search work, so it cannot interact with the deterministic pool's
        // chunking or reduction order.
        let handle = thread::Builder::new()
            .name("a3cs-obs".to_string())
            .spawn(move || serve(&listener, &thread_shared))?;
        Ok(ObsServer {
            shared,
            addr,
            handle: Some(handle),
        })
    }

    /// The bound address (ephemeral port chosen by the OS).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A publisher feeding this server, with rolling windows of
    /// `window` publishes.
    #[must_use]
    pub fn publisher(&self, window: usize) -> ObsPublisher {
        ObsPublisher {
            shared: Arc::clone(&self.shared),
            agg: Aggregator::new(window),
        }
    }

    /// Stop accepting, wake the accept loop and join the server thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Self-connect so the blocking `accept` observes the flag.
        if let Ok(stream) = TcpStream::connect(self.addr) {
            drop(stream);
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop();
        }
    }
}

/// Tick-boundary publisher: aggregates, renders, and swaps the response
/// bodies the server thread serves. Implements [`TickObserver`], so it
/// can be attached to a [`Fleet`] directly.
pub struct ObsPublisher {
    shared: Arc<Shared>,
    agg: Aggregator,
}

impl ObsPublisher {
    /// Aggregate `report` plus the current telemetry state into a
    /// snapshot and publish it as the served `/metrics`, `/healthz` and
    /// `/fleet` bodies.
    pub fn publish_report(&mut self, report: &FleetReport) {
        let snapshot = self.agg.publish(report);
        let metrics_text = render_prometheus(&snapshot);
        let (_, health_json) = render_health(Some(&snapshot));
        let fleet_json = report.to_json();
        let mut cell = self.shared.lock();
        cell.ready = true;
        cell.metrics_text = metrics_text;
        cell.health_json = health_json;
        cell.fleet_json = fleet_json;
    }

    /// Publish a solo (non-fleet) run through the same path, mirrored as
    /// a single-session [`FleetReport`] (see [`solo_report`]). Hook this
    /// into [`a3cs_core::CoSearch::run_guarded_observed`].
    pub fn publish_solo(&mut self, name: &str, run: &GuardedRun) {
        let report = solo_report(name, run);
        self.publish_report(&report);
    }

    /// Publishes performed so far.
    #[must_use]
    pub fn publishes(&self) -> u64 {
        self.agg.publishes()
    }

    /// The last snapshot's aggregation state, for inspection in tests.
    #[must_use]
    pub fn aggregator(&self) -> &Aggregator {
        &self.agg
    }

    /// Aggregate without serving (headless mode), returning the snapshot.
    pub fn aggregate_only(&mut self, report: &FleetReport) -> ObsSnapshot {
        self.agg.publish(report)
    }
}

impl TickObserver for ObsPublisher {
    fn on_tick(&mut self, fleet: &Fleet<'_>) {
        self.publish_report(&fleet.report_snapshot());
    }
}

/// Mirror a solo [`GuardedRun`] as a single-session [`FleetReport`]:
/// session id 0, state `running` (solo observation stops before
/// `finish`), `ticks` carrying the outer-loop iteration and a pool budget
/// of 0 (no fleet pool).
#[must_use]
pub fn solo_report(name: &str, run: &GuardedRun) -> FleetReport {
    let robustness = run.robustness().clone();
    let mut event_totals: BTreeMap<String, usize> = BTreeMap::new();
    for event in &robustness.events {
        *event_totals.entry(event.kind.label().to_string()).or_insert(0) += 1;
    }
    FleetReport {
        sessions: vec![SessionReport {
            id: SessionId::new(0),
            name: name.to_string(),
            state: SessionState::Running,
            steps: run.steps(),
            restarts: 0,
            result: None,
            robustness,
            fleet_events: RobustnessLog::new(),
            checkpoint_bytes_written: run.checkpoint_bytes_written(),
            checkpoint_restores: run.checkpoint_restores(),
            checkpoint_delta_frames: run.checkpoint_delta_frames(),
            checkpoint_quarantined: run.checkpoint_quarantined(),
        }],
        ticks: run.iteration(),
        pool_budget: 0,
        total_faults: 0,
        event_totals,
    }
}

fn serve(listener: &TcpListener, shared: &Shared) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(mut stream) = conn else { continue };
        let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
        handle_connection(&mut stream, shared);
    }
}

/// Read the request head (request line + headers, up to 8 KiB), route it,
/// and write exactly one response. Any parse problem gets a 400.
fn handle_connection(stream: &mut TcpStream, shared: &Shared) {
    let mut buf = [0u8; 8192];
    let mut used = 0usize;
    let head_end = loop {
        match stream.read(&mut buf[used..]) {
            Ok(0) => break None,
            Ok(n) => {
                used += n;
                if let Some(pos) = find_head_end(&buf[..used]) {
                    break Some(pos);
                }
                if used == buf.len() {
                    break None;
                }
            }
            Err(_) => break None,
        }
    };
    let Some(head_end) = head_end else {
        write_response(stream, 400, "Bad Request", "text/plain; charset=utf-8", "bad request\n");
        return;
    };
    let head = String::from_utf8_lossy(&buf[..head_end]);
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        write_response(
            stream,
            405,
            "Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n",
        );
        return;
    }
    let (ready, metrics, health, fleet) = {
        let cell = shared.lock();
        (
            cell.ready,
            cell.metrics_text.clone(),
            cell.health_json.clone(),
            cell.fleet_json.clone(),
        )
    };
    match path {
        "/metrics" => {
            if ready {
                write_response(
                    stream,
                    200,
                    "OK",
                    "text/plain; version=0.0.4; charset=utf-8",
                    &metrics,
                );
            } else {
                write_response(
                    stream,
                    503,
                    "Service Unavailable",
                    "text/plain; charset=utf-8",
                    "no snapshot published yet\n",
                );
            }
        }
        "/healthz" => {
            if ready {
                write_response(stream, 200, "OK", "application/json", &health);
            } else {
                let (_, body) = render_health(None);
                write_response(stream, 503, "Service Unavailable", "application/json", &body);
            }
        }
        "/fleet" => {
            if ready {
                write_response(stream, 200, "OK", "application/json", &fleet);
            } else {
                write_response(
                    stream,
                    503,
                    "Service Unavailable",
                    "application/json",
                    "{\"ready\":false}",
                );
            }
        }
        _ => write_response(
            stream,
            404,
            "Not Found",
            "text/plain; charset=utf-8",
            "unknown path; try /metrics, /healthz or /fleet\n",
        ),
    }
}

/// Position just past the `\r\n\r\n` (or `\n\n`) ending the request head.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|p| p + 2))
}

fn write_response(stream: &mut TcpStream, code: u16, reason: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    // Best-effort: a hung-up client is the client's problem, never ours.
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_detection_handles_both_line_endings() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\n"), Some(18));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\n\n"), Some(16));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
    }

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let req = format!("GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n");
        stream.write_all(req.as_bytes()).expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let code: u16 = response
            .split(' ')
            .nth(1)
            .and_then(|c| c.parse().ok())
            .expect("status code");
        let body = response
            .split("\r\n\r\n")
            .nth(1)
            .unwrap_or_default()
            .to_string();
        (code, body)
    }

    #[test]
    fn server_routes_and_lifecycle() {
        let server = ObsServer::bind_ephemeral().expect("bind");
        let addr = server.addr();

        let (code, _) = get(addr, "/metrics");
        assert_eq!(code, 503, "unready before the first publish");
        let (code, body) = get(addr, "/healthz");
        assert_eq!(code, 503);
        assert_eq!(body, "{\"ready\":false}");

        let mut publisher = server.publisher(8);
        let report = FleetReport {
            sessions: Vec::new(),
            ticks: 5,
            pool_budget: 2,
            total_faults: 0,
            event_totals: BTreeMap::new(),
        };
        publisher.publish_report(&report);

        let (code, body) = get(addr, "/metrics");
        assert_eq!(code, 200);
        assert!(body.starts_with("# HELP a3cs_obs_publishes_total"));
        assert!(body.contains("\na3cs_fleet_ticks 5\n"));
        let (code, body) = get(addr, "/healthz");
        assert_eq!(code, 200);
        assert!(body.starts_with("{\"ready\":true,"));
        let (code, body) = get(addr, "/fleet");
        assert_eq!(code, 200);
        assert_eq!(body, report.to_json());

        let (code, _) = get(addr, "/nope");
        assert_eq!(code, 404);

        // shutdown joins the server thread; returning at all proves the
        // accept loop observed the flag and exited.
        server.shutdown();
    }
}
