//! The architecture distribution `α`: one logit vector per searchable cell.

use crate::gumbel::softmax_vec;
use a3cs_nn::Param;
use a3cs_tensor::Tensor;

/// The architecture parameters `α` of Eq. 4: a learnable logit vector over
/// candidate operators for each cell. Stored as [`Param`]s so the same
/// optimiser machinery used for network weights applies.
#[derive(Clone)]
pub struct ArchParams {
    cells: Vec<Param>,
    num_ops: usize,
}

impl std::fmt::Debug for ArchParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ArchParams({} cells x {} ops, argmax={:?})",
            self.cells.len(),
            self.num_ops,
            self.argmax()
        )
    }
}

impl ArchParams {
    /// Uniform (all-zero logits) architecture distribution.
    ///
    /// # Panics
    ///
    /// Panics if `num_cells` or `num_ops` is zero.
    #[must_use]
    pub fn new(num_cells: usize, num_ops: usize) -> Self {
        assert!(num_cells > 0 && num_ops > 0, "empty architecture space");
        let cells = (0..num_cells)
            .map(|i| Param::new(&format!("alpha.cell{i}"), Tensor::zeros(&[num_ops])))
            .collect();
        ArchParams { cells, num_ops }
    }

    /// Number of cells.
    #[must_use]
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of operator choices per cell.
    #[must_use]
    pub fn num_ops(&self) -> usize {
        self.num_ops
    }

    /// The underlying parameters (for the architecture optimiser).
    #[must_use]
    pub fn params(&self) -> Vec<Param> {
        self.cells.clone()
    }

    /// The `Param` of one cell.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    #[must_use]
    pub fn cell(&self, cell: usize) -> &Param {
        &self.cells[cell]
    }

    /// Current logits of one cell.
    #[must_use]
    pub fn logits(&self, cell: usize) -> Vec<f32> {
        self.cells[cell].value().into_vec()
    }

    /// Softmax probabilities of one cell (no Gumbel noise, τ = 1).
    #[must_use]
    pub fn probs(&self, cell: usize) -> Tensor {
        softmax_vec(&self.logits(cell))
    }

    /// Most likely operator index per cell (the derivation rule of Alg. 1:
    /// "derive the final agent with the highest α").
    #[must_use]
    pub fn argmax(&self) -> Vec<usize> {
        self.cells
            .iter()
            .map(|p| p.value().argmax())
            .collect()
    }

    /// Mean Shannon entropy (nats) of the per-cell distributions — a
    /// convergence diagnostic: it decreases as the search commits.
    #[must_use]
    pub fn mean_entropy(&self) -> f32 {
        let total: f32 = (0..self.cells.len())
            .map(|c| {
                self.probs(c)
                    .data()
                    .iter()
                    .map(|&p| if p > 0.0 { -p * p.ln() } else { 0.0 })
                    .sum::<f32>()
            })
            .sum();
        total / self.cells.len() as f32
    }

    /// Zero all accumulated `α` gradients.
    pub fn zero_grad(&self) {
        for p in &self.cells {
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_uniform() {
        let arch = ArchParams::new(4, 9);
        let p = arch.probs(0);
        for &v in p.data() {
            assert!((v - 1.0 / 9.0).abs() < 1e-6);
        }
        // Uniform over 9 ops: entropy = ln 9.
        assert!((arch.mean_entropy() - 9.0f32.ln()).abs() < 1e-4);
    }

    #[test]
    fn argmax_follows_logits() {
        let arch = ArchParams::new(3, 5);
        arch.cell(1).update(|t| t.data_mut()[3] = 2.0);
        assert_eq!(arch.argmax(), vec![0, 3, 0]);
    }

    #[test]
    fn entropy_decreases_as_distribution_sharpens() {
        let arch = ArchParams::new(2, 4);
        let before = arch.mean_entropy();
        arch.cell(0).update(|t| t.data_mut()[0] = 5.0);
        arch.cell(1).update(|t| t.data_mut()[2] = 5.0);
        assert!(arch.mean_entropy() < before);
    }

    #[test]
    fn params_share_storage_with_cells() {
        let arch = ArchParams::new(2, 3);
        let params = arch.params();
        params[0].update(|t| t.data_mut()[1] = 9.0);
        assert_eq!(arch.argmax()[0], 1);
    }
}
