//! Accelerator template, analytical performance predictor and the
//! Differentiable Accelerator Search (DAS) engine — the hardware half of
//! A3C-S (paper Section IV-A).
//!
//! The paper's accelerator is a chunk-based pipelined micro-architecture
//! (after Shen et al., ISCA'17): several sub-accelerators ("chunks"), each
//! with its own PE array, network-on-chip, buffer hierarchy and dataflow,
//! executing an assigned subset of layers; chunks form a pipeline so
//! throughput is set by the slowest chunk. During search, performance is
//! estimated with an analytical predictor in the style of DNN-Chip
//! Predictor / AutoDNNchip — which is also this reproduction's stand-in
//! for the Vivado HLS + ZC706 measurement flow (see `DESIGN.md`).
//!
//! Provided here:
//!
//! - [`AcceleratorConfig`] / [`ChunkConfig`]: the parameterised template
//!   (PE array, NoC, buffer allocation, loop tiling, dataflow, layer
//!   assignment);
//! - [`SearchSpace`]: the discrete knob space (> 10²⁷ joint choices at
//!   paper scale — see [`SearchSpace::cardinality`]);
//! - [`PerfModel`]: cycle/resource/energy estimation against an FPGA
//!   target ([`FpgaTarget::zc706`], 900 DSPs);
//! - [`DasEngine`]: Gumbel-Softmax search over the knobs (Eq. 9);
//! - [`DnnBuilderModel`]: the DNNBuilder-style baseline accelerator
//!   generator used in Fig. 3;
//! - [`RandomSearch`]: a uniform-sampling baseline for ablations;
//! - [`CachedCostModel`]: a transposition-table cost cache fronting the
//!   predictor (bit-identical to direct evaluation), with per-chunk
//!   partial memoization;
//! - [`BeamSearch`]: deterministic beam search over the space, built on
//!   the cache (single-knob mutations + assignment-boundary shifts).
//!
//! # Example
//!
//! ```
//! use a3cs_accel::{DasEngine, DasConfig, FpgaTarget, PerfModel};
//! use a3cs_nn::{resnet};
//!
//! let net = resnet(14, 4, 12, 12, 8, 64, 0);
//! let layers = net.layer_descs();
//! let target = FpgaTarget::zc706();
//! let mut das = DasEngine::new(DasConfig::default(), 7);
//! let best = das.run(&layers, &target, 60);
//! let report = PerfModel::evaluate(&best, &layers, &target);
//! assert!(report.fps > 0.0);
//! ```

#![deny(missing_docs)]

mod beam;
mod das;
mod dnnbuilder;
mod exhaustive;
mod memo;
mod predictor;
mod random_search;
mod space;
mod template;
mod zc706;

pub use beam::{BeamConfig, BeamSearch};
pub use das::{DasConfig, DasEngine, DasState, DasStateError};
pub use dnnbuilder::DnnBuilderModel;
pub use exhaustive::{tiny_space, ExhaustiveSearch};
pub use memo::{CachedCostModel, CostModel, DirectCost, KeyHasher, MemoStats};
pub use predictor::{ChunkPartial, CostWeights, LayerDims, PerfModel, PerfReport};
pub use random_search::RandomSearch;
pub use space::{SearchSpace, SpaceError};
pub use template::{
    AcceleratorConfig, BufferAlloc, ChunkConfig, Dataflow, NocTopology, PeArray, Tiling,
};
pub use zc706::FpgaTarget;
