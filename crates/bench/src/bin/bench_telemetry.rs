//! Telemetry overhead baseline: the same GEMM workload timed with the
//! global telemetry sink disabled and enabled. The instrumentation on the
//! kernel hot path is a handful of relaxed atomic adds per GEMM call, so
//! the enabled leg must stay within 3% of the disabled one.
//!
//! Emits `BENCH_telemetry.json` in the working directory.
//!
//! ```sh
//! cargo run --release -p a3cs-bench --bin bench_telemetry
//! ```

use a3cs_bench::report::{status, warn};
use a3cs_tensor::{matmul, Tensor};
use serde::Serialize;
use std::time::Instant;

/// Square GEMM dimension; big enough that one call does real work, small
/// enough that many calls fit in a rep (per-call overhead is what we meter).
const DIM: usize = 64;
/// GEMM calls per timed rep.
const CALLS: usize = 200;
/// Timed repetitions per leg (best-of, after one warm-up rep).
const REPS: usize = 7;
/// Acceptance bound on (enabled - disabled) / disabled.
const MAX_OVERHEAD: f64 = 0.03;

#[derive(Serialize)]
struct Baseline {
    dim: usize,
    calls_per_rep: usize,
    reps: usize,
    disabled_ms: f64,
    enabled_ms: f64,
    overhead: f64,
    gemm_calls_counted: u64,
    gemm_macs_counted: u64,
}

/// One rep: `CALLS` chained matmuls. Returns a checksum so the optimiser
/// cannot discard the work.
fn rep(a: &Tensor, b: &Tensor) -> f32 {
    let mut acc = 0.0f32;
    for _ in 0..CALLS {
        let c = matmul(a, b);
        acc += c.data()[0];
    }
    acc
}

/// Best-of-[`REPS`] wall time of `rep` in milliseconds (one warm-up first).
fn best_ms(a: &Tensor, b: &Tensor, sink: &mut f32) -> f64 {
    *sink += rep(a, b);
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        *sink += rep(a, b);
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    let a = Tensor::randn(&[DIM, DIM], 0.5, 1);
    let b = Tensor::randn(&[DIM, DIM], 0.5, 2);
    let mut sink = 0.0f32;

    status(format!(
        "telemetry overhead baseline: {CALLS}x {DIM}x{DIM} GEMM per rep, best of {REPS}\n"
    ));

    let disabled_ms = best_ms(&a, &b, &mut sink);

    let session = telemetry::Session::start();
    let enabled_ms = best_ms(&a, &b, &mut sink);
    let trace = session.finish();
    let gemm_calls = trace.metrics.counter("gemm.calls");
    let gemm_macs = trace.metrics.counter("gemm.macs");

    let overhead = (enabled_ms - disabled_ms) / disabled_ms;
    status(format!(
        "disabled {disabled_ms:8.2} ms   enabled {enabled_ms:8.2} ms   overhead {:+.2}%   (checksum {sink:e})",
        overhead * 100.0
    ));
    status(format!(
        "counted during enabled leg: {gemm_calls} GEMM calls, {gemm_macs} MACs"
    ));

    let baseline = Baseline {
        dim: DIM,
        calls_per_rep: CALLS,
        reps: REPS,
        disabled_ms,
        enabled_ms,
        overhead,
        gemm_calls_counted: gemm_calls,
        gemm_macs_counted: gemm_macs,
    };
    match serde_json::to_string_pretty(&baseline) {
        Ok(json) => {
            if let Err(e) = std::fs::write("BENCH_telemetry.json", json + "\n") {
                warn(format!("cannot write BENCH_telemetry.json: {e}"));
            } else {
                status("\n(baseline written to BENCH_telemetry.json)");
            }
        }
        Err(e) => warn(format!("cannot serialise baseline: {e}")),
    }

    assert!(
        gemm_calls >= (CALLS * REPS) as u64,
        "enabled leg did not count its GEMM calls: {gemm_calls}"
    );
    assert!(
        overhead < MAX_OVERHEAD,
        "telemetry overhead {:.2}% exceeds the {:.0}% budget",
        overhead * 100.0,
        MAX_OVERHEAD * 100.0
    );
}
