//! Cross-crate integration tests: the full stack working together.

use a3cs::accel::{DasConfig, DasEngine, DnnBuilderModel, FpgaTarget, PerfModel};
use a3cs::core::{CoSearch, CoSearchConfig, SearchScheme};
use a3cs::drl::{
    evaluate, ActorCritic, DistillConfig, EvalProtocol, Trainer, TrainerConfig,
};
use a3cs::envs::{game_names, make_env, Environment};
use a3cs::nas::{derive_backbone, search_space_size, SuperNet, SupernetConfig, ALL_OPS};
use a3cs::nn::{resnet, vanilla};

fn breakout(seed: u64) -> Box<dyn Environment> {
    make_env("Breakout", seed).expect("Breakout exists")
}

#[test]
fn every_game_trains_one_update_with_every_backbone_family() {
    for name in game_names() {
        let mut probe = make_env(name, 0).expect("game constructs");
        let (p, h, w) = probe.observation_shape();
        let actions = probe.action_count();
        let _ = probe.reset();
        for backbone in [vanilla(p, h, w, 16, 1), resnet(14, p, h, w, 4, 16, 1)] {
            let agent = ActorCritic::new(Box::new(backbone), 16, (p, h, w), actions, 2);
            let cfg = TrainerConfig {
                total_steps: 40,
                eval_every: 40,
                eval_episodes: 1,
                eval_max_steps: 20,
                n_envs: 2,
                ..TrainerConfig::default()
            };
            let factory = move |seed: u64| make_env(name, seed).expect("game constructs");
            let curve = Trainer::new(cfg, 3).train(&agent, &factory, None);
            assert!(curve.final_stats.total.is_finite(), "{name}");
        }
    }
}

#[test]
fn derived_architecture_flows_into_accelerator_design() {
    // NAS output -> nn backbone -> layer descs -> DAS -> predictor.
    let cfg = SupernetConfig::tiny(3, 12, 12);
    let sn = SuperNet::new(cfg, 1);
    let arch = sn.most_likely_arch();
    let backbone = derive_backbone(&cfg, &arch, 2);
    let layers = backbone.layer_descs();
    assert!(!layers.is_empty());

    let target = FpgaTarget::zc706();
    let mut das = DasEngine::new(DasConfig::default(), 3);
    let accel = das.run(&layers, &target, 150);
    let report = PerfModel::evaluate(&accel, &layers, &target);
    assert!(report.fps > 0.0 && report.fps.is_finite());

    // The same layers evaluate under the baseline generator too.
    let baseline = DnnBuilderModel::design(&layers, &target);
    let baseline_report = PerfModel::evaluate(&baseline, &layers, &target);
    assert!(baseline_report.fps > 0.0);
}

#[test]
fn full_cosearch_then_retrain_round_trip() {
    let mut config = CoSearchConfig::tiny(3, 12, 12, 3);
    config.total_steps = 400;
    config.eval_every = 400;
    config.eval_episodes = 2;
    config.eval_max_steps = 40;
    let mut search = CoSearch::try_new(config, 5).expect("tiny config passes pre-flight");
    let result = search.run(&breakout, None);

    // Derived agent retrains on the same game.
    let derived = derive_backbone(search.supernet().config(), &result.arch, 6);
    let feat = derived.feat_dim();
    let agent = ActorCritic::new(Box::new(derived), feat, (3, 12, 12), 3, 6);
    let cfg = TrainerConfig {
        total_steps: 100,
        eval_every: 100,
        eval_episodes: 1,
        eval_max_steps: 30,
        ..TrainerConfig::default()
    };
    let curve = Trainer::new(cfg, 7).train(&agent, &breakout, None);
    assert!(curve.final_score().is_finite());
    assert!(result.report.fps > 0.0);
}

#[test]
fn teacher_student_distillation_across_backbones() {
    // Teacher: ResNet-20 (paper's choice); student: vanilla.
    let teacher_bb = resnet(20, 3, 12, 12, 4, 16, 8);
    let teacher = ActorCritic::new(Box::new(teacher_bb), 16, (3, 12, 12), 3, 8);
    let student_bb = vanilla(3, 12, 12, 16, 9);
    let student = ActorCritic::new(Box::new(student_bb), 16, (3, 12, 12), 3, 9);
    let cfg = TrainerConfig {
        total_steps: 120,
        eval_every: 120,
        eval_episodes: 1,
        eval_max_steps: 30,
        ..TrainerConfig::default()
    };
    let curve = Trainer::new(cfg, 10).train(
        &student,
        &breakout,
        Some((&DistillConfig::ac_distillation(), &teacher)),
    );
    assert!(curve.final_stats.actor_distill > 0.0);
    assert!(curve.final_stats.critic_distill >= 0.0);
}

#[test]
fn all_three_search_schemes_complete() {
    for scheme in [
        SearchScheme::OneLevel,
        SearchScheme::BiLevel,
        SearchScheme::DirectNas,
    ] {
        let mut config = CoSearchConfig::tiny(3, 12, 12, 3);
        config.total_steps = 200;
        config.eval_every = 200;
        config.eval_episodes = 1;
        config.eval_max_steps = 30;
        config.scheme = scheme;
        let result = CoSearch::try_new(config, 11)
            .expect("tiny config passes pre-flight")
            .run(&breakout, None);
        assert_eq!(result.arch.len(), 6, "{scheme:?}");
        assert!(result.report.fps > 0.0, "{scheme:?}");
    }
}

#[test]
fn joint_search_space_matches_paper_scale_claim() {
    // Network space: 9^12; accelerator space: > 10^27 at paper scale.
    let net_space = search_space_size(ALL_OPS.len(), 12);
    assert!(net_space > 1e11);
    let cfg = DasConfig::default();
    let accel_log10 = cfg.space.log10_cardinality(cfg.num_chunks, 20);
    assert!(accel_log10 > 27.0);
    // Joint space dwarfs both.
    assert!(net_space.log10() + accel_log10 > 38.0);
}

#[test]
fn checkpoints_transfer_trained_behaviour_between_processes() {
    use a3cs::drl::Checkpoint;
    // Train briefly, checkpoint to disk, restore into a fresh agent, and
    // verify the policies coincide (the teacher-caching path of the
    // experiment harnesses).
    let make_agent = |seed: u64| {
        let backbone = vanilla(3, 12, 12, 16, seed);
        ActorCritic::new(Box::new(backbone), 16, (3, 12, 12), 3, seed)
    };
    let trained = make_agent(77);
    let cfg = TrainerConfig {
        total_steps: 200,
        eval_every: 200,
        eval_episodes: 1,
        eval_max_steps: 30,
        ..TrainerConfig::default()
    };
    let _ = Trainer::new(cfg, 1).train(&trained, &breakout, None);

    let dir = std::env::temp_dir().join("a3cs_integration_ckpt");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("teacher.json");
    Checkpoint::capture(&trained).save(&path).expect("save");

    let restored = make_agent(77);
    Checkpoint::load(&path)
        .expect("load")
        .apply(&restored)
        .expect("apply");
    let obs = vec![0.25; 3 * 12 * 12];
    assert_eq!(
        trained.policy_probs(&obs, 1),
        restored.policy_probs(&obs, 1)
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn supernet_agent_evaluates_like_any_agent() {
    let cfg = SupernetConfig::tiny(3, 12, 12);
    let sn = std::rc::Rc::new(SuperNet::new(cfg, 12));
    let agent = ActorCritic::new(Box::new(sn), cfg.feat_dim, (3, 12, 12), 3, 12);
    let protocol = EvalProtocol {
        episodes: 2,
        max_steps: 30,
        ..EvalProtocol::default()
    };
    let score = evaluate(&agent, &breakout, &protocol);
    assert!(score.is_finite());
}
