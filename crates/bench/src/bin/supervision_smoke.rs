//! Supervised-execution end-to-end smoke check: run a tiny co-search with
//! one armed worker panic and one injected stall, and validate that the
//! supervision layer contained both *in-process* — the lane was
//! quarantined and respawned, the watchdog flagged the overrun, the
//! robustness log mirrored live telemetry instants, and the final result
//! is bit-identical to an undisturbed run. Exits nonzero on any failure,
//! so `scripts/check.sh` can use it as a gate.
//!
//! ```sh
//! cargo run --release -p a3cs-bench --bin supervision_smoke
//! ```

use a3cs_bench::report::{or_exit, status, warn};
use a3cs_core::{
    CoSearch, CoSearchConfig, CoSearchResult, FaultPlan, RobustnessEventKind,
};
use a3cs_envs::{Breakout, Environment};

fn factory(seed: u64) -> Box<dyn Environment> {
    Box::new(Breakout::new(seed))
}

fn fail(problems: &[String]) -> ! {
    for p in problems {
        warn(p);
    }
    std::process::exit(1);
}

fn tiny_config() -> CoSearchConfig {
    let mut cfg = CoSearchConfig::tiny(3, 12, 12, 3);
    cfg.total_steps = 300;
    cfg.eval_every = 100;
    cfg.eval_episodes = 2;
    cfg.eval_max_steps = 40;
    cfg.das_final_iters = 50;
    cfg
}

fn curve_bits(curve: &[(u64, f32)]) -> Vec<(u64, u32)> {
    curve.iter().map(|&(s, v)| (s, v.to_bits())).collect()
}

fn check_bit_identical(a: &CoSearchResult, b: &CoSearchResult, problems: &mut Vec<String>) {
    if format!("{:?}", a.arch) != format!("{:?}", b.arch) {
        problems.push("derived architectures differ".to_owned());
    }
    if format!("{:?}", a.accelerator) != format!("{:?}", b.accelerator) {
        problems.push("accelerator configs differ".to_owned());
    }
    if curve_bits(&a.score_curve) != curve_bits(&b.score_curve) {
        problems.push("score curves differ bit-for-bit".to_owned());
    }
    if curve_bits(&a.alpha_entropy_curve) != curve_bits(&b.alpha_entropy_curve) {
        problems.push("entropy curves differ bit-for-bit".to_owned());
    }
    if a.steps != b.steps {
        problems.push(format!("step counts differ: {} vs {}", a.steps, b.steps));
    }
}

fn main() {
    status("supervision smoke: fault-free reference run\n");
    let reference = or_exit(CoSearch::try_new(tiny_config(), 42)).run(&factory, None);

    // Same seed, but a worker panic armed during the update phase at
    // iteration 3 and a 250 ms stall in the rollout at iteration 6, with
    // an aggressive soft deadline so the watchdog actually fires.
    let mut cfg = tiny_config();
    cfg.threads = Some(2);
    cfg.fault.stall_multiplier = 1;
    cfg.fault.stall_min_ms = 50;
    cfg.fault.plan = FaultPlan::none()
        .worker_panic_at("update", 3)
        .stall_at("rollout", 6, 250);

    // The injected worker panic is expected and contained by the pool's
    // isolation layer; keep its backtrace out of the smoke output while
    // still reporting panics from any other thread.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let thread = std::thread::current();
        if thread.name().is_some_and(|n| n.starts_with("a3cs-pool")) {
            return;
        }
        default_hook(info);
    }));

    status("supervision smoke: same seed with an armed worker panic and a stall\n");
    let session = telemetry::Session::start();
    let supervised = match or_exit(CoSearch::try_new(cfg, 42)).run_guarded(&factory, None) {
        Ok(r) => r,
        Err(e) => {
            let _ = session.finish();
            fail(&[format!("supervised co-search failed: {e}")]);
        }
    };
    let trace = session.finish();

    let mut problems = Vec::new();
    let log = &supervised.robustness;
    for (kind, label) in [
        (RobustnessEventKind::FaultInjected, "both injections logged"),
        (RobustnessEventKind::LaneQuarantined, "panicking lane quarantined"),
        (RobustnessEventKind::WorkerRespawned, "quarantined worker respawned"),
        (RobustnessEventKind::PhaseStalled, "stalled rollout flagged"),
    ] {
        if log.count(kind) == 0 {
            problems.push(format!(
                "expected at least one {:?} event ({label}); log: {:?}",
                kind.label(),
                log.events
            ));
        }
    }
    // Containment, not restart: the supervisor never saw a phase failure
    // and nothing resumed from disk.
    for kind in [
        RobustnessEventKind::PhaseFailed,
        RobustnessEventKind::RetriesExhausted,
        RobustnessEventKind::Resumed,
    ] {
        if log.count(kind) != 0 {
            problems.push(format!(
                "unexpected {:?} event; log: {:?}",
                kind.label(),
                log.events
            ));
        }
    }
    if !trace
        .instants()
        .any(|i| i.name == "watchdog-deadline-exceeded")
    {
        problems.push("watchdog never fired its live deadline instant".to_owned());
    }
    if !trace.instants().any(|i| i.name == "lane-quarantined") {
        problems.push("lane quarantine did not mirror into the live trace".to_owned());
    }
    check_bit_identical(&reference, &supervised, &mut problems);

    if !problems.is_empty() {
        fail(&problems);
    }
    status(format!(
        "ok: {} robustness events, faults contained in-process, result bit-identical\n",
        log.events.len()
    ));
}
