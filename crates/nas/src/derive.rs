//! Deriving the final (fixed) network from a finished search.

use crate::error::NasError;
use crate::ops::{build_op, OpChoice};
use crate::supernet::SupernetConfig;
use a3cs_nn::{
    Backbone, BatchNorm2d, Conv2d, FeatureShape, GlobalAvgPool, Linear, Relu, Sequential,
};

/// Materialise `choices` (one operator per cell) as a standalone
/// [`Backbone`] with fresh weights, following Alg. 1's final step
/// ("derive the final agent with the highest α").
///
/// The derived network keeps the supernet's stem, cell plan and head; only
/// the per-cell operator varies.
///
/// # Errors
///
/// [`NasError::InvalidCellCount`] when the configuration has no valid cell
/// plan; [`NasError::ChoiceArityMismatch`] when `choices.len()` does not
/// equal the configured cell count.
pub fn try_derive_backbone(
    config: &SupernetConfig,
    choices: &[OpChoice],
    seed: u64,
) -> Result<Backbone, NasError> {
    let plan = config.try_cell_plan()?;
    if choices.len() != plan.len() {
        return Err(NasError::ChoiceArityMismatch {
            expected: plan.len(),
            actual: choices.len(),
        });
    }
    let mut net = Sequential::new()
        .push(Conv2d::new(
            "a3cs.stem",
            config.in_planes,
            config.base_width,
            3,
            2,
            1,
            false,
            seed,
        ))
        .push(BatchNorm2d::new("a3cs.stem_bn", config.base_width))
        .push(Relu::new());
    for (ci, (&choice, &(in_ch, out_ch, stride))) in choices.iter().zip(plan.iter()).enumerate() {
        net.push_boxed(build_op(
            choice,
            &format!("a3cs.c{ci}.{choice}"),
            in_ch,
            out_ch,
            stride,
            seed.wrapping_add(ci as u64 * 17 + 1),
        ));
    }
    let net = net
        .push(GlobalAvgPool::new())
        .push(Linear::new(
            "a3cs.fc",
            config.head_width(),
            config.feat_dim,
            seed.wrapping_add(911),
        ))
        .push(Relu::new());
    Ok(Backbone::from_parts(
        "A3C-S",
        net,
        FeatureShape::image(config.in_planes, config.height, config.width),
        config.feat_dim,
    ))
}

/// Panicking convenience wrapper around [`try_derive_backbone`].
///
/// # Panics
///
/// Panics if `choices.len()` does not equal the configured cell count or
/// the configuration has no valid cell plan.
#[must_use]
pub fn derive_backbone(config: &SupernetConfig, choices: &[OpChoice], seed: u64) -> Backbone {
    match try_derive_backbone(config, choices, seed) {
        Ok(backbone) => backbone,
        // Callers who must handle bad configs use `try_derive_backbone`;
        // reaching this arm is a caller bug the documented contract rules
        // out.
        Err(e) => unreachable!("derive_backbone precondition violated: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::ALL_OPS;
    use crate::supernet::SuperNet;
    use a3cs_nn::Module;
    use a3cs_tensor::{Tape, Tensor};

    #[test]
    fn derived_backbone_runs_and_matches_feat_dim() {
        let cfg = SupernetConfig::tiny(3, 12, 12);
        let choices = vec![OpChoice::Conv { kernel: 3 }; 6];
        let bb = derive_backbone(&cfg, &choices, 1);
        assert_eq!(bb.name(), "A3C-S");
        let tape = Tape::new();
        let x = tape.leaf(Tensor::randn(&[2, 3, 12, 12], 0.3, 2));
        let y = bb.forward(&tape, &x, true);
        assert_eq!(y.shape(), vec![2, 32]);
    }

    #[test]
    fn derived_from_supernet_argmax_matches_description() {
        let cfg = SupernetConfig::tiny(3, 12, 12);
        let sn = SuperNet::new(cfg, 5);
        // Bias the α so argmax is non-trivial and mixed.
        sn.arch().cell(1).update(|t| t.data_mut()[8] = 3.0); // skip
        sn.arch().cell(3).update(|t| t.data_mut()[4] = 3.0); // ir_k3_e5
        let derived = derive_backbone(&cfg, &sn.most_likely_arch(), 2);
        // Same compute-layer inventory as the supernet's argmax description
        // (names differ; op structure must match).
        let sn_descs = sn.most_likely_layer_descs();
        let dv_descs = derived.layer_descs();
        assert_eq!(sn_descs.len(), dv_descs.len());
        for (a, b) in sn_descs.iter().zip(dv_descs.iter()) {
            assert_eq!(a.op, b.op);
        }
    }

    #[test]
    fn all_ops_produce_valid_derivations() {
        let cfg = SupernetConfig::tiny(3, 12, 12);
        for &op in &ALL_OPS {
            let bb = derive_backbone(&cfg, &vec![op; 6], 3);
            assert!(bb.total_macs() > 0, "{op}");
        }
    }

    #[test]
    fn skip_heavy_architectures_are_cheaper() {
        let cfg = SupernetConfig::tiny(3, 12, 12);
        let heavy = derive_backbone(&cfg, &vec![OpChoice::Conv { kernel: 5 }; 6], 4);
        let light = derive_backbone(&cfg, &vec![OpChoice::Skip; 6], 4);
        assert!(heavy.total_macs() > light.total_macs() * 2);
    }

    #[test]
    #[should_panic(expected = "one operator choice per cell")]
    fn wrong_choice_count_panics() {
        let cfg = SupernetConfig::tiny(3, 12, 12);
        let _ = derive_backbone(&cfg, &[OpChoice::Skip], 0);
    }

    #[test]
    fn try_derive_reports_structured_errors() {
        use crate::error::NasError;
        let cfg = SupernetConfig::tiny(3, 12, 12);
        assert_eq!(
            try_derive_backbone(&cfg, &[OpChoice::Skip], 0).err(),
            Some(NasError::ChoiceArityMismatch {
                expected: 6,
                actual: 1,
            })
        );
        let mut bad = cfg;
        bad.num_cells = 5;
        assert_eq!(
            try_derive_backbone(&bad, &vec![OpChoice::Skip; 5], 0).err(),
            Some(NasError::InvalidCellCount { num_cells: 5 })
        );
        assert_eq!(
            bad.try_cell_plan().err(),
            Some(NasError::InvalidCellCount { num_cells: 5 })
        );
        assert!(try_derive_backbone(&cfg, &vec![OpChoice::Skip; 6], 0).is_ok());
    }
}
