//! Workspace code-health lint: panic-site census and `#[must_use]` hygiene.
//!
//! [`scan_source`] flags `unwrap`/`expect`/`panic!`/`todo!`/
//! `unimplemented!` calls outside `#[cfg(test)]` modules, plus `&self`
//! methods returning a value without `#[must_use]`. Counts are compared
//! against a committed allowlist so they can only ratchet *down*: new code
//! must not add panic sites, and converting one to a `Result` lets the
//! allowlist shrink. The `lint` binary (`cargo run -p a3cs-check --bin
//! lint`) drives this over `crates/*/src`.

use std::collections::BTreeMap;

/// What a lint hit is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCategory {
    /// An `.unwrap()` call.
    Unwrap,
    /// An `.expect(...)` call.
    Expect,
    /// A `panic!` invocation.
    Panic,
    /// A `todo!` invocation.
    Todo,
    /// An `unimplemented!` invocation.
    Unimplemented,
    /// A value-returning `&self` method without `#[must_use]`.
    MissingMustUse,
}

/// Every category, in report order.
pub const ALL_CATEGORIES: [LintCategory; 6] = [
    LintCategory::Unwrap,
    LintCategory::Expect,
    LintCategory::Panic,
    LintCategory::Todo,
    LintCategory::Unimplemented,
    LintCategory::MissingMustUse,
];

impl LintCategory {
    /// Stable name used in reports and the allowlist file.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            LintCategory::Unwrap => "unwrap",
            LintCategory::Expect => "expect",
            LintCategory::Panic => "panic",
            LintCategory::Todo => "todo",
            LintCategory::Unimplemented => "unimplemented",
            LintCategory::MissingMustUse => "missing-must-use",
        }
    }

    /// Parse a stable name back into a category.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        ALL_CATEGORIES.iter().copied().find(|c| c.as_str() == name)
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintHit {
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What was found.
    pub category: LintCategory,
}

/// Per-`(file, category)` hit counts — the allowlist currency.
pub type LintCounts = BTreeMap<(String, String), usize>;

/// The textual patterns each category matches on a comment-stripped line.
/// Built at runtime from fragments so the linter does not flag its own
/// pattern table when scanning this crate.
fn patterns() -> Vec<(String, LintCategory)> {
    let bang = "!";
    vec![
        (format!(".{}()", "unwrap"), LintCategory::Unwrap),
        (format!(".{}(", "expect"), LintCategory::Expect),
        (format!("{}{bang}(", "panic"), LintCategory::Panic),
        (format!("{}{bang}(", "todo"), LintCategory::Todo),
        (format!("{}{bang}(", "unimplemented"), LintCategory::Unimplemented),
    ]
}

/// Strip a line comment, respecting (naively) string literals: the first
/// `//` preceded by an even number of quotes starts the comment.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut quotes = 0usize;
    let mut i = 0;
    while i + 1 < bytes.len() {
        match bytes[i] {
            b'"' => quotes += 1,
            b'\\' if quotes % 2 == 1 => i += 1, // skip escaped char in string
            b'/' if bytes[i + 1] == b'/' && quotes.is_multiple_of(2) => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

fn brace_delta(code: &str) -> i64 {
    let mut delta = 0i64;
    let mut quotes = 0usize;
    let bytes = code.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => quotes += 1,
            b'\\' if quotes % 2 == 1 => i += 1,
            b'{' if quotes.is_multiple_of(2) => delta += 1,
            b'}' if quotes.is_multiple_of(2) => delta -= 1,
            _ => {}
        }
        i += 1;
    }
    delta
}

/// Scan one file's source text. `relpath` is recorded verbatim in the
/// hits. Code under `#[cfg(test)]` is exempt, as are comments.
#[must_use]
pub fn scan_source(relpath: &str, source: &str) -> Vec<LintHit> {
    let pats = patterns();
    let mut hits = Vec::new();
    // Test-module exclusion: after `#[cfg(test)]`, skip until the brace
    // opened by the next item closes again.
    let mut test_pending = false;
    let mut test_depth = 0i64;
    // `#[must_use]` tracking: true while inside the contiguous
    // attribute/doc block preceding an item.
    let mut block_has_must_use = false;
    for (idx, raw) in source.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim_start();
        let code = strip_comment(trimmed);
        if code.trim().is_empty() {
            // Doc comments keep an attribute block contiguous.
            if !trimmed.starts_with("///") && !trimmed.starts_with("//!") && !trimmed.starts_with("#[")
            {
                block_has_must_use = false;
            }
            continue;
        }
        if test_pending || test_depth > 0 {
            let delta = brace_delta(code);
            if test_pending && delta > 0 {
                test_pending = false;
                test_depth = delta;
            } else if test_depth > 0 {
                test_depth += delta;
            }
            continue;
        }
        if code.contains("#[cfg(test)]") {
            let delta = brace_delta(code);
            if delta > 0 {
                test_depth = delta; // `#[cfg(test)] mod t {` on one line
            } else {
                test_pending = true;
            }
            continue;
        }
        if code.starts_with("#[") {
            if code.contains("must_use") {
                block_has_must_use = true;
            }
            continue;
        }
        for (pat, category) in &pats {
            if code.contains(pat.as_str()) {
                hits.push(LintHit {
                    file: relpath.to_string(),
                    line,
                    category: *category,
                });
            }
        }
        if code.starts_with("pub fn ")
            && code.contains("(&self")
            && code.contains("->")
            && !block_has_must_use
        {
            hits.push(LintHit {
                file: relpath.to_string(),
                line,
                category: LintCategory::MissingMustUse,
            });
        }
        block_has_must_use = false;
    }
    hits
}

/// Aggregate hits into allowlist counts.
#[must_use]
pub fn count_hits(hits: &[LintHit]) -> LintCounts {
    let mut counts = LintCounts::new();
    for hit in hits {
        *counts
            .entry((hit.file.clone(), hit.category.as_str().to_string()))
            .or_insert(0) += 1;
    }
    counts
}

/// Parse the allowlist file format: `#`-comments and blank lines ignored,
/// otherwise `<path> <category> <count>` per line.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn parse_allowlist(text: &str) -> Result<LintCounts, String> {
    let mut counts = LintCounts::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(path), Some(category), Some(count)) =
            (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!("allowlist line {}: expected `<path> <category> <count>`", idx + 1));
        };
        if LintCategory::parse(category).is_none() {
            return Err(format!("allowlist line {}: unknown category `{category}`", idx + 1));
        }
        let n: usize = count
            .parse()
            .map_err(|_| format!("allowlist line {}: bad count `{count}`", idx + 1))?;
        counts.insert((path.to_string(), category.to_string()), n);
    }
    Ok(counts)
}

/// Render counts in the allowlist file format (sorted, reproducible).
#[must_use]
pub fn format_allowlist(counts: &LintCounts) -> String {
    let mut out = String::from(
        "# a3cs-check lint allowlist: grandfathered counts per (file, category).\n\
         # Counts may only ratchet down. Regenerate with:\n\
         #   cargo run -p a3cs-check --bin lint -- --update\n",
    );
    for ((path, category), count) in counts {
        out.push_str(&format!("{path} {category} {count}\n"));
    }
    out
}

/// Outcome of comparing actual counts against the allowlist.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintOutcome {
    /// `(file, category, actual, allowed)` where actual exceeds allowed.
    pub violations: Vec<(String, String, usize, usize)>,
    /// `(file, category, actual, allowed)` where the allowlist can shrink.
    pub ratchets: Vec<(String, String, usize, usize)>,
}

impl LintOutcome {
    /// `true` when no count exceeds its allowance.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Compare actual counts with allowed ones. Entries absent from the
/// allowlist are allowed zero.
#[must_use]
pub fn compare(actual: &LintCounts, allowed: &LintCounts) -> LintOutcome {
    let mut outcome = LintOutcome::default();
    for (key, &n) in actual {
        let cap = allowed.get(key).copied().unwrap_or(0);
        if n > cap {
            outcome
                .violations
                .push((key.0.clone(), key.1.clone(), n, cap));
        } else if n < cap {
            outcome.ratchets.push((key.0.clone(), key.1.clone(), n, cap));
        }
    }
    for (key, &cap) in allowed {
        if !actual.contains_key(key) && cap > 0 {
            outcome.ratchets.push((key.0.clone(), key.1.clone(), 0, cap));
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_panics_outside_tests_only() {
        let src = "\
pub fn risky(x: Option<u32>) -> u32 {
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let _ = Some(1).unwrap();
        panic!(\"fine here\");
    }
}
";
        let hits = scan_source("a.rs", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].category, LintCategory::Unwrap);
        assert_eq!(hits[0].line, 2);
    }

    #[test]
    fn comments_and_strings_do_not_count() {
        let src = "\
// this mentions .unwrap() in prose
/// docs may say panic!(...) too
pub fn fine() {
    let url = \"https://example.com\"; // trailing .expect( note
}
";
        assert!(scan_source("b.rs", src).is_empty());
    }

    #[test]
    fn todo_and_unimplemented_are_flagged() {
        let src = "fn later() {\n    todo!()\n}\nfn never() {\n    unimplemented!()\n}\n";
        let cats: Vec<LintCategory> =
            scan_source("c.rs", src).iter().map(|h| h.category).collect();
        assert_eq!(cats, vec![LintCategory::Todo, LintCategory::Unimplemented]);
    }

    #[test]
    fn must_use_attribute_suppresses_the_hit() {
        let flagged = "impl X {\n    pub fn value(&self) -> u32 {\n        self.0\n    }\n}\n";
        assert_eq!(
            scan_source("d.rs", flagged)
                .iter()
                .filter(|h| h.category == LintCategory::MissingMustUse)
                .count(),
            1
        );
        let ok = "impl X {\n    /// Doc.\n    #[must_use]\n    pub fn value(&self) -> u32 {\n        self.0\n    }\n}\n";
        assert!(scan_source("e.rs", ok).is_empty());
    }

    #[test]
    fn allowlist_round_trip_and_compare() {
        let hits = vec![
            LintHit {
                file: "x.rs".into(),
                line: 1,
                category: LintCategory::Unwrap,
            },
            LintHit {
                file: "x.rs".into(),
                line: 2,
                category: LintCategory::Unwrap,
            },
        ];
        let actual = count_hits(&hits);
        let text = format_allowlist(&actual);
        let parsed = parse_allowlist(&text).expect("well-formed");
        assert_eq!(parsed, actual);
        assert!(compare(&actual, &parsed).is_ok());

        // One fewer hit than allowed: a ratchet opportunity, still ok.
        let fewer = count_hits(&hits[..1]);
        let outcome = compare(&fewer, &parsed);
        assert!(outcome.is_ok());
        assert_eq!(outcome.ratchets.len(), 1);

        // More hits than allowed: a violation.
        let mut more = actual.clone();
        *more.get_mut(&("x.rs".to_string(), "unwrap".to_string())).expect("key") = 3;
        assert!(!compare(&more, &parsed).is_ok());
    }

    #[test]
    fn malformed_allowlist_lines_error() {
        assert!(parse_allowlist("x.rs unwrap notanumber").is_err());
        assert!(parse_allowlist("x.rs nonsense 3").is_err());
        assert!(parse_allowlist("# comment\n\n").expect("ok").is_empty());
    }
}
