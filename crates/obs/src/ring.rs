//! Fixed-capacity ring buffer for rolling observability windows.
//!
//! Deliberately minimal: push overwrites the oldest entry once full, and
//! iteration is always oldest → newest. No wall clock, no allocation after
//! the first wrap — pushing into a full ring reuses the evicted slot.

/// A fixed-capacity overwrite-oldest ring buffer.
#[derive(Debug, Clone)]
pub struct Ring<T> {
    buf: Vec<T>,
    cap: usize,
    /// Index the next push writes to (== logical end of the window).
    head: usize,
}

impl<T> Ring<T> {
    /// An empty ring holding at most `capacity` items (clamped to ≥ 1).
    #[must_use]
    pub fn new(capacity: usize) -> Ring<T> {
        let cap = capacity.max(1);
        Ring {
            buf: Vec::with_capacity(cap),
            cap,
            head: 0,
        }
    }

    /// Append `item`, evicting the oldest entry when the ring is full.
    pub fn push(&mut self, item: T) {
        if self.buf.len() < self.cap {
            self.buf.push(item);
        } else {
            self.buf[self.head] = item;
        }
        self.head = (self.head + 1) % self.cap;
    }

    /// Entries currently held (≤ capacity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` before the first push.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The fixed window size.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The most recently pushed entry.
    #[must_use]
    pub fn latest(&self) -> Option<&T> {
        if self.buf.is_empty() {
            return None;
        }
        let idx = (self.head + self.cap - 1) % self.cap;
        self.buf.get(idx.min(self.buf.len() - 1))
    }

    /// Iterate oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let split = if self.buf.len() < self.cap { 0 } else { self.head };
        self.buf[split..].iter().chain(self.buf[..split].iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_fills_then_overwrites_oldest() {
        let mut r = Ring::new(3);
        assert!(r.is_empty());
        assert_eq!(r.latest(), None);
        for v in 1..=3 {
            r.push(v);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![1, 2, 3]);
        r.push(4);
        r.push(5);
        assert_eq!(r.len(), 3);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![3, 4, 5]);
        assert_eq!(r.latest(), Some(&5));
    }

    #[test]
    fn partial_ring_iterates_in_push_order() {
        let mut r = Ring::new(8);
        r.push("a");
        r.push("b");
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec!["a", "b"]);
        assert_eq!(r.latest(), Some(&"b"));
        assert_eq!(r.capacity(), 8);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut r = Ring::new(0);
        r.push(1);
        r.push(2);
        assert_eq!(r.len(), 1);
        assert_eq!(r.latest(), Some(&2));
    }
}
