//! The dense, contiguous, row-major `f32` tensor type.

use crate::shape::{num_elements, strides_for, ShapeError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A dense, contiguous, row-major `f32` array tagged with a shape.
///
/// `Tensor` is the plain-value half of this crate; differentiable
/// computations wrap tensors in [`crate::Var`] nodes on a [`crate::Tape`].
///
/// The empty shape `[]` denotes a scalar holding exactly one element.
///
/// # Example
///
/// ```
/// use a3cs_tensor::Tensor;
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = Tensor::full(&[2, 2], 10.0);
/// let c = a.add(&b);
/// assert_eq!(c.data(), &[11.0, 12.0, 13.0, 14.0]);
/// # Ok::<(), a3cs_tensor::ShapeError>(())
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const PREVIEW: usize = 8;
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= PREVIEW {
            write!(f, " {:?}", self.data)
        } else {
            write!(f, " [{:?}.., len={}]", &self.data[..PREVIEW], self.data.len())
        }
    }
}

impl Default for Tensor {
    /// A scalar zero tensor.
    fn default() -> Self {
        Tensor::zeros(&[])
    }
}

impl Tensor {
    /// Tensor of zeros with the given shape.
    #[must_use]
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, 0.0)
    }

    /// Tensor of ones with the given shape.
    #[must_use]
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Tensor filled with `value`.
    #[must_use]
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; num_elements(shape)],
        }
    }

    /// Scalar (rank-0) tensor holding `value`.
    #[must_use]
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Vec::new(),
            data: vec![value],
        }
    }

    /// Build a tensor from raw data and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len()` does not equal the number of
    /// elements implied by `shape`, including when that number overflows
    /// `usize` (no real buffer can satisfy such a shape).
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self, ShapeError> {
        let expected = crate::shape::checked_num_elements(shape);
        if expected != Ok(data.len()) {
            return Err(ShapeError::new(shape, data.len()));
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data,
        })
    }

    /// Tensor with elements drawn i.i.d. from `U[lo, hi)` using a seeded RNG.
    #[must_use]
    pub fn uniform(shape: &[usize], lo: f32, hi: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..num_elements(shape))
            .map(|_| rng.gen_range(lo..hi))
            .collect();
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Tensor with elements drawn i.i.d. from `N(0, std^2)` using a seeded
    /// RNG (Box–Muller transform, so only `rand`'s uniform source is needed).
    #[must_use]
    pub fn randn(shape: &[usize], std: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = num_elements(shape);
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < n {
                data.push(r * theta.sin() * std);
            }
        }
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The shape of the tensor.
    #[must_use]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the tensor stores no elements (some dimension is 0).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying row-major data.
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor, returning its raw data.
    #[must_use]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// The single element of a scalar or one-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor holds more than one element.
    #[must_use]
    pub fn item(&self) -> f32 {
        assert!(
            self.data.len() == 1,
            "item() requires exactly one element, shape is {:?}",
            self.shape
        );
        self.data[0]
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or is out of bounds.
    #[must_use]
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.flat_index(index)]
    }

    /// Set the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or is out of bounds.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let flat = self.flat_index(index);
        self.data[flat] = value;
    }

    fn flat_index(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.shape.len(),
            "index rank {} does not match tensor rank {}",
            index.len(),
            self.shape.len()
        );
        let strides = strides_for(&self.shape);
        index
            .iter()
            .zip(self.shape.iter())
            .zip(strides.iter())
            .map(|((&i, &d), &s)| {
                assert!(i < d, "index {i} out of bounds for dim of size {d}");
                i * s
            })
            .sum()
    }

    /// View the same data under a new shape (element count must match).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    #[must_use]
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        assert_eq!(
            self.len(),
            num_elements(shape),
            "cannot reshape {:?} ({} elems) to {:?} ({} elems)",
            self.shape,
            self.len(),
            shape,
            num_elements(shape)
        );
        Tensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        }
    }

    /// Apply `f` to every element, producing a new tensor.
    #[must_use]
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Combine two same-shaped tensors elementwise.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    #[must_use]
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "elementwise op requires equal shapes"
        );
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Elementwise sum. Panics on shape mismatch.
    #[must_use]
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise difference. Panics on shape mismatch.
    #[must_use]
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise product. Panics on shape mismatch.
    #[must_use]
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Elementwise quotient. Panics on shape mismatch.
    #[must_use]
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a / b)
    }

    /// Add `other` into `self` in place. Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign requires equal shapes");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Multiply every element by `c`.
    #[must_use]
    pub fn scale(&self, c: f32) -> Tensor {
        self.map(|x| x * c)
    }

    /// Add `c` to every element.
    #[must_use]
    pub fn add_scalar(&self, c: f32) -> Tensor {
        self.map(|x| x + c)
    }

    /// Sum of all elements.
    #[must_use]
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    #[must_use]
    pub fn mean(&self) -> f32 {
        assert!(!self.is_empty(), "mean of an empty tensor");
        self.sum() / self.len() as f32
    }

    /// Maximum element.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    #[must_use]
    pub fn max(&self) -> f32 {
        assert!(!self.is_empty(), "max of an empty tensor");
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    #[must_use]
    pub fn min(&self) -> f32 {
        assert!(!self.is_empty(), "min of an empty tensor");
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Flat index of the maximum element (first one on ties).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    #[must_use]
    pub fn argmax(&self) -> usize {
        assert!(!self.is_empty(), "argmax of an empty tensor");
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Row-wise argmax for a rank-2 tensor `[rows, cols]`.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is rank 2 with at least one column.
    #[must_use]
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.shape.len(), 2, "argmax_rows requires a rank-2 tensor");
        let (rows, cols) = (self.shape[0], self.shape[1]);
        assert!(cols > 0, "argmax_rows requires at least one column");
        (0..rows)
            .map(|r| {
                let row = &self.data[r * cols..(r + 1) * cols];
                let mut best = 0;
                for (i, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// Squared L2 norm of all elements.
    #[must_use]
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is rank 2.
    #[must_use]
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose requires a rank-2 tensor");
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Tensor {
            shape: vec![c, r],
            data: out,
        }
    }

    /// Concatenate rank-≥1 tensors along axis 0.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or trailing dimensions disagree.
    #[must_use]
    pub fn concat0(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat0 of zero tensors");
        let tail = &parts[0].shape[1..];
        let mut rows = 0;
        for p in parts {
            assert_eq!(&p.shape[1..], tail, "concat0 trailing dims must match");
            rows += p.shape[0];
        }
        let mut shape = vec![rows];
        shape.extend_from_slice(tail);
        let mut data = Vec::with_capacity(num_elements(&shape));
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Tensor { shape, data }
    }

    /// `true` when every element is finite (no NaN / infinity).
    #[must_use]
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maximum absolute elementwise difference to `other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    #[must_use]
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "max_abs_diff requires equal shapes");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_len() {
        assert!(Tensor::from_vec(vec![1.0; 4], &[2, 2]).is_ok());
        assert!(Tensor::from_vec(vec![1.0; 3], &[2, 2]).is_err());
    }

    #[test]
    fn from_vec_rejects_overflowing_shapes() {
        // The product wraps modulo 2^64 in release arithmetic; the
        // checked path must reject it instead of trusting the wrap.
        assert!(Tensor::from_vec(vec![1.0; 2], &[usize::MAX, 2]).is_err());
        // A wrap that lands exactly on data.len() would be accepted by
        // unchecked arithmetic — (2^63)*2 wraps to 0, so pair it with an
        // empty buffer.
        assert!(Tensor::from_vec(Vec::new(), &[usize::MAX / 2 + 1, 2]).is_err());
    }

    #[test]
    fn scalar_roundtrip() {
        let s = Tensor::scalar(3.5);
        assert_eq!(s.shape(), &[] as &[usize]);
        assert_eq!(s.item(), 3.5);
    }

    #[test]
    fn indexing_row_major() {
        let t = Tensor::from_vec((0..24).map(|x| x as f32).collect(), &[2, 3, 4]).unwrap();
        assert_eq!(t.at(&[0, 0, 0]), 0.0);
        assert_eq!(t.at(&[1, 2, 3]), 23.0);
        assert_eq!(t.at(&[1, 0, 2]), 14.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn indexing_out_of_bounds_panics() {
        let t = Tensor::zeros(&[2, 2]);
        let _ = t.at(&[2, 0]);
    }

    #[test]
    fn set_then_get() {
        let mut t = Tensor::zeros(&[3, 3]);
        t.set(&[1, 2], 7.0);
        assert_eq!(t.at(&[1, 2]), 7.0);
        assert_eq!(t.sum(), 7.0);
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]).unwrap();
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).data(), &[4.0, 2.5, 2.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![-1.0, 4.0, 2.5, 0.0], &[2, 2]).unwrap();
        assert_eq!(t.sum(), 5.5);
        assert_eq!(t.mean(), 1.375);
        assert_eq!(t.max(), 4.0);
        assert_eq!(t.min(), -1.0);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn argmax_rows_picks_first_on_ties() {
        let t = Tensor::from_vec(vec![1.0, 1.0, 0.0, 3.0, 9.0, 9.0], &[2, 3]).unwrap();
        assert_eq!(t.argmax_rows(), vec![0, 1]);
    }

    #[test]
    fn transpose_2d() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let tt = t.transpose();
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let r = t.reshape(&[4]);
        assert_eq!(r.shape(), &[4]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    fn concat0_stacks_rows() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0, 6.0], &[2, 2]).unwrap();
        let c = Tensor::concat0(&[&a, &b]);
        assert_eq!(c.shape(), &[3, 2]);
        assert_eq!(c.data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn randn_is_deterministic_per_seed() {
        let a = Tensor::randn(&[32], 1.0, 7);
        let b = Tensor::randn(&[32], 1.0, 7);
        let c = Tensor::randn(&[32], 1.0, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.all_finite());
    }

    #[test]
    fn randn_std_scales_spread() {
        let small = Tensor::randn(&[4096], 0.1, 3);
        let large = Tensor::randn(&[4096], 10.0, 3);
        assert!(large.sq_norm() > small.sq_norm() * 100.0);
    }

    #[test]
    fn uniform_respects_bounds() {
        let t = Tensor::uniform(&[1000], -2.0, 3.0, 11);
        assert!(t.min() >= -2.0 && t.max() < 3.0);
    }

    #[test]
    fn debug_is_nonempty_and_bounded() {
        let t = Tensor::zeros(&[64, 64]);
        let s = format!("{t:?}");
        assert!(s.contains("Tensor[64, 64]"));
        assert!(s.len() < 200);
    }
}
