//! Primitive layers: convolutions, linear, batch-norm, activation, shaping.

use crate::describe::{ConvDims, FeatureShape, LayerDesc, LayerOp};
use crate::init::{he_std, xavier_std};
use crate::module::Module;
use crate::param::Param;
use a3cs_tensor::{Conv2dGeometry, Tape, Tensor, Var};

/// Dense 2-D convolution layer (square kernels, NCHW, optional bias).
///
/// # Example
///
/// ```
/// use a3cs_nn::{Conv2d, Module};
/// use a3cs_tensor::{Tape, Tensor};
///
/// let conv = Conv2d::new("c1", 3, 8, 3, 2, 1, true, 0);
/// let tape = Tape::new();
/// let x = tape.leaf(Tensor::zeros(&[1, 3, 8, 8]));
/// let y = conv.forward(&tape, &x, true);
/// assert_eq!(y.shape(), vec![1, 8, 4, 4]);
/// ```
pub struct Conv2d {
    name: String,
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    weight: Param,
    bias: Option<Param>,
}

impl Conv2d {
    /// Create a convolution with He-initialised weights.
    ///
    /// # Panics
    ///
    /// Panics if any structural argument is zero.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn new(
        name: &str,
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        bias: bool,
        seed: u64,
    ) -> Self {
        assert!(
            in_ch > 0 && out_ch > 0 && kernel > 0 && stride > 0,
            "conv dims must be positive"
        );
        let fan_in = in_ch * kernel * kernel;
        let weight = Param::new(
            &format!("{name}.weight"),
            Tensor::randn(&[out_ch, in_ch, kernel, kernel], he_std(fan_in), seed),
        );
        let bias = bias.then(|| Param::new(&format!("{name}.bias"), Tensor::zeros(&[out_ch])));
        Conv2d {
            name: name.to_owned(),
            in_ch,
            out_ch,
            kernel,
            stride,
            padding,
            weight,
            bias,
        }
    }

    fn dims(&self, input: FeatureShape) -> ConvDims {
        assert!(
            !matches!(input, FeatureShape::Flat { .. }),
            "conv {} cannot consume a flat feature vector",
            self.name
        );
        let FeatureShape::Image {
            channels,
            height,
            width,
        } = input
        else {
            // `FeatureShape` has exactly two variants and the assert above
            // rejected `Flat`.
            unreachable!()
        };
        assert_eq!(
            channels, self.in_ch,
            "conv {} expects {} input channels, got {}",
            self.name, self.in_ch, channels
        );
        ConvDims {
            in_ch: self.in_ch,
            out_ch: self.out_ch,
            kernel: self.kernel,
            stride: self.stride,
            padding: self.padding,
            in_h: height,
            in_w: width,
        }
    }
}

impl Module for Conv2d {
    fn forward(&self, tape: &Tape, x: &Var, train: bool) -> Var {
        let _ = train;
        let s = x.shape();
        assert_eq!(s.len(), 4, "conv input must be NCHW");
        let geom = Conv2dGeometry {
            in_channels: self.in_ch,
            out_channels: self.out_ch,
            kernel: self.kernel,
            stride: self.stride,
            padding: self.padding,
            in_h: s[2],
            in_w: s[3],
        };
        let w = self.weight.bind(tape);
        let mut y = x.conv2d(&w, geom);
        if let Some(b) = &self.bias {
            y = y.add_bias_channel(&b.bind(tape));
        }
        y
    }

    fn params(&self) -> Vec<Param> {
        let mut p = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            p.push(b.clone());
        }
        p
    }

    fn describe(&self, input: FeatureShape) -> (Vec<LayerDesc>, FeatureShape) {
        let dims = self.dims(input);
        let desc = LayerDesc {
            name: self.name.clone(),
            op: LayerOp::Conv(dims),
        };
        let out = desc.output_shape();
        (vec![desc], out)
    }
}

/// Depthwise 2-D convolution layer: one square filter per channel.
pub struct DepthwiseConv2d {
    name: String,
    channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    weight: Param,
}

impl DepthwiseConv2d {
    /// Create a depthwise convolution with He-initialised weights.
    ///
    /// # Panics
    ///
    /// Panics if any structural argument is zero.
    #[must_use]
    pub fn new(
        name: &str,
        channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        seed: u64,
    ) -> Self {
        assert!(
            channels > 0 && kernel > 0 && stride > 0,
            "depthwise conv dims must be positive"
        );
        let weight = Param::new(
            &format!("{name}.weight"),
            Tensor::randn(&[channels, kernel, kernel], he_std(kernel * kernel), seed),
        );
        DepthwiseConv2d {
            name: name.to_owned(),
            channels,
            kernel,
            stride,
            padding,
            weight,
        }
    }
}

impl Module for DepthwiseConv2d {
    fn forward(&self, tape: &Tape, x: &Var, train: bool) -> Var {
        let _ = train;
        let s = x.shape();
        assert_eq!(s.len(), 4, "depthwise conv input must be NCHW");
        let geom = Conv2dGeometry {
            in_channels: self.channels,
            out_channels: self.channels,
            kernel: self.kernel,
            stride: self.stride,
            padding: self.padding,
            in_h: s[2],
            in_w: s[3],
        };
        x.depthwise_conv2d(&self.weight.bind(tape), geom)
    }

    fn params(&self) -> Vec<Param> {
        vec![self.weight.clone()]
    }

    fn describe(&self, input: FeatureShape) -> (Vec<LayerDesc>, FeatureShape) {
        assert!(
            !matches!(input, FeatureShape::Flat { .. }),
            "depthwise conv {} cannot consume a flat feature vector",
            self.name
        );
        let FeatureShape::Image {
            channels,
            height,
            width,
        } = input
        else {
            // `FeatureShape` has exactly two variants and the assert above
            // rejected `Flat`.
            unreachable!()
        };
        assert_eq!(
            channels, self.channels,
            "depthwise conv {} expects {} channels, got {}",
            self.name, self.channels, channels
        );
        let desc = LayerDesc {
            name: self.name.clone(),
            op: LayerOp::DepthwiseConv(ConvDims {
                in_ch: self.channels,
                out_ch: self.channels,
                kernel: self.kernel,
                stride: self.stride,
                padding: self.padding,
                in_h: height,
                in_w: width,
            }),
        };
        let out = desc.output_shape();
        (vec![desc], out)
    }
}

/// Fully connected layer `[N, in] -> [N, out]` with bias.
pub struct Linear {
    name: String,
    in_features: usize,
    out_features: usize,
    weight: Param,
    bias: Param,
}

impl Linear {
    /// Create a linear layer with Xavier-initialised weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if either feature count is zero.
    #[must_use]
    pub fn new(name: &str, in_features: usize, out_features: usize, seed: u64) -> Self {
        assert!(
            in_features > 0 && out_features > 0,
            "linear dims must be positive"
        );
        let weight = Param::new(
            &format!("{name}.weight"),
            Tensor::randn(
                &[in_features, out_features],
                xavier_std(in_features, out_features),
                seed,
            ),
        );
        let bias = Param::new(&format!("{name}.bias"), Tensor::zeros(&[out_features]));
        Linear {
            name: name.to_owned(),
            in_features,
            out_features,
            weight,
            bias,
        }
    }

    /// Output feature count.
    #[must_use]
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Scale the initial weights (useful for small-output policy heads).
    #[must_use]
    pub fn with_init_scale(self, scale: f32) -> Self {
        self.weight.update(|t| *t = t.scale(scale));
        self
    }
}

impl Module for Linear {
    fn forward(&self, tape: &Tape, x: &Var, train: bool) -> Var {
        let _ = train;
        let s = x.shape();
        assert_eq!(s.len(), 2, "linear input must be [N, F]");
        assert_eq!(
            s[1], self.in_features,
            "linear {} expects {} input features, got {}",
            self.name, self.in_features, s[1]
        );
        x.matmul(&self.weight.bind(tape))
            .add_bias_row(&self.bias.bind(tape))
    }

    fn params(&self) -> Vec<Param> {
        vec![self.weight.clone(), self.bias.clone()]
    }

    fn describe(&self, input: FeatureShape) -> (Vec<LayerDesc>, FeatureShape) {
        assert!(
            !matches!(input, FeatureShape::Image { .. }),
            "linear {} cannot consume an image tensor",
            self.name
        );
        let FeatureShape::Flat { features } = input else {
            // `FeatureShape` has exactly two variants and the assert above
            // rejected `Image`.
            unreachable!()
        };
        assert_eq!(
            features, self.in_features,
            "linear {} expects {} features, got {}",
            self.name, self.in_features, features
        );
        let desc = LayerDesc {
            name: self.name.clone(),
            op: LayerOp::Fc {
                in_features: self.in_features,
                out_features: self.out_features,
            },
        };
        (
            vec![desc],
            FeatureShape::Flat {
                features: self.out_features,
            },
        )
    }
}

/// 2-D batch normalisation with learned affine and running statistics.
pub struct BatchNorm2d {
    name: String,
    channels: usize,
    gamma: Param,
    beta: Param,
    // Running statistics are non-learnable state: held as `Param` (never
    // handed to an optimizer) so checkpoints can capture and restore them
    // through `Module::state`.
    running_mean: Param,
    running_var: Param,
    momentum: f32,
    eps: f32,
}

impl BatchNorm2d {
    /// Create a batch-norm layer (`gamma = 1`, `beta = 0`, running stats
    /// at the standard-normal prior).
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    #[must_use]
    pub fn new(name: &str, channels: usize) -> Self {
        assert!(channels > 0, "batch norm needs at least one channel");
        BatchNorm2d {
            name: name.to_owned(),
            channels,
            gamma: Param::new(&format!("{name}.gamma"), Tensor::ones(&[channels])),
            beta: Param::new(&format!("{name}.beta"), Tensor::zeros(&[channels])),
            running_mean: Param::new(&format!("{name}.running_mean"), Tensor::zeros(&[channels])),
            running_var: Param::new(&format!("{name}.running_var"), Tensor::ones(&[channels])),
            momentum: 0.1,
            eps: 1e-5,
        }
    }

    /// Snapshot of the running mean.
    #[must_use]
    pub fn running_mean(&self) -> Tensor {
        self.running_mean.value()
    }

    /// Snapshot of the running variance.
    #[must_use]
    pub fn running_var(&self) -> Tensor {
        self.running_var.value()
    }
}

impl Module for BatchNorm2d {
    fn forward(&self, tape: &Tape, x: &Var, train: bool) -> Var {
        let s = x.shape();
        assert_eq!(s.len(), 4, "batch norm input must be NCHW");
        assert_eq!(s[1], self.channels, "batch norm channel mismatch");
        let gamma = self.gamma.bind(tape);
        let beta = self.beta.bind(tape);
        if train {
            // Update running statistics from the batch.
            let v = x.value();
            let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
            let m = (n * h * w) as f32;
            let hw = h * w;
            let mut mean = vec![0.0f32; c];
            let mut var = vec![0.0f32; c];
            for ci in 0..c {
                let mut acc = 0.0f32;
                for ni in 0..n {
                    let base = (ni * c + ci) * hw;
                    acc += v.data()[base..base + hw].iter().sum::<f32>();
                }
                mean[ci] = acc / m;
                let mut vacc = 0.0f32;
                for ni in 0..n {
                    let base = (ni * c + ci) * hw;
                    for &xv in &v.data()[base..base + hw] {
                        let d = xv - mean[ci];
                        vacc += d * d;
                    }
                }
                var[ci] = vacc / m;
            }
            self.running_mean.update(|rm| {
                for ci in 0..c {
                    let rm_v = rm.data()[ci];
                    rm.data_mut()[ci] = (1.0 - self.momentum) * rm_v + self.momentum * mean[ci];
                }
            });
            self.running_var.update(|rv| {
                for ci in 0..c {
                    let rv_v = rv.data()[ci];
                    rv.data_mut()[ci] = (1.0 - self.momentum) * rv_v + self.momentum * var[ci];
                }
            });
            x.batch_norm2d(&gamma, &beta, self.eps)
        } else {
            let rm = self.running_mean.value();
            let rv = self.running_var.value();
            x.batch_norm2d_inference(&gamma, &beta, &rm, &rv, self.eps)
        }
    }

    fn params(&self) -> Vec<Param> {
        vec![self.gamma.clone(), self.beta.clone()]
    }

    fn state(&self) -> Vec<Param> {
        vec![self.running_mean.clone(), self.running_var.clone()]
    }

    fn describe(&self, input: FeatureShape) -> (Vec<LayerDesc>, FeatureShape) {
        // Folded into the preceding convolution at deployment time.
        let _ = &self.name;
        (Vec::new(), input)
    }
}

/// Rectified linear unit as a module.
#[derive(Debug, Clone, Copy, Default)]
pub struct Relu;

impl Relu {
    /// Create a ReLU module.
    #[must_use]
    pub fn new() -> Self {
        Relu
    }
}

impl Module for Relu {
    fn forward(&self, _tape: &Tape, x: &Var, _train: bool) -> Var {
        x.relu()
    }

    fn params(&self) -> Vec<Param> {
        Vec::new()
    }

    fn describe(&self, input: FeatureShape) -> (Vec<LayerDesc>, FeatureShape) {
        (Vec::new(), input)
    }
}

/// Flatten `[N, C, H, W]` (or any rank ≥ 2) to `[N, F]`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Flatten;

impl Flatten {
    /// Create a flatten module.
    #[must_use]
    pub fn new() -> Self {
        Flatten
    }
}

impl Module for Flatten {
    fn forward(&self, _tape: &Tape, x: &Var, _train: bool) -> Var {
        x.flatten_batch()
    }

    fn params(&self) -> Vec<Param> {
        Vec::new()
    }

    fn describe(&self, input: FeatureShape) -> (Vec<LayerDesc>, FeatureShape) {
        (
            Vec::new(),
            FeatureShape::Flat {
                features: input.elements(),
            },
        )
    }
}

/// Global average pooling `[N, C, H, W] -> [N, C]`.
#[derive(Debug, Clone, Copy, Default)]
pub struct GlobalAvgPool;

impl GlobalAvgPool {
    /// Create a global-average-pool module.
    #[must_use]
    pub fn new() -> Self {
        GlobalAvgPool
    }
}

impl Module for GlobalAvgPool {
    fn forward(&self, _tape: &Tape, x: &Var, _train: bool) -> Var {
        x.global_avg_pool()
    }

    fn params(&self) -> Vec<Param> {
        Vec::new()
    }

    fn describe(&self, input: FeatureShape) -> (Vec<LayerDesc>, FeatureShape) {
        assert!(
            !matches!(input, FeatureShape::Flat { .. }),
            "global average pool needs an image input"
        );
        let FeatureShape::Image { channels, .. } = input else {
            // `FeatureShape` has exactly two variants and the assert above
            // rejected `Flat`.
            unreachable!()
        };
        (Vec::new(), FeatureShape::Flat { features: channels })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shapes_and_describe_agree() {
        let conv = Conv2d::new("c", 3, 8, 3, 2, 1, true, 1);
        let tape = Tape::new();
        let x = tape.leaf(Tensor::randn(&[2, 3, 9, 9], 1.0, 2));
        let y = conv.forward(&tape, &x, true);
        let (descs, out) = conv.describe(FeatureShape::image(3, 9, 9));
        assert_eq!(descs.len(), 1);
        let FeatureShape::Image {
            channels,
            height,
            width,
        } = out
        else {
            panic!("conv output must be an image")
        };
        assert_eq!(y.shape(), vec![2, channels, height, width]);
    }

    #[test]
    fn conv_param_count() {
        let conv = Conv2d::new("c", 4, 6, 3, 1, 1, true, 1);
        assert_eq!(conv.param_count(), 4 * 6 * 9 + 6);
        let no_bias = Conv2d::new("c", 4, 6, 3, 1, 1, false, 1);
        assert_eq!(no_bias.param_count(), 4 * 6 * 9);
    }

    #[test]
    fn linear_forward_matches_manual() {
        let lin = Linear::new("fc", 3, 2, 5);
        let tape = Tape::new();
        let x = tape.leaf(Tensor::ones(&[1, 3]));
        let y = lin.forward(&tape, &x, true);
        let w = lin.params()[0].value();
        let expect0: f32 = (0..3).map(|i| w.at(&[i, 0])).sum();
        assert!((y.value().data()[0] - expect0).abs() < 1e-5);
    }

    #[test]
    fn batch_norm_train_updates_running_stats() {
        let bn = BatchNorm2d::new("bn", 2);
        let tape = Tape::new();
        let x = tape.leaf(Tensor::full(&[4, 2, 2, 2], 10.0));
        let before = bn.running_mean();
        let _ = bn.forward(&tape, &x, true);
        let after = bn.running_mean();
        assert!(after.data()[0] > before.data()[0]);
        // Eval mode must not touch stats.
        let frozen = bn.running_mean();
        let _ = bn.forward(&tape, &x, false);
        assert_eq!(bn.running_mean(), frozen);
    }

    #[test]
    fn depthwise_preserves_channels() {
        let dw = DepthwiseConv2d::new("dw", 5, 3, 1, 1, 3);
        let tape = Tape::new();
        let x = tape.leaf(Tensor::randn(&[1, 5, 6, 6], 1.0, 4));
        let y = dw.forward(&tape, &x, true);
        assert_eq!(y.shape(), vec![1, 5, 6, 6]);
    }

    #[test]
    fn flatten_and_gap_describe() {
        let (d1, s1) = Flatten::new().describe(FeatureShape::image(3, 4, 4));
        assert!(d1.is_empty());
        assert_eq!(s1, FeatureShape::Flat { features: 48 });
        let (d2, s2) = GlobalAvgPool::new().describe(FeatureShape::image(7, 4, 4));
        assert!(d2.is_empty());
        assert_eq!(s2, FeatureShape::Flat { features: 7 });
    }

    #[test]
    #[should_panic(expected = "cannot consume a flat")]
    fn conv_describe_rejects_flat_input() {
        let conv = Conv2d::new("c", 3, 8, 3, 1, 1, true, 1);
        let _ = conv.describe(FeatureShape::Flat { features: 10 });
    }

    #[test]
    fn linear_init_scale_shrinks_weights() {
        let a = Linear::new("fc", 8, 4, 7);
        let b = Linear::new("fc", 8, 4, 7).with_init_scale(0.01);
        assert!(b.params()[0].value().sq_norm() < a.params()[0].value().sq_norm() * 1e-2);
    }
}
