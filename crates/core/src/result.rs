//! Co-search outputs.

use crate::robustness::RobustnessLog;
use a3cs_accel::{AcceleratorConfig, PerfReport};
use a3cs_nas::OpChoice;
use telemetry::TelemetrySummary;

/// Everything a finished co-search produces: the matched agent/accelerator
/// pair plus the search-time diagnostics the paper's figures report.
#[derive(Debug, Clone)]
pub struct CoSearchResult {
    /// Derived architecture: one operator per cell (argmax `α`).
    pub arch: Vec<OpChoice>,
    /// Matched accelerator (argmax `φ` after the final DAS refinement).
    pub accelerator: AcceleratorConfig,
    /// Predicted hardware performance of the pair.
    pub report: PerfReport,
    /// `(env steps, eval score)` of the argmax network during search —
    /// the Fig. 2 series.
    pub score_curve: Vec<(u64, f32)>,
    /// `(env steps, mean α entropy)` — convergence diagnostic.
    pub alpha_entropy_curve: Vec<(u64, f32)>,
    /// Total environment steps consumed.
    pub steps: u64,
    /// Every fault-tolerance action the run took (resumes, rollbacks,
    /// injected faults); empty for an undisturbed run.
    pub robustness: RobustnessLog,
    /// Aggregated telemetry for the run (phase timings, counters, pool
    /// utilization). Empty unless a `telemetry::Session` was active.
    /// Observe-only: never checkpointed, never fed back into the search.
    pub telemetry: TelemetrySummary,
}

impl CoSearchResult {
    /// Best evaluation score observed during search.
    #[must_use]
    pub fn best_score(&self) -> f32 {
        self.score_curve
            .iter()
            .map(|&(_, s)| s)
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Final evaluation score.
    #[must_use]
    pub fn final_score(&self) -> f32 {
        self.score_curve
            .last()
            .map_or(f32::NEG_INFINITY, |&(_, s)| s)
    }

    /// A one-line human-readable summary.
    #[must_use]
    pub fn summary(&self) -> String {
        let ops: Vec<String> = self.arch.iter().map(ToString::to_string).collect();
        format!(
            "arch=[{}] fps={:.1} dsp={} score={:.1}",
            ops.join(","),
            self.report.fps,
            self.report.dsp_used,
            self.final_score()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a3cs_accel::{BufferAlloc, ChunkConfig, Dataflow, NocTopology, PeArray, PerfReport, Tiling};

    fn dummy() -> CoSearchResult {
        CoSearchResult {
            arch: vec![OpChoice::Skip, OpChoice::Conv { kernel: 3 }],
            accelerator: AcceleratorConfig {
                chunks: vec![ChunkConfig {
                    pe: PeArray { rows: 4, cols: 4 },
                    noc: NocTopology::Systolic,
                    dataflow: Dataflow::OutputStationary,
                    buffers: BufferAlloc {
                        input_kb: 8,
                        weight_kb: 8,
                        output_kb: 8,
                    },
                    tiling: Tiling {
                        tm: 4,
                        tn: 4,
                        tr: 4,
                        tc: 4,
                    },
                }],
                assignment: vec![0],
            },
            report: PerfReport {
                fps: 100.0,
                bottleneck_cycles: 2e6,
                total_latency_cycles: 2e6,
                chunk_cycles: vec![2e6],
                dsp_used: 16,
                bram_kb_used: 24,
                energy: 1.0,
                feasible: true,
                thrashing_layers: 0,
            },
            score_curve: vec![(100, 1.0), (200, 5.0), (300, 3.0)],
            alpha_entropy_curve: vec![(100, 2.0)],
            steps: 300,
            robustness: RobustnessLog::new(),
            telemetry: TelemetrySummary::default(),
        }
    }

    #[test]
    fn best_and_final_scores() {
        let r = dummy();
        assert_eq!(r.best_score(), 5.0);
        assert_eq!(r.final_score(), 3.0);
    }

    #[test]
    fn summary_mentions_ops_and_fps() {
        let s = dummy().summary();
        assert!(s.contains("skip") && s.contains("conv3x3") && s.contains("fps=100.0"));
    }
}
