//! Resumable search-state checkpoints for the co-search loop.
//!
//! A [`SearchCheckpoint`] captures *everything* the loop in
//! [`crate::CoSearch`] mutates — supernet weights `θ` and architecture
//! logits `α`, both optimiser states, the DAS `φ` distribution and RNG,
//! every rollout lane's environment state and action RNG stream, the
//! step/iteration counters and the diagnostic curves — so a run killed at
//! any iteration boundary resumes **bit-identically** to one that never
//! stopped (the contract established in `DESIGN.md` §9 makes this provable
//! by equality).
//!
//! # Bit-safe serialisation
//!
//! The vendored `serde` stores every number as an `f64`, which silently
//! loses precision above 2⁵³ and maps non-finite floats to `null`. A
//! checkpoint therefore never stores a raw `f32`/`f64`/`u64`/wide `i64`:
//! `f32`s travel as their `u32` bit patterns, and 64-bit values (RNG
//! words, `f64` bits, seeds) travel as `(hi, lo)` pairs of `u32`s. Plain
//! `u64` fields are used only for counters that stay far below 2⁵³.

use crate::config::CoSearchConfig;
use crate::robustness::RobustnessEvent;
use a3cs_accel::DasState;
use a3cs_drl::{fnv1a64, OptimizerState, RunnerState};
use a3cs_envs::EnvState;
use a3cs_nas::SupernetSearchState;
use a3cs_nn::Param;
use a3cs_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Format version of [`SearchCheckpoint`]. Bumped on any layout change;
/// older versions are rejected (never mis-read).
pub const SEARCH_CHECKPOINT_VERSION: u32 = 2;

// --- bit-safe packing helpers -------------------------------------------

pub(crate) fn u64_pair(x: u64) -> (u32, u32) {
    // a3cs::allow(lossy-cast): intentional 64→2×32 split; `pair_u64`
    // reassembles both halves, so the round trip is bit-exact.
    ((x >> 32) as u32, x as u32)
}

pub(crate) fn pair_u64((hi, lo): (u32, u32)) -> u64 {
    (u64::from(hi) << 32) | u64::from(lo)
}

pub(crate) fn f64_pair(x: f64) -> (u32, u32) {
    u64_pair(x.to_bits())
}

pub(crate) fn pair_f64(p: (u32, u32)) -> f64 {
    f64::from_bits(pair_u64(p))
}

fn rng_pairs(words: [u64; 4]) -> Vec<(u32, u32)> {
    words.iter().map(|&w| u64_pair(w)).collect()
}

fn pairs_rng(pairs: &[(u32, u32)]) -> Result<[u64; 4], CheckpointError> {
    if pairs.len() != 4 {
        return Err(CheckpointError::Incompatible(format!(
            "RNG state has {} words, expected 4",
            pairs.len()
        )));
    }
    Ok([
        pair_u64(pairs[0]),
        pair_u64(pairs[1]),
        pair_u64(pairs[2]),
        pair_u64(pairs[3]),
    ])
}

fn f32_bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn bits_f32(v: &[u32]) -> Vec<f32> {
    v.iter().map(|&b| f32::from_bits(b)).collect()
}

// --- why a checkpoint could not be applied ------------------------------

/// Why a [`SearchCheckpoint`] could not be parsed or applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The payload is not a parsable checkpoint of the current version.
    Parse(String),
    /// The checkpoint was produced by a run with a different configuration
    /// or seed, so resuming from it would silently change the experiment.
    Fingerprint {
        /// Fingerprint of the running configuration.
        expected: String,
        /// Fingerprint recorded in the checkpoint.
        found: String,
    },
    /// The checkpoint's shapes do not match the constructed search state.
    Incompatible(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Parse(m) => write!(f, "checkpoint parse error: {m}"),
            CheckpointError::Fingerprint { expected, found } => write!(
                f,
                "checkpoint belongs to a different run: config/seed fingerprint \
                 {found} vs this run's {expected}"
            ),
            CheckpointError::Incompatible(m) => write!(f, "checkpoint incompatible: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

// --- serialisable representations ---------------------------------------

/// One named tensor (parameter or non-learnable state buffer), data as
/// `f32` bit patterns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TensorRepr {
    pub(crate) name: String,
    pub(crate) shape: Vec<usize>,
    pub(crate) bits: Vec<u32>,
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct EnvStateRepr {
    pub(crate) tag: String,
    /// `i64` stream values as `(hi, lo)` pairs of their two's-complement
    /// bits (environment ints embed RNG words, which exceed 2⁵³).
    pub(crate) ints: Vec<(u32, u32)>,
    pub(crate) floats: Vec<u32>,
    pub(crate) inner: Vec<EnvStateRepr>,
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct RunnerStateRepr {
    pub(crate) envs: Vec<EnvStateRepr>,
    pub(crate) lane_rngs: Vec<Vec<(u32, u32)>>,
    pub(crate) current_obs: Vec<Vec<u32>>,
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct OptimStateRepr {
    pub(crate) kind: String,
    pub(crate) lr: u32,
    pub(crate) key_names: Vec<String>,
    pub(crate) key_shapes: Vec<Vec<usize>>,
    pub(crate) slots: Vec<Vec<Vec<u32>>>,
    /// `f64` scalars (Adam bias-correction powers) as bit pairs.
    pub(crate) scalars: Vec<(u32, u32)>,
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct DasStateRepr {
    /// `f64` logits as bit pairs, one row per knob.
    pub(crate) logits: Vec<Vec<(u32, u32)>>,
    pub(crate) rng: Vec<(u32, u32)>,
    pub(crate) baseline: Option<(u32, u32)>,
    pub(crate) temperature: (u32, u32),
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct SupernetStateRepr {
    pub(crate) alpha: Vec<Vec<u32>>,
    pub(crate) gumbel_rng: Vec<(u32, u32)>,
    pub(crate) step: u64,
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct CurvePointRepr {
    pub(crate) step: u64,
    pub(crate) bits: u32,
}

/// A complete, versioned snapshot of the co-search loop state, written at
/// an iteration boundary. See the module docs for the serialisation
/// contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchCheckpoint {
    pub(crate) version: u32,
    /// FNV-1a fingerprint of the producing configuration (fault plan and
    /// thread count excluded — neither changes the trajectory).
    pub(crate) fingerprint: String,
    pub(crate) seed: (u32, u32),
    pub(crate) steps: u64,
    pub(crate) iteration: u64,
    pub(crate) next_eval: u64,
    pub(crate) score_curve: Vec<CurvePointRepr>,
    pub(crate) entropy_curve: Vec<CurvePointRepr>,
    /// Learnable parameters of the agent (supernet weights + heads).
    pub(crate) weight_params: Vec<TensorRepr>,
    /// Non-learnable state tensors (e.g. batch-norm running statistics).
    pub(crate) state_tensors: Vec<TensorRepr>,
    pub(crate) supernet: SupernetStateRepr,
    pub(crate) weight_opt: OptimStateRepr,
    pub(crate) alpha_opt: OptimStateRepr,
    pub(crate) das: DasStateRepr,
    pub(crate) train_runner: RunnerStateRepr,
    pub(crate) val_runner: Option<RunnerStateRepr>,
    pub(crate) lr_scale: u32,
    pub(crate) rollbacks_left: u32,
    pub(crate) events: Vec<RobustnessEvent>,
}

impl SearchCheckpoint {
    /// Serialise to compact JSON (the payload sealed into the checkpoint
    /// envelope by the store).
    #[must_use]
    pub fn to_json(&self) -> String {
        match serde_json::to_string(self) {
            Ok(json) => json,
            Err(e) => unreachable!("vendored serde_json serialisation is infallible: {e}"),
        }
    }

    /// Parse a checkpoint payload, rejecting other versions.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Parse`] on malformed JSON or a version mismatch.
    pub fn from_json(payload: &str) -> Result<Self, CheckpointError> {
        let ck: SearchCheckpoint =
            serde_json::from_str(payload).map_err(|e| CheckpointError::Parse(e.to_string()))?;
        if ck.version != SEARCH_CHECKPOINT_VERSION {
            return Err(CheckpointError::Parse(format!(
                "checkpoint version {} (this build reads {})",
                ck.version, SEARCH_CHECKPOINT_VERSION
            )));
        }
        Ok(ck)
    }

    /// Serialise to the length-prefixed binary frame
    /// ([`crate::fault::CheckpointFormat::Binary`]).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        crate::binfmt::encode(self)
    }

    /// Parse a checkpoint payload in either format: binary if it starts
    /// with the binary magic, JSON otherwise. Rejects other versions.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Parse`] on a malformed payload or a version
    /// mismatch.
    pub fn decode(payload: &[u8]) -> Result<Self, CheckpointError> {
        let ck = if crate::binfmt::is_binary(payload) {
            crate::binfmt::decode(payload)?
        } else {
            let text = std::str::from_utf8(payload).map_err(|_| {
                CheckpointError::Parse("checkpoint payload is neither binary nor UTF-8".to_string())
            })?;
            return Self::from_json(text);
        };
        if ck.version != SEARCH_CHECKPOINT_VERSION {
            return Err(CheckpointError::Parse(format!(
                "checkpoint version {} (this build reads {})",
                ck.version, SEARCH_CHECKPOINT_VERSION
            )));
        }
        Ok(ck)
    }

    /// Environment steps consumed at capture time.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Co-search iteration at capture time.
    #[must_use]
    pub fn iteration(&self) -> u64 {
        self.iteration
    }
}

/// Identity of a run for resume-compatibility checks: an FNV-1a hash over
/// the configuration with the fault plan and thread count normalised out
/// (neither affects the search trajectory).
#[must_use]
pub fn config_fingerprint(config: &CoSearchConfig) -> String {
    let mut normalized = config.clone();
    normalized.threads = None;
    normalized.fault = crate::fault::FaultConfig::default();
    format!("{:016x}", fnv1a64(format!("{normalized:?}").as_bytes()))
}

// --- conversions to/from live state -------------------------------------

pub(crate) fn tensors_to_repr(params: &[Param]) -> Vec<TensorRepr> {
    params
        .iter()
        .map(|p| {
            let value = p.value();
            TensorRepr {
                name: p.name().to_owned(),
                shape: value.shape().to_vec(),
                bits: f32_bits(value.data()),
            }
        })
        .collect()
}

pub(crate) fn apply_tensor_reprs(
    reprs: &[TensorRepr],
    params: &[Param],
    what: &str,
) -> Result<(), CheckpointError> {
    if reprs.len() != params.len() {
        return Err(CheckpointError::Incompatible(format!(
            "{what}: checkpoint has {} tensors, model has {}",
            reprs.len(),
            params.len()
        )));
    }
    // Validate the whole list before mutating anything.
    for (r, p) in reprs.iter().zip(params) {
        if r.name != p.name() || r.shape != p.shape() {
            return Err(CheckpointError::Incompatible(format!(
                "{what}: checkpoint tensor {:?} {:?} vs model {:?} {:?}",
                r.name,
                r.shape,
                p.name(),
                p.shape()
            )));
        }
        let numel: usize = r.shape.iter().product();
        if r.bits.len() != numel {
            return Err(CheckpointError::Incompatible(format!(
                "{what}: tensor {:?} has {} values for shape {:?}",
                r.name,
                r.bits.len(),
                r.shape
            )));
        }
    }
    for (r, p) in reprs.iter().zip(params) {
        match Tensor::from_vec(bits_f32(&r.bits), &r.shape) {
            Ok(t) => p.set_value(t),
            Err(e) => unreachable!("length validated above: {e:?}"),
        }
    }
    Ok(())
}

pub(crate) fn env_to_repr(state: &EnvState) -> EnvStateRepr {
    EnvStateRepr {
        tag: state.tag().to_owned(),
        ints: state
            .ints()
            .iter()
            // a3cs::allow(lossy-cast): i64→u64 keeps the two's-complement
            // bits; `repr_to_env` inverts it exactly.
            .map(|&i| u64_pair(i as u64))
            .collect(),
        floats: f32_bits(state.floats()),
        inner: state.inner().iter().map(env_to_repr).collect(),
    }
}

pub(crate) fn repr_to_env(repr: &EnvStateRepr) -> EnvState {
    EnvState::from_parts(
        repr.tag.clone(),
        // a3cs::allow(lossy-cast): u64→i64 is the exact inverse of the
        // two's-complement cast in `env_to_repr`.
        repr.ints.iter().map(|&p| pair_u64(p) as i64).collect(),
        bits_f32(&repr.floats),
        repr.inner.iter().map(repr_to_env).collect(),
    )
}

pub(crate) fn runner_to_repr(state: &RunnerState) -> RunnerStateRepr {
    RunnerStateRepr {
        envs: state.envs.iter().map(env_to_repr).collect(),
        lane_rngs: state.lane_rngs.iter().map(|&w| rng_pairs(w)).collect(),
        current_obs: state.current_obs.iter().map(|o| f32_bits(o)).collect(),
    }
}

pub(crate) fn repr_to_runner(repr: &RunnerStateRepr) -> Result<RunnerState, CheckpointError> {
    Ok(RunnerState {
        envs: repr.envs.iter().map(repr_to_env).collect(),
        lane_rngs: repr
            .lane_rngs
            .iter()
            .map(|p| pairs_rng(p))
            .collect::<Result<_, _>>()?,
        current_obs: repr.current_obs.iter().map(|o| bits_f32(o)).collect(),
    })
}

pub(crate) fn optim_to_repr(state: &OptimizerState) -> OptimStateRepr {
    OptimStateRepr {
        kind: state.kind.clone(),
        lr: state.lr.to_bits(),
        key_names: state.keys.iter().map(|(n, _)| n.clone()).collect(),
        key_shapes: state.keys.iter().map(|(_, s)| s.clone()).collect(),
        slots: state
            .slots
            .iter()
            .map(|slot| slot.iter().map(|buf| f32_bits(buf)).collect())
            .collect(),
        scalars: state.scalars.iter().map(|&s| f64_pair(s)).collect(),
    }
}

pub(crate) fn repr_to_optim(repr: &OptimStateRepr) -> Result<OptimizerState, CheckpointError> {
    if repr.key_names.len() != repr.key_shapes.len() {
        return Err(CheckpointError::Incompatible(format!(
            "optimizer state has {} key names for {} key shapes",
            repr.key_names.len(),
            repr.key_shapes.len()
        )));
    }
    Ok(OptimizerState {
        kind: repr.kind.clone(),
        lr: f32::from_bits(repr.lr),
        keys: repr
            .key_names
            .iter()
            .cloned()
            .zip(repr.key_shapes.iter().cloned())
            .collect(),
        slots: repr
            .slots
            .iter()
            .map(|slot| slot.iter().map(|buf| bits_f32(buf)).collect())
            .collect(),
        scalars: repr.scalars.iter().map(|&p| pair_f64(p)).collect(),
    })
}

pub(crate) fn das_to_repr(state: &DasState) -> DasStateRepr {
    DasStateRepr {
        logits: state
            .logits
            .iter()
            .map(|row| row.iter().map(|&x| f64_pair(x)).collect())
            .collect(),
        rng: rng_pairs(state.rng),
        baseline: state.baseline.map(f64_pair),
        temperature: f64_pair(state.temperature),
    }
}

pub(crate) fn repr_to_das(repr: &DasStateRepr) -> Result<DasState, CheckpointError> {
    Ok(DasState {
        logits: repr
            .logits
            .iter()
            .map(|row| row.iter().map(|&p| pair_f64(p)).collect())
            .collect(),
        rng: pairs_rng(&repr.rng)?,
        baseline: repr.baseline.map(pair_f64),
        temperature: pair_f64(repr.temperature),
    })
}

pub(crate) fn supernet_to_repr(state: &SupernetSearchState) -> SupernetStateRepr {
    SupernetStateRepr {
        alpha: state.alpha.iter().map(|row| f32_bits(row)).collect(),
        gumbel_rng: rng_pairs(state.gumbel_rng),
        step: state.step,
    }
}

pub(crate) fn repr_to_supernet(
    repr: &SupernetStateRepr,
) -> Result<SupernetSearchState, CheckpointError> {
    Ok(SupernetSearchState {
        alpha: repr.alpha.iter().map(|row| bits_f32(row)).collect(),
        gumbel_rng: pairs_rng(&repr.gumbel_rng)?,
        step: repr.step,
    })
}

pub(crate) fn curve_to_repr(curve: &[(u64, f32)]) -> Vec<CurvePointRepr> {
    curve
        .iter()
        .map(|&(step, v)| CurvePointRepr {
            step,
            bits: v.to_bits(),
        })
        .collect()
}

pub(crate) fn repr_to_curve(reprs: &[CurvePointRepr]) -> Vec<(u64, f32)> {
    reprs
        .iter()
        .map(|r| (r.step, f32::from_bits(r.bits)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::robustness::RobustnessEventKind;
    use proptest::prelude::*;

    fn pair_strategy() -> impl Strategy<Value = (u32, u32)> {
        (any::<u32>(), any::<u32>())
    }

    fn tensor_strategy() -> impl Strategy<Value = TensorRepr> {
        (1usize..5, prop::collection::vec(any::<u32>(), 1..6)).prop_map(|(d, bits)| TensorRepr {
            name: format!("t{d}"),
            shape: vec![bits.len()],
            bits,
        })
    }

    fn env_strategy() -> impl Strategy<Value = EnvStateRepr> {
        (
            prop::collection::vec(pair_strategy(), 0..6),
            prop::collection::vec(any::<u32>(), 0..6),
        )
            .prop_map(|(ints, floats)| EnvStateRepr {
                tag: "Env".to_string(),
                ints,
                floats,
                inner: Vec::new(),
            })
    }

    /// A checkpoint exercising every repr: tensors, nested env states,
    /// optimizer slots, RNG words, f64 pairs, curves, events.
    fn build_checkpoint(
        seed: (u32, u32),
        steps32: u32,
        tensors: Vec<TensorRepr>,
        envs: Vec<EnvStateRepr>,
        scalars: Vec<(u32, u32)>,
        lr: u32,
        lr_scale: u32,
        rollbacks: u32,
    ) -> SearchCheckpoint {
        let rng = vec![(1, 2), (3, 4), (5, 6), (7, 8)];
        let n_envs = envs.len();
        SearchCheckpoint {
            version: SEARCH_CHECKPOINT_VERSION,
            fingerprint: "deadbeefdeadbeef".to_string(),
            seed,
            steps: u64::from(steps32),
            iteration: u64::from(steps32) / 20,
            next_eval: u64::from(steps32) + 500,
            score_curve: vec![
                CurvePointRepr { step: 100, bits: lr },
                CurvePointRepr {
                    step: 200,
                    bits: lr_scale,
                },
            ],
            entropy_curve: vec![CurvePointRepr { step: 100, bits: 7 }],
            weight_params: tensors.clone(),
            state_tensors: tensors,
            supernet: SupernetStateRepr {
                alpha: vec![vec![1, 2, 3], vec![4, 5, 6]],
                gumbel_rng: rng.clone(),
                step: u64::from(steps32),
            },
            weight_opt: OptimStateRepr {
                kind: "rmsprop".to_string(),
                lr,
                key_names: vec!["w".to_string()],
                key_shapes: vec![vec![2]],
                slots: vec![vec![vec![9, 10]]],
                scalars: Vec::new(),
            },
            alpha_opt: OptimStateRepr {
                kind: "adam".to_string(),
                lr,
                key_names: Vec::new(),
                key_shapes: Vec::new(),
                slots: vec![Vec::new(), Vec::new()],
                scalars: scalars.clone(),
            },
            das: DasStateRepr {
                logits: vec![scalars],
                rng: rng.clone(),
                baseline: Some((11, 12)),
                temperature: (13, 14),
            },
            train_runner: RunnerStateRepr {
                envs,
                lane_rngs: vec![rng; n_envs],
                current_obs: vec![vec![15, 16]; n_envs],
            },
            val_runner: None,
            lr_scale,
            rollbacks_left: rollbacks,
            events: vec![RobustnessEvent {
                iteration: 3,
                kind: RobustnessEventKind::FaultInjected,
                detail: "nan loss".to_string(),
            }],
        }
    }

    fn checkpoint_strategy() -> impl Strategy<Value = SearchCheckpoint> {
        (
            pair_strategy(),
            any::<u32>(),
            prop::collection::vec(tensor_strategy(), 0..4),
            prop::collection::vec(env_strategy(), 1..4),
            prop::collection::vec(pair_strategy(), 0..4),
            (any::<u32>(), any::<u32>(), 0u32..10),
        )
            .prop_map(|(seed, steps32, tensors, envs, scalars, (lr, scale, rb))| {
                build_checkpoint(seed, steps32, tensors, envs, scalars, lr, scale, rb)
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The full checkpoint — including extreme bit patterns for every
        /// float and 64-bit field — survives JSON exactly.
        #[test]
        fn search_checkpoint_json_round_trip(ck in checkpoint_strategy()) {
            let json = ck.to_json();
            let back = SearchCheckpoint::from_json(&json);
            prop_assert!(back.is_ok(), "{:?}", back.err());
            let is_equal = back.ok() == Some(ck);
            prop_assert!(is_equal, "checkpoint changed across the JSON round trip");
        }

        /// The binary frame round-trips the full checkpoint exactly —
        /// arbitrary `u32` bit patterns cover NaN payloads, infinities and
        /// negative zeros in every float-carrying field.
        #[test]
        fn search_checkpoint_binary_round_trip(ck in checkpoint_strategy()) {
            let bytes = ck.to_bytes();
            let back = SearchCheckpoint::decode(&bytes);
            prop_assert!(back.is_ok(), "{:?}", back.err());
            let is_equal = back.ok() == Some(ck);
            prop_assert!(is_equal, "checkpoint changed across the binary round trip");
        }

        /// Truncating a binary frame at any point yields a parse error,
        /// never a panic.
        #[test]
        fn truncated_binary_checkpoint_is_a_parse_error(
            ck in checkpoint_strategy(),
            cut in 0usize..4096,
        ) {
            let bytes = ck.to_bytes();
            let cut = cut.min(bytes.len().saturating_sub(1));
            let err = SearchCheckpoint::decode(&bytes[..cut]);
            prop_assert!(matches!(err, Err(CheckpointError::Parse(_))), "{err:?}");
        }

        /// 64-bit packing is lossless for every value, including those
        /// above 2^53 where the vendored serde would silently round.
        #[test]
        fn u64_pair_round_trip(x in any::<u64>()) {
            prop_assert_eq!(pair_u64(u64_pair(x)), x);
        }

        /// f64 packing preserves exact bits (NaN payloads included).
        #[test]
        fn f64_pair_round_trip(bits in any::<u64>()) {
            let x = f64::from_bits(bits);
            prop_assert_eq!(pair_f64(f64_pair(x)).to_bits(), bits);
        }
    }

    #[test]
    fn from_json_rejects_other_versions() {
        let mut ck = build_checkpoint(
            (1, 2),
            300,
            Vec::new(),
            vec![EnvStateRepr {
                tag: "Env".to_string(),
                ints: Vec::new(),
                floats: Vec::new(),
                inner: Vec::new(),
            }],
            Vec::new(),
            5,
            6,
            1,
        );
        ck.version = SEARCH_CHECKPOINT_VERSION + 1;
        let err = SearchCheckpoint::from_json(&ck.to_json()).unwrap_err();
        assert!(matches!(err, CheckpointError::Parse(_)), "{err}");
    }

    #[test]
    fn decode_reads_both_formats_including_nan_bits() {
        let nan_bits = f32::NAN.to_bits() | 0xdead; // a NaN with a payload
        let ck = build_checkpoint(
            (1, 2),
            300,
            vec![TensorRepr {
                name: "w".to_string(),
                shape: vec![2],
                bits: vec![nan_bits, f32::NEG_INFINITY.to_bits()],
            }],
            vec![EnvStateRepr {
                tag: "Env".to_string(),
                ints: vec![(u32::MAX, 7)],
                floats: vec![nan_bits],
                inner: Vec::new(),
            }],
            vec![(nan_bits, nan_bits)],
            nan_bits,
            6,
            1,
        );
        let from_json = SearchCheckpoint::decode(ck.to_json().as_bytes()).expect("json decodes");
        let from_bin = SearchCheckpoint::decode(&ck.to_bytes()).expect("binary decodes");
        assert_eq!(from_json, ck);
        assert_eq!(from_bin, ck);
    }

    #[test]
    fn decode_rejects_other_binary_versions() {
        let mut ck = build_checkpoint(
            (1, 2),
            300,
            Vec::new(),
            vec![EnvStateRepr {
                tag: "Env".to_string(),
                ints: Vec::new(),
                floats: Vec::new(),
                inner: Vec::new(),
            }],
            Vec::new(),
            5,
            6,
            1,
        );
        ck.version = SEARCH_CHECKPOINT_VERSION + 1;
        let err = SearchCheckpoint::decode(&ck.to_bytes()).unwrap_err();
        assert!(matches!(err, CheckpointError::Parse(_)), "{err}");
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(matches!(
            SearchCheckpoint::from_json("not json"),
            Err(CheckpointError::Parse(_))
        ));
        assert!(matches!(
            SearchCheckpoint::from_json("{\"version\": 2}"),
            Err(CheckpointError::Parse(_))
        ));
    }

    #[test]
    fn fingerprint_ignores_threads_and_fault_plan() {
        let base = CoSearchConfig::tiny(3, 12, 12, 3);
        let mut threaded = base.clone();
        threaded.threads = Some(2);
        let mut faulted = base.clone();
        faulted.fault.plan = crate::fault::FaultPlan::none().abort_at(3);
        faulted.fault.sentinel = true;
        let mut different = base.clone();
        different.total_steps += 1;

        assert_eq!(config_fingerprint(&base), config_fingerprint(&threaded));
        assert_eq!(config_fingerprint(&base), config_fingerprint(&faulted));
        assert_ne!(config_fingerprint(&base), config_fingerprint(&different));
    }
}
