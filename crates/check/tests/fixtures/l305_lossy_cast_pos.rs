//! Positive fixture: numeric `as` casts in a checkpoint-serialization
//! path must fire A3CS-L305 (only when scanned under a checkpoint path).
pub fn write_f32(v: f32) -> u32 {
    v as u32
}

pub fn read_len(raw: u64) -> usize {
    raw as usize
}
