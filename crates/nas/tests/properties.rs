//! Property tests for the NAS machinery: Gumbel sampling statistics,
//! architecture parameters and supernet/derivation consistency.

use a3cs_nas::{derive_backbone, ArchParams, GumbelSoftmax, SuperNet, SupernetConfig, ALL_OPS};
use a3cs_nn::Module;
use a3cs_tensor::{Tape, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn soft_samples_are_distributions(
        seed in 0u64..10_000,
        tau in 0.2f32..10.0,
        logits in prop::collection::vec(-3.0f32..3.0, 2..12),
    ) {
        let mut gs = GumbelSoftmax::new(seed);
        let p = gs.soft(&logits, tau);
        prop_assert!((p.sum() - 1.0).abs() < 1e-4);
        prop_assert!(p.data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn hard_sample_is_a_valid_index(
        seed in 0u64..10_000,
        logits in prop::collection::vec(-3.0f32..3.0, 2..12),
    ) {
        let mut gs = GumbelSoftmax::new(seed);
        prop_assert!(gs.hard(&logits, 1.0) < logits.len());
    }

    #[test]
    fn arch_argmax_tracks_injected_preference(
        cells in 1usize..8,
        target_cell in 0usize..8,
        target_op in 0usize..9,
    ) {
        let target_cell = target_cell % cells;
        let arch = ArchParams::new(cells, 9);
        arch.cell(target_cell).update(|t| t.data_mut()[target_op] = 4.0);
        prop_assert_eq!(arch.argmax()[target_cell], target_op);
    }

    #[test]
    fn derivation_matches_supernet_argmax_structure(seed in 0u64..200) {
        let cfg = SupernetConfig::tiny(3, 12, 12);
        let sn = SuperNet::new(cfg, seed);
        // Randomise α.
        for cell in 0..sn.num_cells() {
            sn.arch().cell(cell).set_value(Tensor::randn(&[9], 1.0, seed + cell as u64));
        }
        let derived = derive_backbone(&cfg, &sn.most_likely_arch(), seed + 1);
        let sn_descs = sn.most_likely_layer_descs();
        let dv_descs = derived.layer_descs();
        prop_assert_eq!(sn_descs.len(), dv_descs.len());
        for (a, b) in sn_descs.iter().zip(dv_descs.iter()) {
            prop_assert_eq!(a.op, b.op);
        }
    }

    #[test]
    fn training_forward_always_yields_finite_features(
        seed in 0u64..100,
        top_k in 1usize..4,
    ) {
        let mut cfg = SupernetConfig::tiny(3, 12, 12);
        cfg.top_k = top_k;
        let sn = SuperNet::new(cfg, seed);
        let tape = Tape::new();
        let x = tape.leaf(Tensor::randn(&[1, 3, 12, 12], 0.3, seed + 7));
        let y = sn.forward(&tape, &x, true);
        prop_assert!(y.value().all_finite());
        let sampled = sn.last_sampled_indices();
        prop_assert_eq!(sampled.len(), sn.num_cells());
        prop_assert!(sampled.iter().all(|&i| i < ALL_OPS.len()));
    }

    #[test]
    fn mean_entropy_is_bounded_by_uniform(cells in 1usize..6) {
        let arch = ArchParams::new(cells, 9);
        let uniform_entropy = 9.0f32.ln();
        prop_assert!((arch.mean_entropy() - uniform_entropy).abs() < 1e-4);
        // Sharpening any cell can only reduce the mean entropy.
        arch.cell(0).update(|t| t.data_mut()[0] = 6.0);
        prop_assert!(arch.mean_entropy() <= uniform_entropy);
    }
}
