//! Parallel-vs-sequential equivalence: the deterministic parallel layer
//! must produce bit-identical results at every thread count — rollouts,
//! evaluation scores and conv2d forward/backward, same seeds throughout.

use a3cs::core::DegradationLadder;
use a3cs::drl::{collect_rollout, evaluate, ActorCritic, EvalProtocol, Rollout};
use a3cs::envs::{make_env, Environment};
use a3cs::nn::resnet;
use a3cs::tensor::{Conv2dGeometry, Tape, Tensor};
use proptest::prelude::*;

fn breakout(seed: u64) -> Box<dyn Environment> {
    make_env("Breakout", seed).expect("Breakout exists")
}

fn resnet20_agent(seed: u64) -> ActorCritic {
    let backbone = resnet(20, 3, 12, 12, 8, 32, seed);
    ActorCritic::new(Box::new(backbone), 32, (3, 12, 12), 3, seed)
}

fn bits(data: &[f32]) -> Vec<u32> {
    data.iter().map(|x| x.to_bits()).collect()
}

fn assert_rollouts_identical(a: &Rollout, b: &Rollout) {
    assert_eq!(a.actions, b.actions);
    assert_eq!(a.dones, b.dones);
    assert_eq!(bits(&a.rewards), bits(&b.rewards));
    assert_eq!(bits(&a.observations), bits(&b.observations));
}

#[test]
fn rollouts_bit_identical_across_thread_counts() {
    let agent = resnet20_agent(1);
    let run = || collect_rollout(&agent, &breakout, 4, 5, 17);
    let seq = threadpool::with_threads(1, run);
    let par = threadpool::with_threads(4, run);
    assert_rollouts_identical(&seq, &par);
}

#[test]
fn eval_scores_bit_identical_across_thread_counts() {
    let agent = resnet20_agent(2);
    let protocol = EvalProtocol {
        episodes: 4,
        max_steps: 50,
        ..EvalProtocol::default()
    };
    let run = || evaluate(&agent, &breakout, &protocol);
    let seq = threadpool::with_threads(1, run);
    let par = threadpool::with_threads(4, run);
    assert_eq!(seq.to_bits(), par.to_bits());
}

#[test]
fn conv2d_forward_backward_bit_identical_across_thread_counts() {
    let geom = Conv2dGeometry {
        in_channels: 16,
        out_channels: 16,
        kernel: 3,
        stride: 1,
        padding: 1,
        in_h: 12,
        in_w: 12,
    };
    let x_t = Tensor::randn(&[8, 16, 12, 12], 0.5, 3);
    let w_t = Tensor::randn(&[16, 16, 3, 3], 0.5, 4);
    let run = || {
        let tape = Tape::new();
        let x = tape.leaf(x_t.clone());
        let w = tape.leaf(w_t.clone());
        let y = x.conv2d(&w, geom);
        y.square().sum().backward();
        let grad = |g: Option<Tensor>| bits(g.expect("leaf gets a gradient").data());
        (bits(y.value().data()), grad(w.grad()), grad(x.grad()))
    };
    let seq = threadpool::with_threads(1, run);
    let par = threadpool::with_threads(4, run);
    assert_eq!(seq, par);
}

#[test]
fn rollouts_bit_identical_at_every_ladder_level() {
    // The degradation ladder halves the thread count on repeated lane
    // faults: 8 → 4 → 2 → 1. A supervised run that steps mid-search mixes
    // phases executed at different levels, so equivalence must hold at
    // every rung the ladder can visit — not just the endpoints.
    let agent = resnet20_agent(7);
    let run = || collect_rollout(&agent, &breakout, 4, 5, 23);
    let mut ladder = DegradationLadder::new(8, 1);
    let reference = threadpool::with_threads(ladder.threads(), run);
    while let Some(next) = ladder.record_faults(1) {
        let stepped = threadpool::with_threads(next, run);
        assert_rollouts_identical(&reference, &stepped);
    }
    assert_eq!(ladder.threads(), 1, "ladder bottoms out at serial");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // The ladder is pure state: for any starting width, threshold and
    // fault schedule, its step sequence is deterministic, strictly
    // halving, never below one thread, and inert once the threshold is
    // zero (disabled) or the pool is already serial.
    #[test]
    fn ladder_step_sequence_is_deterministic_and_halving(
        threads in 1usize..=64,
        threshold in 0u32..=5,
        faults in prop::collection::vec(0u32..=6, 0..12),
    ) {
        let mut a = DegradationLadder::new(threads, threshold);
        let mut b = DegradationLadder::new(threads, threshold);
        let mut width = a.threads();
        prop_assert_eq!(width, threads.max(1));
        for &n in &faults {
            let step_a = a.record_faults(u64::from(n));
            let step_b = b.record_faults(u64::from(n));
            // Same inputs, same steps: the ladder has no hidden state.
            prop_assert_eq!(step_a, step_b);
            if threshold == 0 || width == 1 {
                prop_assert_eq!(step_a, None);
            }
            if let Some(next) = step_a {
                // Each announced step halves at least once, and halving
                // repeatedly can only land on a smaller, nonzero width.
                prop_assert!(next >= 1 && next <= width / 2);
                width = next;
            }
            prop_assert_eq!(a.threads(), width);
        }
    }
}

#[test]
fn full_agent_forward_bit_identical_across_thread_counts() {
    // End-to-end: every conv, depthwise conv and GEMM in a ResNet-20
    // forward pass, batch of 8.
    let agent = resnet20_agent(5);
    let obs_len = 3 * 12 * 12;
    let batch: Vec<f32> = (0..8 * obs_len).map(|i| (i % 13) as f32 * 0.07).collect();
    let run = || bits(agent.policy_probs(&batch, 8).data());
    let seq = threadpool::with_threads(1, run);
    let par = threadpool::with_threads(4, run);
    assert_eq!(seq, par);
}
