//! Fault tolerance: a co-search killed mid-run and resumed from disk must
//! finish bit-identically to one that never stopped, injected NaN losses
//! must trigger rollback without changing the trajectory, and corrupted
//! checkpoint files must fall back to an older good one — all driven by
//! the deterministic fault plan, with every action in the robustness log.

use a3cs::core::{
    CoSearch, CoSearchConfig, CoSearchResult, FaultPlan, RobustnessEventKind, SearchError,
};
use a3cs::envs::{Breakout, Environment};
use std::path::PathBuf;

fn factory(seed: u64) -> Box<dyn Environment> {
    Box::new(Breakout::new(seed))
}

fn cosearch(cfg: CoSearchConfig, seed: u64) -> CoSearch {
    CoSearch::try_new(cfg, seed).expect("test config passes pre-flight")
}

fn tiny_config(total_steps: u64) -> CoSearchConfig {
    let mut cfg = CoSearchConfig::tiny(3, 12, 12, 3);
    cfg.total_steps = total_steps;
    cfg.eval_every = 100;
    cfg.eval_episodes = 2;
    cfg.eval_max_steps = 40;
    cfg.das_final_iters = 50;
    cfg
}

fn test_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("a3cs_ft_{}_{}", std::process::id(), test));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn curve_bits(curve: &[(u64, f32)]) -> Vec<(u64, u32)> {
    curve.iter().map(|&(s, v)| (s, v.to_bits())).collect()
}

fn assert_results_bit_identical(a: &CoSearchResult, b: &CoSearchResult) {
    assert_eq!(format!("{:?}", a.arch), format!("{:?}", b.arch));
    assert_eq!(
        format!("{:?}", a.accelerator),
        format!("{:?}", b.accelerator)
    );
    assert_eq!(curve_bits(&a.score_curve), curve_bits(&b.score_curve));
    assert_eq!(
        curve_bits(&a.alpha_entropy_curve),
        curve_bits(&b.alpha_entropy_curve)
    );
    assert_eq!(a.steps, b.steps);
    assert_eq!(a.report.fps.to_bits(), b.report.fps.to_bits());
    assert_eq!(a.report.dsp_used, b.report.dsp_used);
}

#[test]
fn crash_resume_is_bit_identical_to_uninterrupted_run() {
    let reference = cosearch(tiny_config(300), 11).run(&factory, None);
    assert!(reference.robustness.is_empty());

    // Kill the loop at iteration 7 (the checkpoint on disk is iteration 6).
    let dir = test_dir("crash_resume");
    let mut cfg = tiny_config(300);
    cfg.fault.checkpoint_dir = Some(dir.clone());
    cfg.fault.keep = 2;
    cfg.fault.plan = FaultPlan::none().abort_at(7);
    let err = cosearch(cfg.clone(), 11)
        .run_guarded(&factory, None)
        .expect_err("abort fault must surface");
    assert_eq!(err, SearchError::Aborted { iteration: 7 });

    // A fresh CoSearch on the same config/seed resumes from disk.
    cfg.fault.plan = FaultPlan::none();
    let resumed = cosearch(cfg, 11)
        .run_guarded(&factory, None)
        .expect("resumed run completes");
    assert_eq!(resumed.robustness.count(RobustnessEventKind::Resumed), 1);
    assert_results_bit_identical(&reference, &resumed);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn nan_loss_rolls_back_and_stays_bit_identical() {
    let reference = cosearch(tiny_config(300), 7).run(&factory, None);

    // Poison the loss at iteration 5; the sentinel catches it before any
    // optimiser step, rolls back to the in-memory checkpoint and replays.
    // With the default lr_backoff of 1.0 the replay is exact, so the final
    // result matches the undisturbed run bit for bit.
    let mut cfg = tiny_config(300);
    cfg.fault.sentinel = true;
    cfg.fault.max_rollbacks = 3;
    cfg.fault.plan = FaultPlan::none().nan_loss_at(5);
    let mut search = cosearch(cfg, 7);
    let result = search
        .run_guarded(&factory, None)
        .expect("run survives the injected NaN");

    let log = &result.robustness;
    assert_eq!(log.count(RobustnessEventKind::FaultInjected), 1);
    assert_eq!(log.count(RobustnessEventKind::NonFiniteLoss), 1);
    assert_eq!(log.count(RobustnessEventKind::RolledBack), 1);
    assert_results_bit_identical(&reference, &result);
}

#[test]
fn exhausted_rollback_budget_degrades_without_panicking() {
    // Two NaN injections at the same iteration: the first rolls back (using
    // the whole budget of 1), the replayed iteration is poisoned again, and
    // the loop degrades to skip-and-continue instead of looping forever.
    let mut cfg = tiny_config(200);
    cfg.fault.sentinel = true;
    cfg.fault.max_rollbacks = 1;
    cfg.fault.plan = FaultPlan::none().nan_loss_at(2).nan_loss_at(2);
    let mut search = cosearch(cfg, 21);
    let result = search
        .run_guarded(&factory, None)
        .expect("degraded run still completes");

    let log = &result.robustness;
    assert_eq!(log.count(RobustnessEventKind::NonFiniteLoss), 2);
    assert_eq!(log.count(RobustnessEventKind::RolledBack), 1);
    assert_eq!(log.count(RobustnessEventKind::RollbackBudgetExhausted), 1);
    assert!(result.steps >= 200);
}

#[test]
fn resume_falls_back_past_corrupted_checkpoints() {
    let reference = cosearch(tiny_config(300), 3).run(&factory, None);

    // Corrupt the two newest checkpoints (torn write at iteration 4, bit
    // rot at iteration 5), then crash at 6: recovery must skip both and
    // resume from iteration 3.
    let dir = test_dir("corrupt_fallback");
    let mut cfg = tiny_config(300);
    cfg.fault.checkpoint_dir = Some(dir.clone());
    cfg.fault.keep = 3;
    cfg.fault.plan = FaultPlan::none()
        .truncate_checkpoint_at(4, 10)
        .flip_checkpoint_byte_at(5, 40)
        .abort_at(6);
    let err = cosearch(cfg.clone(), 3)
        .run_guarded(&factory, None)
        .expect_err("abort fault must surface");
    assert!(matches!(err, SearchError::Aborted { iteration: 6 }));

    cfg.fault.plan = FaultPlan::none();
    let resumed = cosearch(cfg, 3)
        .run_guarded(&factory, None)
        .expect("resumed run completes");
    let log = &resumed.robustness;
    assert_eq!(
        log.count(RobustnessEventKind::CorruptCheckpointSkipped),
        2,
        "events: {:?}",
        log.events
    );
    assert_eq!(log.count(RobustnessEventKind::Resumed), 1);
    assert_results_bit_identical(&reference, &resumed);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
#[should_panic(expected = "schedules an abort")]
fn run_rejects_abort_plans() {
    let mut cfg = tiny_config(100);
    cfg.fault.plan = FaultPlan::none().abort_at(0);
    let _ = cosearch(cfg, 1).run(&factory, None);
}
