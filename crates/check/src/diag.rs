//! The diagnostic framework: stable codes, severities and reports.
//!
//! Every check in this crate reports findings as [`Diagnostic`] values
//! collected into a [`Report`]. Codes are stable strings (`A3CS-Exxx` /
//! `A3CS-Wxxx`) so callers and tests can match on *what* went wrong
//! without parsing prose; messages are free-form and may change.

use std::fmt;

/// Stable diagnostic codes. The numbering is namespaced:
///
/// - `A3CS-E0xx` — shape-inference errors (architectures/networks);
/// - `A3CS-E1xx` — accelerator-legality errors (configs/search spaces);
/// - `A3CS-W2xx` — numerics/performance warnings (legal but hazardous).
///
/// Codes are append-only: a published code never changes meaning.
pub mod codes {
    /// A convolution was applied to a flat (non-image) feature vector.
    pub const SHAPE_NOT_IMAGE: &str = "A3CS-E001";
    /// A layer's declared input dims disagree with the propagated shape.
    pub const SHAPE_INPUT_MISMATCH: &str = "A3CS-E002";
    /// A kernel exceeds its padded input extent (output would underflow).
    pub const SHAPE_KERNEL_TOO_LARGE: &str = "A3CS-E003";
    /// A propagated shape or structural parameter has a zero dimension.
    pub const SHAPE_ZERO_DIM: &str = "A3CS-E004";
    /// A fully connected layer's `in_features` disagree with its input.
    pub const SHAPE_FC_MISMATCH: &str = "A3CS-E005";
    /// The supernet structure is invalid (cell count, `top_k`, …).
    pub const ARCH_BAD_STRUCTURE: &str = "A3CS-E006";
    /// An operator-choice vector has the wrong arity for the cell plan.
    pub const ARCH_CHOICE_ARITY: &str = "A3CS-E007";

    /// Total PE count exceeds the target's DSP budget.
    pub const ACCEL_DSP_OVERFLOW: &str = "A3CS-E101";
    /// Total on-chip buffer allocation exceeds the target's BRAM budget.
    pub const ACCEL_BRAM_OVERFLOW: &str = "A3CS-E102";
    /// The layer→chunk assignment does not cover every network layer.
    pub const ACCEL_ASSIGNMENT_ARITY: &str = "A3CS-E103";
    /// An assignment entry indexes a chunk that does not exist.
    pub const ACCEL_ASSIGNMENT_RANGE: &str = "A3CS-E104";
    /// The assignment is not contiguous (chunks must own layer intervals).
    pub const ACCEL_ASSIGNMENT_NONCONTIGUOUS: &str = "A3CS-E105";
    /// A tiling factor is zero (no legal loop nest).
    pub const ACCEL_ILLEGAL_TILING: &str = "A3CS-E106";
    /// A chunk is degenerate (zero PE rows/cols or a zero buffer bank).
    pub const ACCEL_DEGENERATE_CHUNK: &str = "A3CS-E107";
    /// The accelerator has no chunks (or the space offers no options).
    pub const ACCEL_NO_CHUNKS: &str = "A3CS-E108";
    /// The deepest derivable network exceeds the assignment knob count.
    pub const ACCEL_DEPTH_EXCEEDS_KNOBS: &str = "A3CS-E109";

    /// A tiling's double-buffered working set cannot fit the chunk's
    /// buffers even for the smallest (1×1, stride-1) layer: every layer
    /// will thrash.
    pub const NUM_GUARANTEED_THRASH: &str = "A3CS-W201";
    /// A chunk has no layers assigned to it (resources are wasted).
    pub const NUM_IDLE_CHUNK: &str = "A3CS-W202";

    /// `HashMap`/`HashSet` in non-test code (iteration order is seeded
    /// per process — any traversal can reorder results between runs).
    pub const LINT_NONDET_COLLECTION: &str = "A3CS-L301";
    /// A wall-clock read (`Instant::now`, `SystemTime`) outside the
    /// telemetry/watchdog/bench surfaces.
    pub const LINT_WALL_CLOCK: &str = "A3CS-L302";
    /// A raw `std::thread` spawn outside the deterministic pool and the
    /// stall watchdog.
    pub const LINT_THREAD_SPAWN: &str = "A3CS-L303";
    /// Ambient (entropy-seeded) RNG construction outside the seeded
    /// `SplitMix64`/`StdRng` plumbing.
    pub const LINT_AMBIENT_RNG: &str = "A3CS-L304";
    /// A numeric `as` cast inside a checkpoint-serialization path.
    pub const LINT_LOSSY_CAST: &str = "A3CS-L305";
    /// An `unsafe` block or function (ratcheted; waivers need reasons).
    pub const LINT_UNSAFE_BLOCK: &str = "A3CS-L306";
    /// An `.unwrap()` call outside tests.
    pub const LINT_UNWRAP: &str = "A3CS-L310";
    /// An `.expect(...)` call outside tests.
    pub const LINT_EXPECT: &str = "A3CS-L311";
    /// A `panic!` invocation outside tests.
    pub const LINT_PANIC: &str = "A3CS-L312";
    /// A `todo!` invocation outside tests.
    pub const LINT_TODO: &str = "A3CS-L313";
    /// An `unimplemented!` invocation outside tests.
    pub const LINT_UNIMPLEMENTED: &str = "A3CS-L314";
    /// A value-returning `&self` method without `#[must_use]`.
    pub const LINT_MISSING_MUST_USE: &str = "A3CS-L315";
}

/// How severe a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Legal but suspicious; execution may proceed.
    Warning,
    /// Illegal input; the checked object must not be executed.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding: a stable code, a severity and a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code from [`codes`].
    pub code: &'static str,
    /// Severity level.
    pub severity: Severity,
    /// Human-readable description (free-form; not stable).
    pub message: String,
}

impl Diagnostic {
    /// An error-severity diagnostic.
    #[must_use]
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
        }
    }

    /// A warning-severity diagnostic.
    #[must_use]
    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)
    }
}

/// The outcome of a static check: zero or more diagnostics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty (clean) report.
    #[must_use]
    pub fn new() -> Self {
        Report::default()
    }

    /// Append one diagnostic.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// Append every diagnostic of `other`.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// All diagnostics in emission order.
    #[must_use]
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Error-severity diagnostics only.
    #[must_use]
    pub fn errors(&self) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect()
    }

    /// Warning-severity diagnostics only.
    #[must_use]
    pub fn warnings(&self) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .collect()
    }

    /// `true` when the report carries no errors (warnings are allowed).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.errors().is_empty()
    }

    /// `true` when any diagnostic carries `code`.
    #[must_use]
    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Serialise the report as a JSON array of
    /// `{code, severity, message}` objects.
    #[must_use]
    pub fn to_json(&self) -> String {
        let items: Vec<serde::Value> = self
            .diagnostics
            .iter()
            .map(|d| {
                serde::Value::Object(vec![
                    ("code".to_string(), serde::Value::Str(d.code.to_string())),
                    (
                        "severity".to_string(),
                        serde::Value::Str(d.severity.to_string()),
                    ),
                    (
                        "message".to_string(),
                        serde::Value::Str(d.message.clone()),
                    ),
                ])
            })
            .collect();
        serde_json::to_string(&serde::Value::Array(items)).unwrap_or_default()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return write!(f, "clean: no diagnostics");
        }
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_report_has_no_errors() {
        let report = Report::new();
        assert!(report.is_clean());
        assert!(report.errors().is_empty());
        assert_eq!(report.to_string(), "clean: no diagnostics");
    }

    #[test]
    fn warnings_do_not_dirty_a_report() {
        let mut report = Report::new();
        report.push(Diagnostic::warning(codes::NUM_IDLE_CHUNK, "chunk 2 idle"));
        assert!(report.is_clean());
        assert_eq!(report.warnings().len(), 1);
        assert!(report.has_code(codes::NUM_IDLE_CHUNK));
    }

    #[test]
    fn errors_dirty_a_report_and_display_codes() {
        let mut report = Report::new();
        report.push(Diagnostic::error(codes::ACCEL_DSP_OVERFLOW, "1200 > 900"));
        assert!(!report.is_clean());
        let text = report.to_string();
        assert!(text.contains("error[A3CS-E101]"), "{text}");
    }

    #[test]
    fn json_round_trips_through_serde_json() {
        let mut report = Report::new();
        report.push(Diagnostic::error(codes::SHAPE_ZERO_DIM, "zero height"));
        report.push(Diagnostic::warning(codes::NUM_IDLE_CHUNK, "idle"));
        let json = report.to_json();
        let value: serde::Value = serde_json::from_str(&json).expect("valid json");
        let items = value.as_array().expect("array");
        assert_eq!(items.len(), 2);
        assert_eq!(items[0]["code"], "A3CS-E004");
        assert_eq!(items[0]["severity"], "error");
        assert_eq!(items[1]["severity"], "warning");
    }

    #[test]
    fn merge_concatenates() {
        let mut a = Report::new();
        a.push(Diagnostic::error(codes::SHAPE_ZERO_DIM, "x"));
        let mut b = Report::new();
        b.push(Diagnostic::error(codes::ACCEL_NO_CHUNKS, "y"));
        a.merge(b);
        assert_eq!(a.diagnostics().len(), 2);
    }
}
