//! Negative fixture: safe indexing never fires A3CS-L306, and a waived
//! unsafe block with a written justification is suppressed.
pub fn peek(v: &[u8]) -> Option<u8> {
    v.first().copied()
}

pub fn peek_waived(v: &[u8]) -> u8 {
    // SAFETY: callers pass non-empty slices; checked by the assert.
    assert!(!v.is_empty());
    // a3cs::allow(unsafe-block): reviewed — bounds proven by the assert
    // directly above.
    unsafe { *v.get_unchecked(0) }
}
