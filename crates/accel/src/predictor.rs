//! Analytical accelerator performance predictor (DNN-Chip-Predictor
//! style): latency, throughput, resource and energy estimates for a
//! network running on a chunk-pipelined accelerator.

use crate::template::{AcceleratorConfig, ChunkConfig, Dataflow};
use crate::zc706::FpgaTarget;
use a3cs_nn::{LayerDesc, LayerOp};
use serde::{Deserialize, Serialize};

/// Bytes per operand (16-bit fixed point, the usual FPGA deployment width).
const BYTES: f64 = 2.0;
/// Energy per MAC, pJ (relative units; only ratios matter).
const E_MAC: f64 = 1.0;
/// Energy per DRAM byte, pJ.
const E_DRAM: f64 = 160.0;
/// Energy per on-chip buffer byte, pJ.
const E_SRAM: f64 = 6.0;
/// Per-layer fixed scheduling overhead, cycles.
const LAYER_OVERHEAD: f64 = 256.0;
/// Traffic multiplier applied when a layer's tiles overflow the buffers
/// (thrashing penalty; keeps the search landscape smooth instead of a
/// hard infeasibility cliff).
const THRASH_FACTOR: f64 = 4.0;

/// Canonical loop dimensions of one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerDims {
    /// Output channels `M`.
    pub m: usize,
    /// Input channels `N` (1 for depthwise).
    pub n: usize,
    /// Output rows `R`.
    pub r: usize,
    /// Output cols `C`.
    pub c: usize,
    /// Kernel size `K`.
    pub k: usize,
    /// Stride.
    pub stride: usize,
    /// Depthwise flag (weights are per-channel).
    pub depthwise: bool,
}

impl LayerDims {
    /// Extract canonical dimensions from a layer descriptor.
    #[must_use]
    pub fn from_desc(desc: &LayerDesc) -> Self {
        match desc.op {
            LayerOp::Conv(d) => LayerDims {
                m: d.out_ch,
                n: d.in_ch,
                r: d.out_h(),
                c: d.out_w(),
                k: d.kernel,
                stride: d.stride,
                depthwise: false,
            },
            LayerOp::DepthwiseConv(d) => LayerDims {
                m: d.out_ch,
                n: 1,
                r: d.out_h(),
                c: d.out_w(),
                k: d.kernel,
                stride: d.stride,
                depthwise: true,
            },
            LayerOp::Fc {
                in_features,
                out_features,
            } => LayerDims {
                m: out_features,
                n: in_features,
                r: 1,
                c: 1,
                k: 1,
                stride: 1,
                depthwise: false,
            },
        }
    }

    /// MAC count.
    #[must_use]
    pub fn macs(&self) -> f64 {
        self.m as f64 * self.n as f64 * (self.k * self.k) as f64 * (self.r * self.c) as f64
    }

    /// Input-activation footprint in bytes. `R` output rows at stride `s`
    /// with a `K`-wide kernel read an input halo of `(R-1)·s + K` rows
    /// (the first output needs `K` rows, each further output `s` more) —
    /// an FC layer (`r = c = k = stride = 1`) reads exactly `n` operands.
    #[must_use]
    pub fn input_bytes(&self) -> f64 {
        let in_h = (self.r.saturating_sub(1)) * self.stride + self.k;
        let in_w = (self.c.saturating_sub(1)) * self.stride + self.k;
        let in_ch = if self.depthwise { self.m } else { self.n };
        in_ch as f64 * (in_h * in_w) as f64 * BYTES
    }

    /// Weight footprint in bytes.
    #[must_use]
    pub fn weight_bytes(&self) -> f64 {
        let n = if self.depthwise { 1 } else { self.n };
        self.m as f64 * n as f64 * (self.k * self.k) as f64 * BYTES
    }

    /// Output-activation footprint in bytes.
    #[must_use]
    pub fn output_bytes(&self) -> f64 {
        self.m as f64 * (self.r * self.c) as f64 * BYTES
    }
}

/// Performance/resource estimate for one accelerator on one network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    /// Pipeline-limited throughput, frames per second.
    pub fps: f64,
    /// Latency of the slowest chunk (the pipeline interval), cycles.
    pub bottleneck_cycles: f64,
    /// End-to-end single-frame latency (sum of chunk latencies), cycles.
    pub total_latency_cycles: f64,
    /// Per-chunk latencies, cycles.
    pub chunk_cycles: Vec<f64>,
    /// DSP usage (1 DSP per PE).
    pub dsp_used: usize,
    /// On-chip buffer usage, KiB.
    pub bram_kb_used: usize,
    /// Energy estimate per frame, relative pJ units.
    pub energy: f64,
    /// Whether DSP and BRAM budgets are met.
    pub feasible: bool,
    /// Number of layers whose tiles overflowed the buffers (thrashing).
    pub thrashing_layers: usize,
}

/// Cycle, energy and thrashing contribution of one chunk's assigned
/// layers — the memoizable unit of [`PerfModel::evaluate`] (see
/// [`PerfModel::chunk_partial`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkPartial {
    /// Total cycles over the chunk's assigned layers.
    pub cycles: f64,
    /// Energy contribution of those layers, relative pJ units.
    pub energy: f64,
    /// Assigned layers whose tiles overflowed the buffers.
    pub thrashing: usize,
}

/// Weights of the scalar search cost derived from a [`PerfReport`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostWeights {
    /// Multiplier on resource violations (relative to the budget).
    pub resource_penalty: f64,
    /// Weight of the energy term relative to latency (0 = latency only).
    pub energy_weight: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        CostWeights {
            resource_penalty: 10.0,
            energy_weight: 0.0,
        }
    }
}

/// The analytical performance model.
///
/// The model follows the roofline-style methodology of DNN-Chip Predictor:
/// per layer, compute cycles are `MACs / (active PEs × NoC efficiency)` and
/// memory cycles are `DRAM traffic / bandwidth share`, where traffic is
/// derived from the tiling trip counts of the chunk's dataflow; the two
/// overlap under double buffering, so the layer costs their maximum.
/// Chunks run as a pipeline: throughput is set by the slowest chunk.
pub struct PerfModel;

impl PerfModel {
    /// Cycles one layer takes on `chunk`, given `bw_share` DRAM bytes per
    /// cycle. Also reports whether the layer's tiles overflowed the
    /// buffers.
    #[must_use]
    pub fn layer_cycles(chunk: &ChunkConfig, dims: &LayerDims, bw_share: f64) -> (f64, bool) {
        let t = &chunk.tiling;
        let tm = t.tm.min(dims.m).max(1);
        let tn = t.tn.min(dims.n).max(1);
        let tr = t.tr.min(dims.r).max(1);
        let tc = t.tc.min(dims.c).max(1);

        // --- Compute: PEs map output channels × output pixels.
        let lanes_ch = chunk.pe.rows.min(tm).max(1);
        let lanes_px = chunk.pe.cols.min(tr * tc).max(1);
        let lanes = (lanes_ch * lanes_px) as f64;
        let mut compute = dims.macs() / (lanes * chunk.noc.efficiency());
        // Systolic fill overhead per tile wave.
        let tiles = (div_ceil(dims.m, tm) * div_ceil(dims.n, tn) * div_ceil(dims.r, tr)
            * div_ceil(dims.c, tc)) as f64;
        compute += tiles * (chunk.pe.rows + chunk.pe.cols) as f64 * 0.1;

        // --- Memory traffic via tiling trip counts, adjusted by dataflow.
        let trips_in_base = div_ceil(dims.m, tm) as f64;
        let trips_w_base = (div_ceil(dims.r, tr) * div_ceil(dims.c, tc)) as f64;
        let trips_out_base = (2 * div_ceil(dims.n, tn) - 1) as f64;
        let (trips_in, trips_w, trips_out) = match chunk.dataflow {
            Dataflow::OutputStationary => (trips_in_base, trips_w_base, 1.0),
            Dataflow::WeightStationary => (trips_in_base, 1.0, trips_out_base),
            Dataflow::RowStationary => (
                (trips_in_base / 2.0).max(1.0),
                (trips_w_base / 2.0).max(1.0),
                div_ceil(dims.n, tn) as f64,
            ),
        };
        let mut traffic = dims.input_bytes() * trips_in
            + dims.weight_bytes() * trips_w
            + dims.output_bytes() * trips_out;

        // --- Buffer feasibility (double-buffered tiles must fit). A tile
        // of `Tr` output rows reads a `(Tr-1)·stride + K` input halo.
        let in_tile = tn as f64
            * (((tr - 1) * dims.stride + dims.k) * ((tc - 1) * dims.stride + dims.k)) as f64
            * BYTES;
        let w_tile = if dims.depthwise {
            tm as f64 * (dims.k * dims.k) as f64 * BYTES
        } else {
            tm as f64 * tn as f64 * (dims.k * dims.k) as f64 * BYTES
        };
        let out_tile = tm as f64 * (tr * tc) as f64 * BYTES;
        let thrash = 2.0 * in_tile > chunk.buffers.input_kb as f64 * 1024.0
            || 2.0 * w_tile > chunk.buffers.weight_kb as f64 * 1024.0
            || 2.0 * out_tile > chunk.buffers.output_kb as f64 * 1024.0;
        if thrash {
            traffic *= THRASH_FACTOR;
        }

        let memory = traffic / bw_share.max(1e-9);
        (compute.max(memory) + LAYER_OVERHEAD, thrash)
    }

    /// Evaluate `accel` running `layers` on `target`.
    ///
    /// # Panics
    ///
    /// Panics if the assignment length does not match `layers`, or indexes
    /// a missing chunk.
    #[must_use]
    pub fn evaluate(
        accel: &AcceleratorConfig,
        layers: &[LayerDesc],
        target: &FpgaTarget,
    ) -> PerfReport {
        let dims: Vec<LayerDims> = layers.iter().map(LayerDims::from_desc).collect();
        Self::evaluate_dims(accel, &dims, target)
    }

    /// [`PerfModel::evaluate`] over pre-extracted [`LayerDims`] — the form
    /// the memoizing model (`memo.rs`) reuses so cached and direct paths
    /// share one code path bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if the assignment length does not match `dims`, or indexes a
    /// missing chunk.
    #[must_use]
    pub fn evaluate_dims(
        accel: &AcceleratorConfig,
        dims: &[LayerDims],
        target: &FpgaTarget,
    ) -> PerfReport {
        assert_eq!(
            accel.assignment.len(),
            dims.len(),
            "assignment must cover every layer"
        );
        assert!(accel.assignment_valid(), "assignment indexes missing chunk");
        let assigned = Self::assigned_layers(accel);
        let bw_share = Self::bandwidth_share(accel, target);
        let partials: Vec<ChunkPartial> = accel
            .chunks
            .iter()
            .zip(assigned.iter())
            .map(|(chunk, layer_ids)| Self::chunk_partial(chunk, dims, layer_ids, bw_share))
            .collect();
        Self::assemble(accel, target, &partials)
    }

    /// Per-chunk lists of assigned layer indices, in layer order.
    ///
    /// # Panics
    ///
    /// Panics if an assignment entry indexes a missing chunk.
    #[must_use]
    pub fn assigned_layers(accel: &AcceleratorConfig) -> Vec<Vec<usize>> {
        let mut assigned: Vec<Vec<usize>> = vec![Vec::new(); accel.chunks.len()];
        for (layer, &chunk_idx) in accel.assignment.iter().enumerate() {
            assigned[chunk_idx].push(layer);
        }
        assigned
    }

    /// DRAM bytes per cycle available to each *active* chunk. Bandwidth is
    /// shared only among chunks with at least one assigned layer: a chunk
    /// that never issues a DRAM request consumes no bandwidth, so a
    /// 4-chunk design routing every layer to chunk 0 costs exactly what
    /// the 1-chunk design costs.
    #[must_use]
    pub fn bandwidth_share(accel: &AcceleratorConfig, target: &FpgaTarget) -> f64 {
        let mut active = vec![false; accel.chunks.len()];
        for &chunk_idx in &accel.assignment {
            active[chunk_idx] = true;
        }
        let n = active.iter().filter(|&&a| a).count().max(1);
        target.dram_bytes_per_cycle() / n as f64
    }

    /// Cycle, energy and thrashing contribution of the layers `assigned`
    /// to one chunk, accumulated in `assigned` order. This is the unit the
    /// transposition-table cache memoizes: its result depends only on the
    /// chunk's knobs, the assigned layers' dimensions and the bandwidth
    /// share.
    #[must_use]
    pub fn chunk_partial(
        chunk: &ChunkConfig,
        dims: &[LayerDims],
        assigned: &[usize],
        bw_share: f64,
    ) -> ChunkPartial {
        let mut partial = ChunkPartial {
            cycles: 0.0,
            energy: 0.0,
            thrashing: 0,
        };
        for &layer in assigned {
            let d = &dims[layer];
            let (cycles, thrash) = Self::layer_cycles(chunk, d, bw_share);
            partial.cycles += cycles;
            partial.thrashing += usize::from(thrash);
            let macs = d.macs();
            let traffic = d.input_bytes() + d.weight_bytes() + d.output_bytes();
            partial.energy += macs * (E_MAC + chunk.noc.energy_per_hop())
                + traffic * E_DRAM
                + macs * 0.1 * E_SRAM;
        }
        partial
    }

    /// Assemble a [`PerfReport`] from per-chunk partials (one per chunk,
    /// in chunk order). Shared by the direct and memoized paths so both
    /// produce bit-identical reports.
    #[must_use]
    pub fn assemble(
        accel: &AcceleratorConfig,
        target: &FpgaTarget,
        partials: &[ChunkPartial],
    ) -> PerfReport {
        let chunk_cycles: Vec<f64> = partials.iter().map(|p| p.cycles).collect();
        let bottleneck = chunk_cycles.iter().copied().fold(0.0, f64::max);
        let total: f64 = chunk_cycles.iter().sum();
        let energy: f64 = partials.iter().map(|p| p.energy).sum();
        let thrashing_layers: usize = partials.iter().map(|p| p.thrashing).sum();
        let dsp_used = accel.total_pes();
        let bram_kb_used = accel.total_buffer_kb();
        let feasible = dsp_used <= target.dsp_limit && bram_kb_used <= target.bram_kb_limit;
        PerfReport {
            fps: if bottleneck > 0.0 {
                target.clock_hz() / bottleneck
            } else {
                f64::INFINITY
            },
            bottleneck_cycles: bottleneck,
            total_latency_cycles: total,
            chunk_cycles,
            dsp_used,
            bram_kb_used,
            energy,
            feasible,
            thrashing_layers,
        }
    }

    /// Scalar search cost (`L_cost` of Eq. 4/9): pipeline-interval cycles,
    /// inflated by resource violations and optionally energy.
    #[must_use]
    pub fn cost(report: &PerfReport, target: &FpgaTarget, weights: &CostWeights) -> f64 {
        let dsp_over =
            (report.dsp_used as f64 - target.dsp_limit as f64).max(0.0) / target.dsp_limit as f64;
        let bram_over = (report.bram_kb_used as f64 - target.bram_kb_limit as f64).max(0.0)
            / target.bram_kb_limit as f64;
        let penalty = 1.0 + weights.resource_penalty * (dsp_over + bram_over);
        report.bottleneck_cycles * penalty + weights.energy_weight * report.energy
    }
}

fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b.max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::{BufferAlloc, NocTopology, PeArray, Tiling};
    use a3cs_nn::{ConvDims, LayerOp};

    fn conv_layer(in_ch: usize, out_ch: usize, hw: usize, k: usize) -> LayerDesc {
        LayerDesc {
            name: "l".into(),
            op: LayerOp::Conv(ConvDims {
                in_ch,
                out_ch,
                kernel: k,
                stride: 1,
                padding: k / 2,
                in_h: hw,
                in_w: hw,
            }),
        }
    }

    fn chunk(rows: usize, cols: usize) -> ChunkConfig {
        ChunkConfig {
            pe: PeArray { rows, cols },
            noc: NocTopology::Systolic,
            dataflow: Dataflow::OutputStationary,
            buffers: BufferAlloc {
                input_kb: 64,
                weight_kb: 64,
                output_kb: 32,
            },
            tiling: Tiling {
                tm: 16,
                tn: 16,
                tr: 8,
                tc: 8,
            },
        }
    }

    fn single_chunk_accel(rows: usize, cols: usize, layers: usize) -> AcceleratorConfig {
        AcceleratorConfig {
            chunks: vec![chunk(rows, cols)],
            assignment: vec![0; layers],
        }
    }

    #[test]
    fn more_pes_reduce_latency() {
        let layers = vec![conv_layer(16, 32, 16, 3); 4];
        let target = FpgaTarget::zc706();
        let small = PerfModel::evaluate(&single_chunk_accel(4, 4, 4), &layers, &target);
        let large = PerfModel::evaluate(&single_chunk_accel(16, 16, 4), &layers, &target);
        assert!(large.fps > small.fps, "{} !> {}", large.fps, small.fps);
    }

    #[test]
    fn dsp_budget_flags_infeasible() {
        let layers = vec![conv_layer(8, 8, 8, 3)];
        let target = FpgaTarget::zc706();
        let ok = PerfModel::evaluate(&single_chunk_accel(16, 16, 1), &layers, &target);
        assert!(ok.feasible);
        let over = AcceleratorConfig {
            chunks: vec![chunk(24, 16), chunk(24, 16), chunk(16, 16)],
            assignment: vec![0],
        };
        let bad = PerfModel::evaluate(&over, &layers, &target);
        assert!(bad.dsp_used > 900);
        assert!(!bad.feasible);
        // Cost punishes the violation.
        let w = CostWeights::default();
        assert!(
            PerfModel::cost(&bad, &target, &w)
                > bad.bottleneck_cycles
        );
    }

    #[test]
    fn pipeline_throughput_follows_bottleneck() {
        let layers = vec![conv_layer(16, 16, 16, 3), conv_layer(16, 16, 16, 3)];
        let target = FpgaTarget::zc706();
        // Balanced two-chunk pipeline beats one chunk doing both layers.
        let pipelined = AcceleratorConfig {
            chunks: vec![chunk(8, 8), chunk(8, 8)],
            assignment: vec![0, 1],
        };
        let sequential = AcceleratorConfig {
            chunks: vec![chunk(8, 8), chunk(8, 8)],
            assignment: vec![0, 0],
        };
        let p = PerfModel::evaluate(&pipelined, &layers, &target);
        let s = PerfModel::evaluate(&sequential, &layers, &target);
        assert!(p.fps > s.fps);
        // Total single-frame latency is similar (same work).
        assert!((p.total_latency_cycles / s.total_latency_cycles - 1.0).abs() < 0.3);
    }

    #[test]
    fn tiny_buffers_trigger_thrashing_penalty() {
        let layers = vec![conv_layer(32, 64, 16, 3)];
        let target = FpgaTarget::zc706();
        let mut starved = single_chunk_accel(8, 8, 1);
        starved.chunks[0].buffers = BufferAlloc {
            input_kb: 1,
            weight_kb: 1,
            output_kb: 1,
        };
        let healthy = PerfModel::evaluate(&single_chunk_accel(8, 8, 1), &layers, &target);
        let thrashed = PerfModel::evaluate(&starved, &layers, &target);
        assert_eq!(healthy.thrashing_layers, 0);
        assert_eq!(thrashed.thrashing_layers, 1);
        assert!(thrashed.bottleneck_cycles >= healthy.bottleneck_cycles);
    }

    #[test]
    fn dataflows_change_traffic_profile() {
        // A layer with huge weights relative to activations should prefer
        // weight-stationary.
        let fat_fc = LayerDesc {
            name: "fc".into(),
            op: LayerOp::Fc {
                in_features: 4096,
                out_features: 512,
            },
        };
        let target = FpgaTarget::zc706();
        let mut ws = single_chunk_accel(8, 8, 1);
        ws.chunks[0].dataflow = Dataflow::WeightStationary;
        let mut os = single_chunk_accel(8, 8, 1);
        os.chunks[0].dataflow = Dataflow::OutputStationary;
        let r_ws = PerfModel::evaluate(&ws, &[fat_fc.clone()], &target);
        let r_os = PerfModel::evaluate(&os, &[fat_fc], &target);
        assert!(
            r_ws.bottleneck_cycles <= r_os.bottleneck_cycles,
            "WS should win on weight-heavy layers: {} vs {}",
            r_ws.bottleneck_cycles,
            r_os.bottleneck_cycles
        );
    }

    #[test]
    fn depthwise_dims_have_unit_input_channels() {
        let d = ConvDims {
            in_ch: 16,
            out_ch: 16,
            kernel: 3,
            stride: 1,
            padding: 1,
            in_h: 8,
            in_w: 8,
        };
        let dense = LayerDims::from_desc(&LayerDesc {
            name: "a".into(),
            op: LayerOp::Conv(d),
        });
        let dw = LayerDims::from_desc(&LayerDesc {
            name: "b".into(),
            op: LayerOp::DepthwiseConv(d),
        });
        assert_eq!(dw.n, 1);
        assert!((dense.macs() / dw.macs() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn broadcast_noc_costs_more_energy_than_systolic() {
        let layers = vec![conv_layer(16, 16, 12, 3)];
        let target = FpgaTarget::zc706();
        let mut systolic = single_chunk_accel(8, 8, 1);
        systolic.chunks[0].noc = NocTopology::Systolic;
        let mut broadcast = single_chunk_accel(8, 8, 1);
        broadcast.chunks[0].noc = NocTopology::Broadcast;
        let e_sys = PerfModel::evaluate(&systolic, &layers, &target).energy;
        let e_bc = PerfModel::evaluate(&broadcast, &layers, &target).energy;
        assert!(e_bc > e_sys);
    }

    #[test]
    fn energy_weight_changes_the_cost_ranking() {
        // A small, low-energy design vs a big, fast design: with
        // energy_weight = 0 the fast one wins; with a large weight the
        // ranking can flip only through the energy term.
        let layers = vec![conv_layer(32, 32, 12, 3)];
        let target = FpgaTarget::zc706();
        let small = PerfModel::evaluate(&single_chunk_accel(4, 4, 1), &layers, &target);
        let large = PerfModel::evaluate(&single_chunk_accel(16, 16, 1), &layers, &target);
        let latency_only = CostWeights::default();
        assert!(
            PerfModel::cost(&large, &target, &latency_only)
                < PerfModel::cost(&small, &target, &latency_only)
        );
        // Energy term is additive and NoC-dependent; equal NoCs here, so
        // the large array's energy matches but its latency is smaller —
        // cost with energy weight stays finite and ordered.
        let heavy = CostWeights {
            energy_weight: 1.0,
            ..CostWeights::default()
        };
        assert!(PerfModel::cost(&large, &target, &heavy).is_finite());
    }

    #[test]
    fn fc_input_bytes_have_no_halo() {
        // Regression: the input halo is (r-1)*stride + k, not r*stride + k.
        // An FC layer (r = c = k = stride = 1) reads exactly `n` operands —
        // the old formula overcounted its input traffic 4x.
        let fc = LayerDims::from_desc(&LayerDesc {
            name: "fc".into(),
            op: LayerOp::Fc {
                in_features: 4096,
                out_features: 512,
            },
        });
        assert_eq!(fc.input_bytes(), 4096.0 * BYTES);
        assert_eq!(fc.output_bytes(), 512.0 * BYTES);
        assert_eq!(fc.weight_bytes(), 4096.0 * 512.0 * BYTES);
    }

    #[test]
    fn conv_input_halo_matches_sliding_window() {
        // 8 output rows at stride 2 with a 3-wide kernel touch
        // (8-1)*2 + 3 = 17 input rows.
        let d = LayerDims {
            m: 4,
            n: 3,
            r: 8,
            c: 8,
            k: 3,
            stride: 2,
            depthwise: false,
        };
        assert_eq!(d.input_bytes(), 3.0 * (17 * 17) as f64 * BYTES);
    }

    #[test]
    fn idle_chunks_do_not_consume_bandwidth() {
        // Regression: bandwidth is shared among chunks with >= 1 assigned
        // layer, so a 4-chunk design routing everything to chunk 0 costs
        // exactly what the 1-chunk design costs.
        let layers = vec![conv_layer(16, 32, 16, 3); 4];
        let target = FpgaTarget::zc706();
        let four = AcceleratorConfig {
            chunks: vec![chunk(8, 8); 4],
            assignment: vec![0; 4],
        };
        let one = single_chunk_accel(8, 8, 4);
        let r4 = PerfModel::evaluate(&four, &layers, &target);
        let r1 = PerfModel::evaluate(&one, &layers, &target);
        assert!(r4.feasible && r1.feasible);
        assert_eq!(r4.bottleneck_cycles, r1.bottleneck_cycles);
        let w = CostWeights::default();
        assert_eq!(
            PerfModel::cost(&r4, &target, &w),
            PerfModel::cost(&r1, &target, &w)
        );
    }

    #[test]
    fn bandwidth_share_counts_only_active_chunks() {
        let target = FpgaTarget::zc706();
        let accel = AcceleratorConfig {
            chunks: vec![chunk(8, 8); 4],
            assignment: vec![0, 0, 2, 2],
        };
        let share = PerfModel::bandwidth_share(&accel, &target);
        assert_eq!(share, target.dram_bytes_per_cycle() / 2.0);
    }

    #[test]
    fn fps_is_clock_over_bottleneck() {
        let layers = vec![conv_layer(8, 8, 8, 3)];
        let target = FpgaTarget::zc706();
        let r = PerfModel::evaluate(&single_chunk_accel(8, 8, 1), &layers, &target);
        assert!((r.fps - target.clock_hz() / r.bottleneck_cycles).abs() < 1e-6);
    }
}
