//! Neural-network layers and backbone builders for the A3C-S reproduction.
//!
//! Built on [`a3cs_tensor`]'s autograd, this crate provides:
//!
//! - [`Param`]: a shared, named parameter with accumulated gradient storage;
//! - [`Module`]: the object-safe forward/parameters/describe trait;
//! - layers ([`Conv2d`], [`DepthwiseConv2d`], [`Linear`], [`BatchNorm2d`],
//!   [`Relu`], [`Flatten`], [`GlobalAvgPool`]) and composite blocks
//!   ([`BasicBlock`], [`InvertedResidual`]);
//! - backbone builders matching the paper's model zoo: [`vanilla`] (the
//!   DQN-style small network) and [`resnet`] for depths 14/20/38/74;
//! - [`LayerDesc`] descriptors that let the accelerator crates reason about
//!   any built network (MACs, tensor footprints, per-layer dimensions).
//!
//! # Example
//!
//! ```
//! use a3cs_nn::{vanilla, FeatureShape, Module};
//! use a3cs_tensor::{Tape, Tensor};
//!
//! let net = vanilla(4, 12, 12, 32, 1);
//! let tape = Tape::new();
//! let x = tape.leaf(Tensor::zeros(&[2, 4, 12, 12]));
//! let features = net.forward(&tape, &x, true);
//! assert_eq!(features.shape(), vec![2, 32]);
//! let (descs, out) = net.describe(FeatureShape::image(4, 12, 12));
//! assert!(descs.len() >= 3);
//! assert_eq!(out, FeatureShape::Flat { features: 32 });
//! ```

#![deny(missing_docs)]

mod backbones;
mod blocks;
mod describe;
mod init;
mod layers;
mod module;
mod param;
mod pool_layers;
mod sequential;

pub use backbones::{resnet, resnet_blocks_per_group, vanilla, Backbone};
pub use blocks::{BasicBlock, InvertedResidual};
pub use describe::{total_macs, ConvDims, FeatureShape, LayerDesc, LayerOp};
pub use init::{he_std, xavier_std};
pub use layers::{BatchNorm2d, Conv2d, DepthwiseConv2d, Flatten, GlobalAvgPool, Linear, Relu};
pub use module::Module;
pub use param::Param;
pub use pool_layers::{AvgPool2d, MaxPool2d};
pub use sequential::Sequential;
