//! Offline vendored stand-in for a scoped thread pool (`threadpool`/`rayon`
//! lineage), specialised for the determinism contract this workspace needs.
//!
//! The contract: work is partitioned into **fixed, contiguous, disjoint**
//! index ranges ([`chunk_ranges`]), each item's computation must be
//! independent of which worker runs it, and every floating-point reduction
//! happens on the calling thread in index order. Under that contract the
//! output of any parallel helper here is bit-identical for every thread
//! count, including the pure-inline `threads = 1` fallback.
//!
//! Thread count resolution for the process-global pool:
//! `A3CS_THREADS` env var if set to a positive integer, otherwise
//! `std::thread::available_parallelism()`. `A3CS_THREADS=1` yields the exact
//! sequential fallback (no worker threads are ever spawned). Tests that need
//! a specific thread count without mutating the environment use
//! [`with_threads`], which installs a thread-local override consulted by
//! [`current`]; [`with_pool`] installs a specific (possibly isolated) pool
//! the same way.
//!
//! Nesting policy: only the thread that entered a parallel region forks.
//! Workers (and the caller while it executes its own chunk) run any nested
//! parallel call inline, which makes the pool deadlock-free by construction
//! and avoids oversubscription without work stealing.
//!
//! # Isolation mode
//!
//! With [`ThreadPool::set_isolation`] enabled, a panic inside a queued
//! **restartable** chunk (one dispatched by [`ThreadPool::parallel_for_chunks`]
//! or [`ThreadPool::parallel_fill_rows`], whose closures are pure per-index
//! fills) is contained instead of propagated: the worker records the chunk's
//! range, quarantines itself (exits its loop) and spawns a replacement, and
//! the calling thread deterministically re-executes the failed ranges inline,
//! in ascending index order, after the join. Because each chunk is a pure
//! function of its indices, re-execution yields the same bits the worker
//! would have produced. Non-restartable chunks
//! ([`ThreadPool::parallel_chunks_mut`] mutates caller state in place, e.g.
//! stepping environments) still propagate their panic to the caller — a
//! higher-level supervisor must restore state before retrying those. Lane
//! health is surfaced through [`ThreadPool::stats`].

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread;

/// Acquire a mutex, recovering from poisoning (worker panics are caught and
/// forwarded, so a poisoned lock never guards broken invariants here).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

thread_local! {
    /// True while this thread is executing inside a parallel region (worker
    /// threads set it permanently). Nested parallel calls then run inline.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
    /// Thread-local pool override installed by [`with_threads`]/[`with_pool`].
    static OVERRIDE: RefCell<Option<Arc<ThreadPool>>> = const { RefCell::new(None) };
}

/// Returns true when called from inside a parallel region (a pool worker, or
/// the caller thread while it runs its own chunk).
pub fn in_parallel_region() -> bool {
    IN_PARALLEL.with(Cell::get)
}

/// Cumulative lane-health counters for one pool. All counters stay zero
/// until a task panics; containment counters additionally require
/// [`ThreadPool::set_isolation`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Panic count per execution lane (lane 0 is the calling thread).
    pub lane_faults: Vec<u64>,
    /// Worker lanes quarantined after a panic (isolation mode only).
    pub quarantined: u64,
    /// Replacement workers spawned for quarantined lanes.
    pub respawned: u64,
    /// Restartable chunks re-executed on the caller after containment.
    pub reexecuted_chunks: u64,
}

impl PoolStats {
    /// Total panics observed across all lanes.
    #[must_use]
    pub fn total_faults(&self) -> u64 {
        self.lane_faults.iter().sum()
    }
}

/// State shared between a pool handle and its workers (health counters and
/// the isolation/injection flags), so quarantined workers can respawn their
/// own replacements without a back-reference to the `ThreadPool`.
struct PoolShared {
    isolation: AtomicBool,
    /// One-shot injection: the next task dequeued by any worker panics
    /// before running its closure (so containment re-execution is trivially
    /// bit-identical — the chunk was never touched).
    armed_panic: AtomicBool,
    lane_faults: Vec<AtomicU64>,
    quarantined: AtomicU64,
    respawned: AtomicU64,
    reexecuted: AtomicU64,
    respawn_gen: AtomicU64,
}

impl PoolShared {
    fn new(lanes: usize) -> Self {
        PoolShared {
            isolation: AtomicBool::new(false),
            armed_panic: AtomicBool::new(false),
            lane_faults: (0..lanes).map(|_| AtomicU64::new(0)).collect(),
            quarantined: AtomicU64::new(0),
            respawned: AtomicU64::new(0),
            reexecuted: AtomicU64::new(0),
            respawn_gen: AtomicU64::new(0),
        }
    }

    fn note_fault(&self, lane: usize) {
        if let Some(slot) = self.lane_faults.get(lane) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Shared bookkeeping for one fork-join region.
struct ScopeState {
    pending: Mutex<usize>,
    done: Condvar,
    /// First panic payload raised by a worker task, if any.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Whether a contained worker panic may be resolved by re-executing the
    /// chunk on the caller (true only for pure per-index fill regions).
    restartable: bool,
    /// Ranges whose chunk panicked on a worker and was contained; the
    /// caller re-executes them inline after the join.
    failed: Mutex<Vec<Range<usize>>>,
}

impl ScopeState {
    fn new(pending: usize, restartable: bool) -> Self {
        ScopeState {
            pending: Mutex::new(pending),
            done: Condvar::new(),
            panic: Mutex::new(None),
            restartable,
            failed: Mutex::new(Vec::new()),
        }
    }

    fn complete_one(&self) {
        let mut pending = lock(&self.pending);
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }

    fn record_panic(&self, payload: Box<dyn Any + Send>) {
        let mut slot = lock(&self.panic);
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    fn wait(&self) {
        let mut pending = lock(&self.pending);
        while *pending > 0 {
            pending = match self.done.wait(pending) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }
}

/// A lifetime-erased task plus the fork-join region it belongs to.
struct Job {
    task: Box<dyn FnOnce() + Send + 'static>,
    state: Arc<ScopeState>,
    /// The index range this task covers, when it is a restartable chunk.
    range: Option<Range<usize>>,
}

fn worker_main(rx: Arc<Mutex<Receiver<Job>>>, shared: Arc<PoolShared>, lane: usize) {
    IN_PARALLEL.with(|f| f.set(true));
    loop {
        // Take the next job while holding the lock, then release it before
        // running so other workers can dequeue concurrently.
        let job = {
            let rx_guard = lock(&rx);
            rx_guard.recv()
        };
        let Ok(Job { task, state, range }) = job else {
            break;
        };
        // Observe-only busy-time attribution; the clock is read only while
        // telemetry is enabled and never influences scheduling.
        // a3cs::allow(wall-clock): feeds per-lane telemetry stats only.
        let started = telemetry::enabled().then(std::time::Instant::now);
        let armed = shared.armed_panic.swap(false, Ordering::SeqCst);
        let result = catch_unwind(AssertUnwindSafe(|| {
            assert!(!armed, "injected worker panic (fault plan)");
            task();
        }));
        if let Some(started) = started {
            let busy = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            telemetry::record_pool_task(lane, busy);
        }
        let Err(payload) = result else {
            state.complete_one();
            continue;
        };
        shared.note_fault(lane);
        let contained = shared.isolation.load(Ordering::SeqCst) && state.restartable;
        match (contained, range) {
            (true, Some(r)) => lock(&state.failed).push(r),
            _ => state.record_panic(payload),
        }
        state.complete_one();
        if shared.isolation.load(Ordering::SeqCst) && respawn_lane(&rx, &shared, lane) {
            // Quarantine: this lane's thread exits; the replacement just
            // spawned keeps the pool at full strength.
            return;
        }
        // Isolation off (or the respawn failed): keep serving jobs so the
        // pool never silently loses a lane.
    }
}

/// Spawn a replacement worker for a quarantined lane. Returns whether the
/// spawn succeeded (only then may the caller's thread exit).
fn respawn_lane(rx: &Arc<Mutex<Receiver<Job>>>, shared: &Arc<PoolShared>, lane: usize) -> bool {
    let generation = shared.respawn_gen.fetch_add(1, Ordering::Relaxed);
    let rx = Arc::clone(rx);
    let shared_for_worker = Arc::clone(shared);
    let spawned = thread::Builder::new()
        .name(format!("a3cs-pool-{}-r{generation}", lane.saturating_sub(1)))
        .spawn(move || worker_main(rx, shared_for_worker, lane))
        .is_ok();
    if spawned {
        shared.quarantined.fetch_add(1, Ordering::Relaxed);
        shared.respawned.fetch_add(1, Ordering::Relaxed);
    }
    spawned
}

/// Fixed-size pool of worker threads executing scoped fork-join regions.
///
/// `threads` counts execution lanes including the calling thread, so
/// `ThreadPool::new(n)` spawns `n - 1` workers and `new(1)` spawns none
/// (every helper then runs inline — the exact sequential fallback).
pub struct ThreadPool {
    threads: usize,
    queue: Option<Sender<Job>>,
    shared: Arc<PoolShared>,
}

impl ThreadPool {
    /// Create a pool with `threads` execution lanes (clamped to at least 1).
    #[must_use]
    pub fn new(threads: usize) -> ThreadPool {
        let threads = threads.max(1);
        if threads == 1 {
            return ThreadPool {
                threads: 1,
                queue: None,
                shared: Arc::new(PoolShared::new(1)),
            };
        }
        let shared = Arc::new(PoolShared::new(threads));
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let mut spawned = 0usize;
        for i in 0..threads - 1 {
            let rx = Arc::clone(&rx);
            let shared_for_worker = Arc::clone(&shared);
            let handle = thread::Builder::new()
                .name(format!("a3cs-pool-{i}"))
                .spawn(move || worker_main(rx, shared_for_worker, i + 1));
            if handle.is_err() {
                // Could not spawn (resource exhaustion): degrade to fewer
                // lanes. Remaining chunks run on the caller; determinism is
                // unaffected because partitioning uses `self.threads`, which
                // we keep as requested, and every chunk still runs.
                break;
            }
            spawned += 1;
        }
        if spawned == 0 {
            // No consumers: fall back to the inline pool so fork_join never
            // queues work nobody will run.
            return ThreadPool {
                threads: 1,
                queue: None,
                shared: Arc::new(PoolShared::new(1)),
            };
        }
        ThreadPool {
            threads,
            queue: Some(tx),
            shared,
        }
    }

    /// Create a pool with isolation mode already enabled — shorthand for
    /// [`ThreadPool::new`] + [`ThreadPool::set_isolation`].
    #[must_use]
    pub fn new_isolated(threads: usize) -> ThreadPool {
        let pool = ThreadPool::new(threads);
        pool.set_isolation(true);
        pool
    }

    /// Number of execution lanes (including the calling thread).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Turn panic isolation on or off for this pool (off by default; see the
    /// crate docs for the containment contract).
    pub fn set_isolation(&self, on: bool) {
        self.shared.isolation.store(on, Ordering::SeqCst);
    }

    /// Whether panic isolation is currently enabled.
    #[must_use]
    pub fn isolation(&self) -> bool {
        self.shared.isolation.load(Ordering::SeqCst)
    }

    /// Arm a one-shot injected panic: the next task any worker dequeues
    /// panics *before* running its closure (deterministic fault injection
    /// for supervision tests — the chunk's output is untouched, so contained
    /// re-execution is trivially bit-identical). A no-op until a worker
    /// dequeues a task, so pools without workers never fire it.
    pub fn arm_worker_panic(&self) {
        self.shared.armed_panic.store(true, Ordering::SeqCst);
    }

    /// Snapshot of the cumulative lane-health counters.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            lane_faults: self
                .shared
                .lane_faults
                .iter()
                .map(|slot| slot.load(Ordering::Relaxed))
                .collect(),
            quarantined: self.shared.quarantined.load(Ordering::Relaxed),
            respawned: self.shared.respawned.load(Ordering::Relaxed),
            reexecuted_chunks: self.shared.reexecuted.load(Ordering::Relaxed),
        }
    }

    /// Run a set of scoped tasks to completion: all but the last are queued
    /// for the workers, the last runs on the calling thread, and the call
    /// does not return (or unwind) until every task has finished. The first
    /// panic from any task is re-raised on the caller, except contained
    /// restartable worker chunks, whose ranges are returned (ascending) for
    /// the caller to re-execute.
    fn fork_join<'env>(
        &self,
        mut tasks: Vec<(Option<Range<usize>>, Box<dyn FnOnce() + Send + 'env>)>,
        restartable: bool,
    ) -> Vec<Range<usize>> {
        let Some((_, local)) = tasks.pop() else {
            return Vec::new();
        };
        if tasks.is_empty() || self.queue.is_none() || in_parallel_region() {
            // Inline path: run everything sequentially in index order. A
            // panic here is a caller-thread panic and propagates as such.
            for (_, task) in tasks {
                task();
            }
            local();
            return Vec::new();
        }
        // Capture the caller's tagging scope (innermost span + fleet
        // session/retry tags) so work queued to the pool attributes to the
        // phase — and session — that forked it (observe-only).
        let scope = telemetry::current_scope();
        let contain = restartable && self.shared.isolation.load(Ordering::SeqCst);
        let state = Arc::new(ScopeState::new(tasks.len(), contain));
        if let Some(queue) = self.queue.as_ref() {
            for (range, task) in tasks {
                let task: Box<dyn FnOnce() + Send + 'env> = if scope.is_empty() {
                    task
                } else {
                    Box::new(move || telemetry::with_scope(scope, task))
                };
                // SAFETY: lifetime erasure from 'env to 'static. Sound
                // because this function waits (via `WaitGuard`, even when the
                // local task unwinds) for every queued task to complete
                // before returning, so no borrow in `task` outlives its
                // referent.
                let task: Box<dyn FnOnce() + Send + 'static> =
                    // a3cs::allow(unsafe-block): reviewed — see the SAFETY
                    // comment above; the join barrier bounds every lifetime.
                    unsafe { std::mem::transmute(task) };
                let job = Job {
                    task,
                    state: Arc::clone(&state),
                    range,
                };
                if let Err(send_err) = queue.send(job) {
                    // Workers are gone (spawn failed earlier): run inline.
                    let Job { task, state, .. } = send_err.0;
                    task();
                    state.complete_one();
                }
            }
        }

        struct WaitGuard<'a>(&'a ScopeState);
        impl Drop for WaitGuard<'_> {
            fn drop(&mut self) {
                self.0.wait();
            }
        }
        let guard = WaitGuard(&state);
        // Run the caller's own chunk with the in-parallel flag set so nested
        // parallel calls stay inline.
        let local_result = {
            IN_PARALLEL.with(|f| f.set(true));
            // a3cs::allow(wall-clock): feeds per-lane telemetry stats only.
            let started = telemetry::enabled().then(std::time::Instant::now);
            let r = catch_unwind(AssertUnwindSafe(local));
            if let Some(started) = started {
                let busy = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                telemetry::record_pool_task(0, busy);
            }
            IN_PARALLEL.with(|f| f.set(false));
            r
        };
        drop(guard); // blocks until all queued tasks have completed
        if let Err(payload) = local_result {
            resume_unwind(payload);
        }
        let worker_panic = lock(&state.panic).take();
        if let Some(payload) = worker_panic {
            resume_unwind(payload);
        }
        let mut failed = std::mem::take(&mut *lock(&state.failed));
        failed.sort_by_key(|r| r.start);
        failed
    }

    /// Re-execute contained chunks inline on the caller, in ascending index
    /// order, exactly as a worker would have run them (inside the parallel
    /// region, so nested parallel calls stay inline).
    fn rerun_contained<F>(&self, failed: Vec<Range<usize>>, mut f: F)
    where
        F: FnMut(Range<usize>),
    {
        if failed.is_empty() {
            return;
        }
        self.shared
            .reexecuted
            .fetch_add(failed.len() as u64, Ordering::Relaxed);
        struct ResetInParallel;
        impl Drop for ResetInParallel {
            fn drop(&mut self) {
                IN_PARALLEL.with(|flag| flag.set(false));
            }
        }
        IN_PARALLEL.with(|flag| flag.set(true));
        let _reset = ResetInParallel;
        for range in failed {
            f(range);
        }
    }

    /// Invoke `f` on fixed, contiguous, disjoint chunks of `0..len`
    /// (partitioned by [`chunk_ranges`] into at most [`Self::threads`]
    /// pieces). With one lane, inside a parallel region, or for `len <= 1`,
    /// this is exactly `f(0..len)`.
    ///
    /// Restartable: `f` must be a pure per-index fill (each index's output
    /// independent of execution order and safe to recompute), so isolation
    /// mode may re-execute a chunk whose worker panicked.
    pub fn parallel_for_chunks<F>(&self, len: usize, f: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        if len == 0 {
            return;
        }
        if self.threads <= 1 || len == 1 || in_parallel_region() {
            f(0..len);
            return;
        }
        let failed = {
            let f = &f;
            let tasks: Vec<(Option<Range<usize>>, Box<dyn FnOnce() + Send + '_>)> =
                chunk_ranges(len, self.threads)
                    .into_iter()
                    .map(|r| {
                        let task = r.clone();
                        (
                            Some(r),
                            Box::new(move || f(task)) as Box<dyn FnOnce() + Send + '_>,
                        )
                    })
                    .collect();
            self.fork_join(tasks, true)
        };
        self.rerun_contained(failed, |range| f(range));
    }

    /// Split `items` into fixed contiguous chunks and invoke
    /// `f(start_index, chunk)` on each with exclusive access. The sequential
    /// fallback is a single `f(0, items)` call; `f` must therefore treat
    /// items independently (chunk boundaries carry no meaning).
    ///
    /// Not restartable: `f` may mutate items statefully (e.g. stepping an
    /// environment), so a worker panic always propagates to the caller even
    /// in isolation mode — recovery needs a state snapshot above this layer.
    pub fn parallel_chunks_mut<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        if items.is_empty() {
            return;
        }
        if self.threads <= 1 || items.len() == 1 || in_parallel_region() {
            f(0, items);
            return;
        }
        let ranges = chunk_ranges(items.len(), self.threads);
        let f = &f;
        let mut tasks: Vec<(Option<Range<usize>>, Box<dyn FnOnce() + Send + '_>)> =
            Vec::with_capacity(ranges.len());
        let mut rest = items;
        for r in ranges {
            let (chunk, tail) = rest.split_at_mut(r.len());
            rest = tail;
            let start = r.start;
            tasks.push((None, Box::new(move || f(start, chunk))));
        }
        let _ = self.fork_join(tasks, false);
    }

    /// Fill `out` (laid out as `rows` rows of `row_len` items) by invoking
    /// `f(row, row_slice)` for every row, rows fanned out across lanes in
    /// fixed contiguous blocks. Row order within a lane is ascending, and
    /// each `f(row, ..)` call is identical to the sequential one, so the
    /// result is bit-identical for any thread count.
    ///
    /// Restartable: each row is a pure function of its index, so isolation
    /// mode may re-execute a block whose worker panicked.
    pub fn parallel_fill_rows<T, F>(&self, out: &mut [T], rows: usize, row_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert_eq!(
            out.len(),
            rows * row_len,
            "parallel_fill_rows: output length {} != rows {} * row_len {}",
            out.len(),
            rows,
            row_len
        );
        if rows == 0 || row_len == 0 {
            return;
        }
        if self.threads <= 1 || rows == 1 || in_parallel_region() {
            for (row, slice) in out.chunks_mut(row_len).enumerate() {
                f(row, slice);
            }
            return;
        }
        let ranges = chunk_ranges(rows, self.threads);
        let failed = {
            let f = &f;
            let mut tasks: Vec<(Option<Range<usize>>, Box<dyn FnOnce() + Send + '_>)> =
                Vec::with_capacity(ranges.len());
            let mut rest = &mut *out;
            for r in ranges {
                let (chunk, tail) = rest.split_at_mut(r.len() * row_len);
                rest = tail;
                let start = r.start;
                tasks.push((
                    Some(r),
                    Box::new(move || {
                        for (i, row_slice) in chunk.chunks_mut(row_len).enumerate() {
                            f(start + i, row_slice);
                        }
                    }),
                ));
            }
            self.fork_join(tasks, true)
        };
        self.rerun_contained(failed, |range| {
            for row in range {
                f(row, &mut out[row * row_len..(row + 1) * row_len]);
            }
        });
    }
}

/// Partition `0..len` into `parts` fixed, contiguous, disjoint ranges that
/// cover every index in order. The first `len % parts` chunks hold one extra
/// item. `parts` is clamped to `1..=len`; `len == 0` yields no ranges.
#[must_use]
pub fn chunk_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, len);
    let base = len / parts;
    let extra = len % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

static GLOBAL: OnceLock<Arc<ThreadPool>> = OnceLock::new();

fn default_threads() -> usize {
    if let Ok(raw) = std::env::var("A3CS_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The pool the current thread should use: the [`with_threads`]/[`with_pool`]
/// override if one is installed, otherwise the lazily created process-global
/// pool (`A3CS_THREADS` lanes, defaulting to the available core count).
#[must_use]
pub fn current() -> Arc<ThreadPool> {
    let overridden = OVERRIDE.with(|o| o.borrow().clone());
    if let Some(pool) = overridden {
        return pool;
    }
    Arc::clone(GLOBAL.get_or_init(|| Arc::new(ThreadPool::new(default_threads()))))
}

/// Install the process-global pool with an explicit lane count before first
/// use. Returns `false` (leaving the existing pool in place) if the global
/// pool was already created.
pub fn configure_global(threads: usize) -> bool {
    GLOBAL.set(Arc::new(ThreadPool::new(threads))).is_ok()
}

/// Run `f` with [`current`] resolving to `pool` on this thread. Restores the
/// previous override on exit (including unwind). This is how a supervisor
/// installs an isolation-mode pool — or a degradation-ladder replacement with
/// fewer lanes — for the region it guards, without touching the global pool.
pub fn with_pool<R>(pool: Arc<ThreadPool>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<ThreadPool>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            OVERRIDE.with(|o| *o.borrow_mut() = prev);
        }
    }
    let prev = OVERRIDE.with(|o| o.borrow_mut().replace(pool));
    let _restore = Restore(prev);
    f()
}

/// Run `f` with [`current`] resolving to a fresh pool of `threads` lanes on
/// this thread. Restores the previous override on exit (including unwind).
/// This is the race-free alternative to mutating `A3CS_THREADS` in tests.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    with_pool(Arc::new(ThreadPool::new(threads)), f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunk_ranges_cover_all_indices_in_order() {
        for len in 0..40usize {
            for parts in 1..8usize {
                let ranges = chunk_ranges(len, parts);
                let flat: Vec<usize> = ranges.iter().cloned().flatten().collect();
                assert_eq!(flat, (0..len).collect::<Vec<_>>(), "len={len} parts={parts}");
                if len > 0 {
                    assert_eq!(ranges.len(), parts.min(len));
                }
            }
        }
    }

    #[test]
    fn chunk_ranges_is_deterministic() {
        assert_eq!(chunk_ranges(10, 4), vec![0..3, 3..6, 6..8, 8..10]);
        assert_eq!(chunk_ranges(10, 4), chunk_ranges(10, 4));
        assert_eq!(chunk_ranges(2, 16), vec![0..1, 1..2]);
        assert!(chunk_ranges(0, 4).is_empty());
    }

    #[test]
    fn parallel_for_chunks_visits_every_index_once() {
        for threads in [1usize, 2, 4, 7] {
            let pool = ThreadPool::new(threads);
            let hits: Vec<AtomicUsize> = (0..101).map(|_| AtomicUsize::new(0)).collect();
            pool.parallel_for_chunks(hits.len(), |range| {
                for i in range {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn parallel_chunks_mut_matches_sequential() {
        let expected: Vec<usize> = (0..57).map(|i| i * 3 + 1).collect();
        for threads in [1usize, 4] {
            let pool = ThreadPool::new(threads);
            let mut got = vec![0usize; 57];
            pool.parallel_chunks_mut(&mut got, |start, chunk| {
                for (i, slot) in chunk.iter_mut().enumerate() {
                    *slot = (start + i) * 3 + 1;
                }
            });
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn parallel_fill_rows_is_bit_identical_across_thread_counts() {
        let fill = |row: usize, out: &mut [f32]| {
            let mut acc = 0.1f32 + row as f32;
            for (j, slot) in out.iter_mut().enumerate() {
                acc = acc * 1.000_1 + (j as f32) * 0.01;
                *slot = acc.sin();
            }
        };
        let mut seq = vec![0.0f32; 33 * 17];
        ThreadPool::new(1).parallel_fill_rows(&mut seq, 33, 17, fill);
        for threads in [2usize, 4, 8] {
            let mut par = vec![0.0f32; 33 * 17];
            ThreadPool::new(threads).parallel_fill_rows(&mut par, 33, 17, fill);
            assert_eq!(
                seq.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                par.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn nested_parallel_calls_run_inline_without_deadlock() {
        let pool = Arc::new(ThreadPool::new(4));
        let outer = Arc::clone(&pool);
        let hits = AtomicUsize::new(0);
        outer.parallel_for_chunks(8, |range| {
            for _ in range {
                // Nested region: must run inline on whatever thread we're on.
                pool.parallel_for_chunks(4, |inner| {
                    hits.fetch_add(inner.len(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8 * 4);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = ThreadPool::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_for_chunks(16, |range| {
                if range.contains(&0) {
                    panic!("boom from chunk");
                }
            });
        }));
        assert!(result.is_err());
        // Pool must remain usable after a panicked region.
        let count = AtomicUsize::new(0);
        pool.parallel_for_chunks(16, |range| {
            count.fetch_add(range.len(), Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn isolation_contains_injected_panic_in_restartable_region() {
        let fill = |row: usize, out: &mut [f32]| {
            for (j, slot) in out.iter_mut().enumerate() {
                *slot = (row as f32 * 31.0 + j as f32).sin();
            }
        };
        let mut expected = vec![0.0f32; 24 * 9];
        ThreadPool::new(1).parallel_fill_rows(&mut expected, 24, 9, fill);

        let pool = ThreadPool::new_isolated(4);
        pool.arm_worker_panic();
        let mut got = vec![0.0f32; 24 * 9];
        // No unwind reaches the caller; the contained chunk is re-executed.
        pool.parallel_fill_rows(&mut got, 24, 9, fill);
        assert_eq!(
            expected.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
        let stats = pool.stats();
        assert_eq!(stats.total_faults(), 1, "{stats:?}");
        assert_eq!(stats.quarantined, 1, "{stats:?}");
        assert_eq!(stats.respawned, 1, "{stats:?}");
        assert_eq!(stats.reexecuted_chunks, 1, "{stats:?}");
        // The respawned lane keeps the pool at full strength.
        let count = AtomicUsize::new(0);
        pool.parallel_for_chunks(64, |range| {
            count.fetch_add(range.len(), Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn isolation_contains_user_panic_in_restartable_region() {
        // The panic fires only on the first execution of the chunk owning
        // index 0 (a transient fault), so re-execution succeeds.
        let pool = ThreadPool::new_isolated(4);
        let first = AtomicUsize::new(0);
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for_chunks(64, |range| {
            if range.contains(&0) && first.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient chunk fault");
            }
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        let stats = pool.stats();
        assert!(stats.total_faults() >= 1, "{stats:?}");
    }

    #[test]
    fn isolation_still_propagates_non_restartable_panics() {
        let pool = ThreadPool::new_isolated(4);
        let mut items = vec![0usize; 32];
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_chunks_mut(&mut items, |start, _chunk| {
                assert!(start == 0, "stateful chunk fault");
            });
        }));
        assert!(result.is_err(), "stateful regions must propagate");
        // The quarantined lane was respawned; the pool still works.
        let count = AtomicUsize::new(0);
        pool.parallel_for_chunks(16, |range| {
            count.fetch_add(range.len(), Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 16);
        assert!(pool.stats().total_faults() >= 1);
    }

    #[test]
    fn armed_panic_without_isolation_propagates() {
        let pool = ThreadPool::new(4);
        pool.arm_worker_panic();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_for_chunks(16, |_range| {});
        }));
        assert!(result.is_err());
        assert_eq!(pool.stats().quarantined, 0);
    }

    #[test]
    fn with_threads_overrides_current_and_restores() {
        let before = current().threads();
        with_threads(3, || {
            assert_eq!(current().threads(), 3);
            with_threads(5, || assert_eq!(current().threads(), 5));
            assert_eq!(current().threads(), 3);
        });
        assert_eq!(current().threads(), before);
    }

    #[test]
    fn with_pool_installs_a_specific_pool() {
        let pool = Arc::new(ThreadPool::new_isolated(2));
        with_pool(Arc::clone(&pool), || {
            assert_eq!(current().threads(), 2);
            assert!(current().isolation());
        });
        assert!(Arc::strong_count(&pool) >= 1);
    }

    #[test]
    fn one_lane_pool_spawns_no_workers_and_runs_inline() {
        let pool = ThreadPool::new(1);
        assert!(pool.queue.is_none());
        let caller = thread::current().id();
        pool.parallel_for_chunks(10, |range| {
            assert_eq!(range, 0..10);
            assert_eq!(thread::current().id(), caller);
        });
    }
}
