//! Render an ASCII frame of every simulated game after a burst of random
//! play — a quick visual sanity check of the ALE-substitute suite.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example games_gallery
//! ```

use a3cs::envs::{game_names, make_env};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Collapse the plane dimension into one glyph per cell: the highest
/// active plane wins, planes are labelled `a`, `b`, `c`, ...
fn render(obs: &[f32], planes: usize, h: usize, w: usize) -> String {
    let mut out = String::new();
    for r in 0..h {
        for c in 0..w {
            let mut glyph = '·';
            for p in 0..planes {
                let v = obs[(p * h + r) * w + c];
                if v > 0.0 {
                    glyph = if v >= 0.95 {
                        (b'A' + p as u8) as char
                    } else {
                        (b'a' + p as u8) as char
                    };
                }
            }
            out.push(glyph);
        }
        out.push('\n');
    }
    out
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    for name in game_names() {
        let mut env = make_env(name, 11).expect("known game");
        let (p, h, w) = env.observation_shape();
        let mut obs = env.reset();
        let mut score = 0.0f32;
        for _ in 0..40 {
            let a = rng.gen_range(0..env.action_count());
            let out = env.step(a);
            score += out.reward;
            obs = if out.done { env.reset() } else { out.observation };
        }
        println!(
            "== {name} ({p} planes, {h}x{w}, {} actions, random-40 score {score:.1})",
            env.action_count()
        );
        println!("{}", render(&obs, p, h, w));
    }
}
