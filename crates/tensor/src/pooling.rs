//! Pooling and auxiliary elementwise operations on [`Var`].
//!
//! Kept separate from the core op set in `var.rs`: these support the
//! extended operator library (average/max pooling candidate ops, sigmoid
//! gates) beyond the paper's minimum requirements.

use crate::tape::Tape;
use crate::tensor::Tensor;
use crate::var::{sized, Var};

impl Var {
    /// 2-D average pooling (NCHW) with a square window and stride.
    ///
    /// # Panics
    ///
    /// Panics unless the value is rank 4 and the window fits the input.
    #[must_use]
    pub fn avg_pool2d(&self, window: usize, stride: usize) -> Var {
        let (n, c, h, w, oh, ow) = pool_dims(&self.shape(), window, stride);
        let x = self.value();
        let inv = 1.0 / (window * window) as f32;
        let mut out = vec![0.0f32; n * c * oh * ow];
        for ni in 0..n {
            for ci in 0..c {
                let ibase = (ni * c + ci) * h * w;
                let obase = (ni * c + ci) * oh * ow;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0f32;
                        for ky in 0..window {
                            for kx in 0..window {
                                acc += x.data()
                                    [ibase + (oy * stride + ky) * w + ox * stride + kx];
                            }
                        }
                        out[obase + oy * ow + ox] = acc * inv;
                    }
                }
            }
        }
        let id = self.node_id();
        let shape = self.shape();
        self.record(
            sized(out, &[n, c, oh, ow], "avg pool"),
            Box::new(move |g| {
                let mut dx = vec![0.0f32; n * c * h * w];
                for ni in 0..n {
                    for ci in 0..c {
                        let ibase = (ni * c + ci) * h * w;
                        let obase = (ni * c + ci) * oh * ow;
                        for oy in 0..oh {
                            for ox in 0..ow {
                                let gv = g.data()[obase + oy * ow + ox] * inv;
                                for ky in 0..window {
                                    for kx in 0..window {
                                        dx[ibase
                                            + (oy * stride + ky) * w
                                            + ox * stride
                                            + kx] += gv;
                                    }
                                }
                            }
                        }
                    }
                }
                vec![(id, sized(dx, &shape, "avg pool grad"))]
            }),
        )
    }

    /// 2-D max pooling (NCHW) with a square window and stride. Gradient
    /// flows to the (first) maximal element of each window.
    ///
    /// # Panics
    ///
    /// Panics unless the value is rank 4 and the window fits the input.
    #[must_use]
    pub fn max_pool2d(&self, window: usize, stride: usize) -> Var {
        let (n, c, h, w, oh, ow) = pool_dims(&self.shape(), window, stride);
        let x = self.value();
        let mut out = vec![0.0f32; n * c * oh * ow];
        let mut argmax = vec![0usize; n * c * oh * ow];
        for ni in 0..n {
            for ci in 0..c {
                let ibase = (ni * c + ci) * h * w;
                let obase = (ni * c + ci) * oh * ow;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_i = 0usize;
                        for ky in 0..window {
                            for kx in 0..window {
                                let idx =
                                    ibase + (oy * stride + ky) * w + ox * stride + kx;
                                if x.data()[idx] > best {
                                    best = x.data()[idx];
                                    best_i = idx;
                                }
                            }
                        }
                        out[obase + oy * ow + ox] = best;
                        argmax[obase + oy * ow + ox] = best_i;
                    }
                }
            }
        }
        let id = self.node_id();
        let shape = self.shape();
        self.record(
            sized(out, &[n, c, oh, ow], "max pool"),
            Box::new(move |g| {
                let mut dx = vec![0.0f32; n * c * h * w];
                for (o, &src) in argmax.iter().enumerate() {
                    dx[src] += g.data()[o];
                }
                vec![(id, sized(dx, &shape, "max pool grad"))]
            }),
        )
    }

    /// Elementwise logistic sigmoid `1 / (1 + e^{-x})`.
    #[must_use]
    pub fn sigmoid(&self) -> Var {
        let id = self.node_id();
        let value = self.value().map(|v| 1.0 / (1.0 + (-v).exp()));
        let y = value.clone();
        self.record(
            value,
            Box::new(move |g| vec![(id, g.zip(&y, |gv, yv| gv * yv * (1.0 - yv)))]),
        )
    }

    /// Elementwise clamp to `[lo, hi]`; gradient is passed only inside the
    /// active range.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn clamp(&self, lo: f32, hi: f32) -> Var {
        assert!(lo <= hi, "clamp bounds inverted: {lo} > {hi}");
        let id = self.node_id();
        let x = self.value();
        let value = x.map(|v| v.clamp(lo, hi));
        self.record(
            value,
            Box::new(move |g| {
                vec![(
                    id,
                    g.zip(&x, |gv, xv| if (lo..=hi).contains(&xv) { gv } else { 0.0 }),
                )]
            }),
        )
    }
}

fn pool_dims(shape: &[usize], window: usize, stride: usize) -> (usize, usize, usize, usize, usize, usize) {
    assert_eq!(shape.len(), 4, "pooling requires an NCHW tensor");
    assert!(window > 0 && stride > 0, "window/stride must be positive");
    let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
    assert!(
        h >= window && w >= window,
        "pool window {window} does not fit {h}x{w}"
    );
    let oh = (h - window) / stride + 1;
    let ow = (w - window) / stride + 1;
    (n, c, h, w, oh, ow)
}

/// Internal accessors used by the pooling ops (kept crate-private).
impl Var {
    pub(crate) fn node_id(&self) -> usize {
        self.id
    }

    pub(crate) fn record(
        &self,
        value: Tensor,
        backward: crate::tape::BackwardFn,
    ) -> Var {
        self.tape_handle()
            .push(std::rc::Rc::new(value), Some(backward), None)
    }

    pub(crate) fn tape_handle(&self) -> &Tape {
        &self.tape
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad_check::check_gradients;

    #[test]
    fn avg_pool_known_values() {
        let tape = Tape::new();
        let x = tape.leaf(
            Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]).unwrap(),
        );
        let y = x.avg_pool2d(2, 2);
        assert_eq!(y.value().shape(), &[1, 1, 2, 2]);
        assert_eq!(y.value().data(), &[2.5, 4.5, 10.5, 12.5]);
    }

    #[test]
    fn max_pool_known_values_and_grad_routing() {
        let tape = Tape::new();
        let x = tape.leaf(
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap(),
        );
        let y = x.max_pool2d(2, 2);
        assert_eq!(y.value().item(), 4.0);
        y.sum().backward();
        assert_eq!(x.grad().unwrap().data(), &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn grad_check_avg_pool() {
        let x = Tensor::randn(&[2, 2, 4, 4], 1.0, 60);
        let report = check_gradients(&|_t, v| v.avg_pool2d(2, 2).square().sum(), &x, 1e-2);
        assert!(report.passes(2e-2), "{report:?}");
    }

    #[test]
    fn grad_check_max_pool_away_from_ties() {
        // Distinct values so the argmax is stable under the probe epsilon.
        let x = Tensor::from_vec(
            (0..16).map(|v| v as f32 * 0.37 - 2.0).collect(),
            &[1, 1, 4, 4],
        )
        .unwrap();
        let report = check_gradients(&|_t, v| v.max_pool2d(2, 2).square().sum(), &x, 1e-3);
        assert!(report.passes(2e-2), "{report:?}");
    }

    #[test]
    fn grad_check_sigmoid_and_clamp() {
        let x = Tensor::randn(&[8], 1.5, 61);
        let r1 = check_gradients(&|_t, v| v.sigmoid().square().sum(), &x, 1e-2);
        assert!(r1.passes(2e-2), "{r1:?}");
        // Keep probes away from the clamp kinks at ±1.
        let x2 = Tensor::from_vec(vec![-2.0, -0.5, 0.0, 0.5, 2.0], &[5]).unwrap();
        let r2 = check_gradients(&|_t, v| v.clamp(-1.0, 1.0).square().sum(), &x2, 1e-3);
        assert!(r2.passes(2e-2), "{r2:?}");
    }

    #[test]
    fn sigmoid_range() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![-50.0, 0.0, 50.0], &[3]).unwrap());
        let y = x.sigmoid().value().as_ref().clone();
        assert!(y.data()[0] < 1e-6);
        assert!((y.data()[1] - 0.5).abs() < 1e-6);
        assert!(y.data()[2] > 1.0 - 1e-6);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_window_panics() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::zeros(&[1, 1, 2, 2]));
        let _ = x.avg_pool2d(3, 1);
    }
}
