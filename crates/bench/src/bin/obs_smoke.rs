//! Observability end-to-end smoke check: run a small fleet with a live
//! `ObsServer` attached (ephemeral port), then validate all three
//! endpoints with a plain `std::net::TcpStream` HTTP client — the
//! Prometheus exposition format of `/metrics` (HELP/TYPE lines, `a3cs_*`
//! namespace, parseable sample lines), `/healthz` readiness, and that
//! `/fleet` serves the run's own `FleetReport` JSON byte-for-byte. Exits
//! nonzero on any failure, so `scripts/check.sh` can use it as a gate.
//!
//! ```sh
//! cargo run --release -p a3cs-bench --bin obs_smoke
//! ```

use a3cs_bench::report::{or_exit, status, warn};
use a3cs_core::CoSearchConfig;
use a3cs_envs::{Breakout, Environment};
use a3cs_fleet::{Fleet, FleetConfig, SessionState};
use a3cs_obs::ObsServer;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

fn factory(seed: u64) -> Box<dyn Environment> {
    Box::new(Breakout::new(seed))
}

fn fail(problems: &[String]) -> ! {
    for p in problems {
        warn(p);
    }
    std::process::exit(1);
}

fn tiny_config() -> CoSearchConfig {
    let mut cfg = CoSearchConfig::tiny(3, 12, 12, 3);
    cfg.total_steps = 200;
    cfg.eval_every = 100;
    cfg.eval_episodes = 2;
    cfg.eval_max_steps = 40;
    cfg.das_final_iters = 50;
    cfg
}

/// One GET over a fresh connection; returns `(status code, body)`.
fn http_get(addr: SocketAddr, path: &str) -> Result<(u16, String), String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let req = format!("GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n");
    stream
        .write_all(req.as_bytes())
        .map_err(|e| format!("send {path}: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read {path}: {e}"))?;
    let code = response
        .split(' ')
        .nth(1)
        .and_then(|c| c.parse::<u16>().ok())
        .ok_or_else(|| format!("{path}: malformed status line"))?;
    let body = response
        .split("\r\n\r\n")
        .nth(1)
        .ok_or_else(|| format!("{path}: missing header/body separator"))?
        .to_string();
    Ok((code, body))
}

/// Validate the Prometheus text exposition shape: every line is a
/// `# HELP`/`# TYPE` comment or a `name{labels} value` sample in the
/// `a3cs_` namespace, and every sample family was declared first.
fn check_exposition(body: &str, problems: &mut Vec<String>) {
    let mut declared: Vec<String> = Vec::new();
    let mut samples = 0usize;
    for (n, line) in body.lines().enumerate() {
        let lineno = n + 1;
        if let Some(rest) = line.strip_prefix("# ") {
            let ok = rest
                .strip_prefix("HELP ")
                .or_else(|| rest.strip_prefix("TYPE "))
                .map(|r| r.starts_with("a3cs_"));
            if ok != Some(true) {
                problems.push(format!("/metrics line {lineno}: bad comment: {line}"));
                continue;
            }
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                if let Some(name) = decl.split(' ').next() {
                    declared.push(name.to_string());
                }
            }
            continue;
        }
        let Some((series, value)) = line.rsplit_once(' ') else {
            problems.push(format!("/metrics line {lineno}: no sample value: {line}"));
            continue;
        };
        if value.parse::<f64>().is_err() {
            problems.push(format!("/metrics line {lineno}: unparseable value: {value}"));
        }
        let name = series.split('{').next().unwrap_or(series);
        if !name.starts_with("a3cs_") {
            problems.push(format!("/metrics line {lineno}: outside a3cs_ namespace: {name}"));
        }
        if !declared.iter().any(|d| d == name) {
            problems.push(format!("/metrics line {lineno}: sample before TYPE: {name}"));
        }
        samples += 1;
    }
    if samples == 0 {
        problems.push("/metrics exposed no samples".to_string());
    }
}

fn main() {
    status("obs smoke: fleet with a live exposition server attached\n");
    let server = or_exit(ObsServer::bind_ephemeral());
    let addr = server.addr();
    status(format!("obs smoke: serving on http://{addr}\n"));

    let mut fleet = Fleet::new(FleetConfig {
        scheduler_seed: 7,
        ..FleetConfig::default()
    });
    for seed in 10..12u64 {
        let _ = or_exit(fleet.submit(format!("s{seed}"), tiny_config(), seed, factory));
    }
    fleet.attach_observer(Box::new(server.publisher(64)));
    let report = fleet.run_to_completion();

    let mut problems = Vec::new();
    for s in &report.sessions {
        if s.state != SessionState::Done {
            problems.push(format!("session {} did not complete: {:?}", s.id, s.state));
        }
    }

    // /metrics: exposition format plus the values this run must have hit.
    match http_get(addr, "/metrics") {
        Ok((200, body)) => {
            check_exposition(&body, &mut problems);
            for needle in [
                format!("\na3cs_obs_publishes_total {}\n", report.ticks),
                format!("\na3cs_fleet_ticks {}\n", report.ticks),
                format!("\na3cs_fleet_pool_budget {}\n", report.pool_budget),
                "a3cs_session_state{session=\"0\",name=\"s10\",state=\"done\"} 1".to_string(),
                "a3cs_session_state{session=\"1\",name=\"s11\",state=\"done\"} 1".to_string(),
            ] {
                if !body.contains(&needle) {
                    problems.push(format!("/metrics missing: {}", needle.trim()));
                }
            }
        }
        Ok((code, _)) => problems.push(format!("/metrics returned {code}, want 200")),
        Err(e) => problems.push(e),
    }

    // /healthz: ready, with the final ladder rung.
    match http_get(addr, "/healthz") {
        Ok((200, body)) => {
            if !body.starts_with("{\"ready\":true,") {
                problems.push(format!("/healthz not ready: {body}"));
            }
            let rung = format!("\"pool_budget\":{}", report.pool_budget);
            if !body.contains(&rung) {
                problems.push(format!("/healthz missing {rung}: {body}"));
            }
        }
        Ok((code, _)) => problems.push(format!("/healthz returned {code}, want 200")),
        Err(e) => problems.push(e),
    }

    // /fleet: byte-for-byte the run's own final report.
    match http_get(addr, "/fleet") {
        Ok((200, body)) => {
            if body != report.to_json() {
                problems.push(
                    "/fleet body differs from the run's own FleetReport::to_json".to_string(),
                );
            }
        }
        Ok((code, _)) => problems.push(format!("/fleet returned {code}, want 200")),
        Err(e) => problems.push(e),
    }

    // Unknown paths 404; non-GET 405.
    match http_get(addr, "/nope") {
        Ok((404, _)) => {}
        Ok((code, _)) => problems.push(format!("/nope returned {code}, want 404")),
        Err(e) => problems.push(e),
    }

    server.shutdown();
    if !problems.is_empty() {
        fail(&problems);
    }
    status(format!(
        "obs smoke: OK ({} sessions done in {} ticks; /metrics, /healthz and /fleet validated)\n",
        report.sessions.len(),
        report.ticks
    ));
}
