//! A3C-S reproduction meta-crate: re-exports the whole workspace under one
//! roof for examples, integration tests and downstream users.
//!
//! The workspace reproduces *A3C-S: Automated Agent Accelerator Co-Search
//! towards Efficient Deep Reinforcement Learning* (Fu et al., DAC 2021):
//!
//! - [`tensor`]: dense `f32` tensors + reverse-mode autograd;
//! - [`nn`]: layers, residual blocks and the paper's backbone zoo;
//! - [`envs`]: the simulated Atari suite (ALE substitute);
//! - [`drl`]: A2C training with AC-distillation (Eq. 10–12);
//! - [`nas`]: the Gumbel-Softmax supernet (Eq. 6–7);
//! - [`accel`]: the accelerator template, predictor and DAS (Eq. 9);
//! - [`check`]: static shape inference, accelerator legality and lints;
//! - [`core`]: the joint co-search pipeline (Alg. 1);
//! - [`fleet`]: multi-session orchestration with per-session fault
//!   domains, bounded backed-off restarts and fleet-wide aggregation;
//! - [`obs`]: the live observability plane — rolling rollups plus a
//!   zero-dependency `/metrics`, `/healthz`, `/fleet` HTTP service.
//!
//! # Quickstart
//!
//! ```
//! use a3cs::core::{CoSearch, CoSearchConfig};
//! use a3cs::envs::{Breakout, Environment};
//!
//! let mut config = CoSearchConfig::tiny(3, 12, 12, 3);
//! config.total_steps = 200;
//! let factory = |seed: u64| -> Box<dyn Environment> { Box::new(Breakout::new(seed)) };
//! let result = CoSearch::try_new(config, 0)
//!     .expect("tiny config passes pre-flight")
//!     .run(&factory, None);
//! println!("{}", result.summary());
//! ```

#![deny(missing_docs)]

pub use a3cs_accel as accel;
pub use a3cs_check as check;
pub use a3cs_core as core;
pub use a3cs_drl as drl;
pub use a3cs_fleet as fleet;
pub use a3cs_envs as envs;
pub use a3cs_nas as nas;
pub use a3cs_nn as nn;
pub use a3cs_obs as obs;
pub use a3cs_tensor as tensor;
