//! Exhaustive enumeration of (small) accelerator spaces — ground truth
//! for validating the DAS and random-search engines.

use crate::memo::{CachedCostModel, CostModel};
use crate::predictor::{CostWeights, PerfModel};
use crate::space::SearchSpace;
use crate::template::AcceleratorConfig;
use crate::zc706::FpgaTarget;
use a3cs_nn::LayerDesc;

/// Exhaustive search over every configuration of a [`SearchSpace`].
///
/// Only feasible for deliberately small spaces (tests and calibration);
/// [`ExhaustiveSearch::run`] refuses spaces above a configurable size.
pub struct ExhaustiveSearch {
    space: SearchSpace,
    num_chunks: usize,
    cost: CostWeights,
    max_evaluations: u64,
    legality_filter: bool,
    cache: Option<CachedCostModel>,
}

impl ExhaustiveSearch {
    /// Create an exhaustive search capped at `max_evaluations` points.
    ///
    /// # Panics
    ///
    /// Panics if `num_chunks` is zero.
    #[must_use]
    pub fn new(
        space: SearchSpace,
        num_chunks: usize,
        cost: CostWeights,
        max_evaluations: u64,
    ) -> Self {
        assert!(num_chunks > 0, "need at least one chunk");
        ExhaustiveSearch {
            space,
            num_chunks,
            cost,
            max_evaluations,
            legality_filter: false,
            cache: None,
        }
    }

    /// Front the predictor with a transposition-table cost cache of
    /// `2^log2_entries` slots. The odometer enumeration varies one knob at
    /// a time, so the per-chunk partial table converts most of each
    /// evaluation into lookups; results are bit-identical to the uncached
    /// run.
    #[must_use]
    pub fn with_cache(mut self, log2_entries: u32) -> Self {
        self.cache = Some(CachedCostModel::new(log2_entries));
        self
    }

    /// Enable the legality pre-filter: enumeration still visits every
    /// point, but only designs within the target's DSP/BRAM budget and
    /// with a contiguous layer→chunk assignment reach the predictor. The
    /// filter is `O(config)` per point, so it prunes the expensive
    /// evaluations; the visited count still reports the full space.
    #[must_use]
    pub fn with_legality_filter(mut self) -> Self {
        self.legality_filter = true;
        self
    }

    /// Enumerate every configuration, returning the optimum
    /// `(config, cost)` and the number of points visited.
    ///
    /// # Panics
    ///
    /// Panics if the space exceeds the evaluation cap (use DAS or random
    /// search instead), if `layers` is empty, or if the legality filter
    /// (see [`ExhaustiveSearch::with_legality_filter`]) rejects every
    /// point in the space.
    #[must_use]
    pub fn run(
        &mut self,
        layers: &[LayerDesc],
        target: &FpgaTarget,
    ) -> (AcceleratorConfig, f64, u64) {
        assert!(!layers.is_empty(), "cannot search for an empty network");
        let sizes = self.space.knob_sizes(self.num_chunks, layers.len());
        let total: f64 = sizes.iter().map(|&s| s as f64).product();
        assert!(
            total <= self.max_evaluations as f64,
            "space has {total} points, above the cap of {}",
            self.max_evaluations
        );
        if let Some(cache) = &mut self.cache {
            cache.begin(&self.space, self.num_chunks, layers, target, &self.cost);
        }

        let mut choices = vec![0usize; sizes.len()];
        let mut best: Option<(AcceleratorConfig, f64)> = None;
        let mut visited = 0u64;
        'space: loop {
            let accel = self.space.decode(self.num_chunks, layers.len(), &choices);
            visited += 1;
            let legal = !self.legality_filter
                || (accel.within_budget(target) && accel.assignment_contiguous());
            if legal {
                let cost = match &mut self.cache {
                    Some(cache) => cache.cost_config(&accel),
                    None => {
                        let report = PerfModel::evaluate(&accel, layers, target);
                        PerfModel::cost(&report, target, &self.cost)
                    }
                };
                if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                    best = Some((accel, cost));
                }
            }
            // Odometer increment.
            let mut k = 0;
            loop {
                if k == sizes.len() {
                    break 'space;
                }
                choices[k] += 1;
                if choices[k] < sizes[k] {
                    break;
                }
                choices[k] = 0;
                k += 1;
            }
        }
        assert!(
            best.is_some(),
            "the legality filter rejected every point in the space"
        );
        match best {
            Some((config, cost)) => (config, cost, visited),
            None => unreachable!("asserted non-empty just above"),
        }
    }
}

/// A deliberately tiny space for exhaustive validation.
#[must_use]
pub fn tiny_space() -> SearchSpace {
    SearchSpace {
        pe_rows: vec![4, 16],
        pe_cols: vec![4, 8],
        nocs: vec![crate::template::NocTopology::Systolic],
        dataflows: vec![
            crate::template::Dataflow::OutputStationary,
            crate::template::Dataflow::WeightStationary,
        ],
        buffer_totals_kb: vec![64],
        tm: vec![8, 16],
        tn: vec![8],
        tr: vec![4],
        tc: vec![4],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beam::{BeamConfig, BeamSearch};
    use crate::das::{DasConfig, DasEngine};
    use crate::random_search::RandomSearch;
    use a3cs_nn::vanilla;

    fn layers() -> Vec<LayerDesc> {
        vanilla(4, 12, 12, 32, 0).layer_descs()
    }

    #[test]
    fn exhaustive_visits_whole_space() {
        let space = tiny_space();
        let layers = layers();
        let sizes = space.knob_sizes(1, layers.len());
        let expect: u64 = sizes.iter().map(|&s| s as u64).product();
        let mut search = ExhaustiveSearch::new(space, 1, CostWeights::default(), 100_000);
        let (_, _, visited) = search.run(&layers, &FpgaTarget::zc706());
        assert_eq!(visited, expect);
    }

    #[test]
    fn cached_enumeration_is_bit_identical_to_direct() {
        let space = tiny_space();
        let layers = layers();
        let target = FpgaTarget::zc706();
        let mut direct = ExhaustiveSearch::new(space.clone(), 1, CostWeights::default(), 100_000);
        let mut cached = ExhaustiveSearch::new(space, 1, CostWeights::default(), 100_000)
            .with_cache(12);
        let (best_d, cost_d, visited_d) = direct.run(&layers, &target);
        let (best_c, cost_c, visited_c) = cached.run(&layers, &target);
        assert_eq!(best_d, best_c);
        assert_eq!(cost_d.to_bits(), cost_c.to_bits());
        assert_eq!(visited_d, visited_c);
    }

    #[test]
    fn nothing_beats_the_exhaustive_optimum() {
        let space = tiny_space();
        let layers = layers();
        let target = FpgaTarget::zc706();
        let mut search = ExhaustiveSearch::new(space.clone(), 1, CostWeights::default(), 100_000);
        let (_, optimum, _) = search.run(&layers, &target);

        let mut random = RandomSearch::new(space.clone(), 1, CostWeights::default(), 1);
        let (_, rand_cost) = random.run(&layers, &target, 500);
        assert!(rand_cost >= optimum - 1e-6);

        let mut beam = BeamSearch::new(
            BeamConfig {
                space: space.clone(),
                num_chunks: 1,
                width: 8,
                mutations_per_parent: 6,
                ..BeamConfig::default()
            },
            2,
        );
        let (_, beam_cost) = beam.run(&layers, &target, 10);
        assert!(beam_cost >= optimum - 1e-6);
        // On a 96-point space the beam should land on (or right next to)
        // the global optimum.
        assert!(
            beam_cost <= optimum * 1.5,
            "beam cost {beam_cost} too far from optimum {optimum}"
        );

        let mut das = DasEngine::new(
            DasConfig {
                space,
                num_chunks: 1,
                ..DasConfig::default()
            },
            2,
        );
        let best = das.run(&layers, &target, 600);
        let das_cost = PerfModel::cost(
            &PerfModel::evaluate(&best, &layers, &target),
            &target,
            &CostWeights::default(),
        );
        assert!(das_cost >= optimum - 1e-6);
        // DAS should land within 2x of the global optimum on this toy space.
        assert!(
            das_cost <= optimum * 2.0,
            "DAS cost {das_cost} too far from optimum {optimum}"
        );
    }

    #[test]
    fn legality_filter_agrees_on_feasible_spaces_and_skips_illegal_points() {
        // Two chunks of up to 16x8 PEs fit the ZC706 easily, but the
        // 2-chunk assignment makes interleaved (non-contiguous) points
        // that the filter must skip without changing the optimum's cost
        // class: the filtered optimum is a legal design, and no legal
        // design beats it.
        let space = tiny_space();
        let layers = layers();
        let target = FpgaTarget::zc706();
        let mut plain =
            ExhaustiveSearch::new(space.clone(), 2, CostWeights::default(), 10_000_000);
        let mut filtered = ExhaustiveSearch::new(space, 2, CostWeights::default(), 10_000_000)
            .with_legality_filter();
        let (_, plain_cost, plain_visited) = plain.run(&layers, &target);
        let (best, filtered_cost, filtered_visited) = filtered.run(&layers, &target);
        assert_eq!(plain_visited, filtered_visited, "filter must not skip enumeration");
        assert!(best.assignment_contiguous());
        assert!(best.within_budget(&target));
        // The unfiltered optimum ranges over a superset of designs.
        assert!(filtered_cost >= plain_cost - 1e-9);
    }

    #[test]
    #[should_panic(expected = "rejected every point")]
    fn filter_rejecting_everything_panics() {
        let impossible = FpgaTarget {
            dsp_limit: 1,
            ..FpgaTarget::zc706()
        };
        let mut search = ExhaustiveSearch::new(tiny_space(), 1, CostWeights::default(), 100_000)
            .with_legality_filter();
        let _ = search.run(&layers(), &impossible);
    }

    #[test]
    #[should_panic(expected = "above the cap")]
    fn oversized_space_is_refused() {
        let mut search =
            ExhaustiveSearch::new(SearchSpace::default(), 4, CostWeights::default(), 1_000);
        let _ = search.run(&layers(), &FpgaTarget::zc706());
    }
}
