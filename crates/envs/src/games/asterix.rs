//! Asterix: lane-crossing item collection with hazards.

use crate::env::{Canvas, Environment, StepOutcome};
use crate::games::clamp;
use crate::state::{EnvState, RestoreError, StateReader, StateWriter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GRID: usize = 12;
const FIRST_LANE: isize = 2;
const LANES: usize = 8;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ObjectKind {
    Reward,
    Hazard,
}

#[derive(Debug, Clone, Copy)]
struct LaneObject {
    col: isize,
    dir: isize,
    kind: ObjectKind,
}

/// Asterix stand-in: eight horizontal lanes each carry one moving object —
/// a reward (`+1`, respawns) or a hazard (instant death). The agent weaves
/// through lanes to collect and dodge.
///
/// Actions: `0` no-op, `1` up, `2` down, `3` left, `4` right.
#[derive(Debug, Clone)]
pub struct Asterix {
    rng: StdRng,
    player: (isize, isize),
    lanes: [LaneObject; LANES],
    done: bool,
}

impl Asterix {
    /// Create a seeded Asterix game.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Asterix {
            rng: StdRng::seed_from_u64(seed),
            player: (GRID as isize - 1, GRID as isize / 2),
            lanes: [LaneObject {
                col: 0,
                dir: 1,
                kind: ObjectKind::Reward,
            }; LANES],
            done: true,
        }
    }

    fn respawn_lane(&mut self, lane: usize) {
        let dir = if lane % 2 == 0 { 1 } else { -1 };
        self.lanes[lane] = LaneObject {
            col: if dir > 0 { 0 } else { GRID as isize - 1 },
            dir,
            kind: if self.rng.gen_bool(0.6) {
                ObjectKind::Reward
            } else {
                ObjectKind::Hazard
            },
        };
    }

    fn observe(&self) -> Vec<f32> {
        let mut canvas = Canvas::new(3, GRID, GRID);
        canvas.paint(0, self.player.0, self.player.1, 1.0);
        for (lane, obj) in self.lanes.iter().enumerate() {
            let row = FIRST_LANE + lane as isize;
            let plane = match obj.kind {
                ObjectKind::Reward => 1,
                ObjectKind::Hazard => 2,
            };
            canvas.paint(plane, row, obj.col, 1.0);
        }
        canvas.into_observation()
    }

    fn collision(&self) -> Option<ObjectKind> {
        let (pr, pc) = self.player;
        let lane = pr - FIRST_LANE;
        if (0..LANES as isize).contains(&lane) {
            let obj = self.lanes[lane as usize];
            if obj.col == pc {
                return Some(obj.kind);
            }
        }
        None
    }
}

impl Environment for Asterix {
    fn name(&self) -> &str {
        "Asterix"
    }

    fn observation_shape(&self) -> (usize, usize, usize) {
        (3, GRID, GRID)
    }

    fn action_count(&self) -> usize {
        5
    }

    fn reset(&mut self) -> Vec<f32> {
        self.player = (GRID as isize - 1, GRID as isize / 2);
        for lane in 0..LANES {
            self.respawn_lane(lane);
            // Stagger starting columns so the board is not synchronised.
            self.lanes[lane].col = self.rng.gen_range(0..GRID as isize);
        }
        self.done = false;
        self.observe()
    }

    fn step(&mut self, action: usize) -> StepOutcome {
        assert!(!self.done, "episode is over; call reset()");
        assert!(action < self.action_count(), "invalid action {action}");
        let (dr, dc) = match action {
            1 => (-1, 0),
            2 => (1, 0),
            3 => (0, -1),
            4 => (0, 1),
            _ => (0, 0),
        };
        self.player.0 = clamp(self.player.0 + dr, 0, GRID as isize - 1);
        self.player.1 = clamp(self.player.1 + dc, 0, GRID as isize - 1);

        let mut reward = 0.0f32;
        // Check collision both before and after objects move (crossing paths).
        let mut hits = Vec::new();
        if let Some(kind) = self.collision() {
            hits.push(kind);
        }
        for lane in 0..LANES {
            let obj = &mut self.lanes[lane];
            obj.col += obj.dir;
            if obj.col < 0 || obj.col >= GRID as isize {
                self.respawn_lane(lane);
            }
        }
        if let Some(kind) = self.collision() {
            hits.push(kind);
        }
        for (i, kind) in hits.iter().enumerate() {
            match kind {
                ObjectKind::Reward => {
                    reward += 1.0;
                    let lane = (self.player.0 - FIRST_LANE) as usize;
                    self.respawn_lane(lane);
                    // A respawned object cannot be re-collected this step.
                    let _ = i;
                }
                ObjectKind::Hazard => {
                    self.done = true;
                    break;
                }
            }
        }

        StepOutcome {
            observation: self.observe(),
            reward,
            done: self.done,
        }
    }

    fn snapshot(&self) -> EnvState {
        let mut w = StateWriter::new("Asterix");
        w.rng(&self.rng);
        w.isize(self.player.0);
        w.isize(self.player.1);
        for item in &self.lanes {
            w.isize(item.col);
            w.isize(item.dir);
            w.int(match item.kind { ObjectKind::Reward => 0, ObjectKind::Hazard => 1 });
        }
        w.bool(self.done);
        w.finish()
    }

    fn restore(&mut self, state: &EnvState) -> Result<(), RestoreError> {
        let mut r = StateReader::new(state, "Asterix")?;
        self.rng = r.rng()?;
        self.player = (r.isize()?, r.isize()?);
        for item in &mut self.lanes {
            *item = LaneObject { col: r.isize()?, dir: r.isize()?, kind: match r.int()? {
                0 => ObjectKind::Reward,
                1 => ObjectKind::Hazard,
                v => return Err(r.out_of_range(format!("unknown ObjectKind {v}"))),
            } };
        }
        self.done = r.bool()?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::testkit::{assert_deterministic, random_rollout};

    #[test]
    fn deterministic_given_seed() {
        assert_deterministic(Asterix::new(13), Asterix::new(13), 300);
    }

    #[test]
    fn smoke_random_rollout() {
        let mut env = Asterix::new(2);
        let total = random_rollout(&mut env, 1000, 6);
        assert!(total >= 0.0);
    }

    #[test]
    fn staying_outside_lanes_is_safe() {
        let mut env = Asterix::new(3);
        let _ = env.reset();
        // Bottom row (row 11) has no lane; idling there never dies.
        for _ in 0..300 {
            let out = env.step(0);
            assert!(!out.done);
            assert_eq!(out.reward, 0.0);
        }
    }

    #[test]
    fn lane_objects_wrap_by_respawning() {
        let mut env = Asterix::new(4);
        let _ = env.reset();
        for _ in 0..GRID * 3 {
            let _ = env.step(0);
        }
        for obj in &env.lanes {
            assert!((0..GRID as isize).contains(&obj.col));
        }
    }
}
