//! Fault tolerance: a co-search killed mid-run and resumed from disk must
//! finish bit-identically to one that never stopped, injected NaN losses
//! must trigger rollback without changing the trajectory, and corrupted
//! checkpoint files must fall back to an older good one — all driven by
//! the deterministic fault plan, with every action in the robustness log.

use a3cs::core::{
    CoSearch, CoSearchConfig, CoSearchResult, FaultPlan, RobustnessEventKind, SearchError,
};
use a3cs::envs::{Breakout, Environment};
use std::path::PathBuf;

fn factory(seed: u64) -> Box<dyn Environment> {
    Box::new(Breakout::new(seed))
}

fn cosearch(cfg: CoSearchConfig, seed: u64) -> CoSearch {
    CoSearch::try_new(cfg, seed).expect("test config passes pre-flight")
}

fn tiny_config(total_steps: u64) -> CoSearchConfig {
    let mut cfg = CoSearchConfig::tiny(3, 12, 12, 3);
    cfg.total_steps = total_steps;
    cfg.eval_every = 100;
    cfg.eval_episodes = 2;
    cfg.eval_max_steps = 40;
    cfg.das_final_iters = 50;
    cfg
}

fn test_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("a3cs_ft_{}_{}", std::process::id(), test));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn curve_bits(curve: &[(u64, f32)]) -> Vec<(u64, u32)> {
    curve.iter().map(|&(s, v)| (s, v.to_bits())).collect()
}

fn assert_results_bit_identical(a: &CoSearchResult, b: &CoSearchResult) {
    assert_eq!(format!("{:?}", a.arch), format!("{:?}", b.arch));
    assert_eq!(
        format!("{:?}", a.accelerator),
        format!("{:?}", b.accelerator)
    );
    assert_eq!(curve_bits(&a.score_curve), curve_bits(&b.score_curve));
    assert_eq!(
        curve_bits(&a.alpha_entropy_curve),
        curve_bits(&b.alpha_entropy_curve)
    );
    assert_eq!(a.steps, b.steps);
    assert_eq!(a.report.fps.to_bits(), b.report.fps.to_bits());
    assert_eq!(a.report.dsp_used, b.report.dsp_used);
}

#[test]
fn crash_resume_is_bit_identical_to_uninterrupted_run() {
    let reference = cosearch(tiny_config(300), 11).run(&factory, None);
    assert!(reference.robustness.is_empty());

    // Kill the loop at iteration 7 (the checkpoint on disk is iteration 6).
    let dir = test_dir("crash_resume");
    let mut cfg = tiny_config(300);
    cfg.fault.checkpoint_dir = Some(dir.clone());
    cfg.fault.keep = 2;
    cfg.fault.plan = FaultPlan::none().abort_at(7);
    let err = cosearch(cfg.clone(), 11)
        .run_guarded(&factory, None)
        .expect_err("abort fault must surface");
    assert_eq!(err, SearchError::Aborted { iteration: 7 });

    // A fresh CoSearch on the same config/seed resumes from disk.
    cfg.fault.plan = FaultPlan::none();
    let resumed = cosearch(cfg, 11)
        .run_guarded(&factory, None)
        .expect("resumed run completes");
    assert_eq!(resumed.robustness.count(RobustnessEventKind::Resumed), 1);
    assert_results_bit_identical(&reference, &resumed);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn nan_loss_rolls_back_and_stays_bit_identical() {
    let reference = cosearch(tiny_config(300), 7).run(&factory, None);

    // Poison the loss at iteration 5; the sentinel catches it before any
    // optimiser step, rolls back to the in-memory checkpoint and replays.
    // With the default lr_backoff of 1.0 the replay is exact, so the final
    // result matches the undisturbed run bit for bit.
    let mut cfg = tiny_config(300);
    cfg.fault.sentinel = true;
    cfg.fault.max_rollbacks = 3;
    cfg.fault.plan = FaultPlan::none().nan_loss_at(5);
    let mut search = cosearch(cfg, 7);
    let result = search
        .run_guarded(&factory, None)
        .expect("run survives the injected NaN");

    let log = &result.robustness;
    assert_eq!(log.count(RobustnessEventKind::FaultInjected), 1);
    assert_eq!(log.count(RobustnessEventKind::NonFiniteLoss), 1);
    assert_eq!(log.count(RobustnessEventKind::RolledBack), 1);
    assert_results_bit_identical(&reference, &result);
}

#[test]
fn exhausted_rollback_budget_degrades_without_panicking() {
    // Two NaN injections at the same iteration: the first rolls back (using
    // the whole budget of 1), the replayed iteration is poisoned again, and
    // the loop degrades to skip-and-continue instead of looping forever.
    let mut cfg = tiny_config(200);
    cfg.fault.sentinel = true;
    cfg.fault.max_rollbacks = 1;
    cfg.fault.plan = FaultPlan::none().nan_loss_at(2).nan_loss_at(2);
    let mut search = cosearch(cfg, 21);
    let result = search
        .run_guarded(&factory, None)
        .expect("degraded run still completes");

    let log = &result.robustness;
    assert_eq!(log.count(RobustnessEventKind::NonFiniteLoss), 2);
    assert_eq!(log.count(RobustnessEventKind::RolledBack), 1);
    assert_eq!(log.count(RobustnessEventKind::RollbackBudgetExhausted), 1);
    assert!(result.steps >= 200);
}

#[test]
fn resume_falls_back_past_corrupted_checkpoints() {
    let reference = cosearch(tiny_config(300), 3).run(&factory, None);

    // Corrupt the two newest checkpoints (torn write at iteration 4, bit
    // rot at iteration 5), then crash at 6: recovery must skip both and
    // resume from iteration 3.
    let dir = test_dir("corrupt_fallback");
    let mut cfg = tiny_config(300);
    cfg.fault.checkpoint_dir = Some(dir.clone());
    cfg.fault.keep = 3;
    cfg.fault.plan = FaultPlan::none()
        .truncate_checkpoint_at(4, 10)
        .flip_checkpoint_byte_at(5, 40)
        .abort_at(6);
    let err = cosearch(cfg.clone(), 3)
        .run_guarded(&factory, None)
        .expect_err("abort fault must surface");
    assert!(matches!(err, SearchError::Aborted { iteration: 6 }));

    cfg.fault.plan = FaultPlan::none();
    let resumed = cosearch(cfg, 3)
        .run_guarded(&factory, None)
        .expect("resumed run completes");
    let log = &resumed.robustness;
    assert_eq!(
        log.count(RobustnessEventKind::CorruptCheckpointSkipped),
        2,
        "events: {:?}",
        log.events
    );
    assert_eq!(log.count(RobustnessEventKind::Resumed), 1);
    assert_results_bit_identical(&reference, &resumed);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
#[should_panic(expected = "schedules an abort")]
fn run_rejects_abort_plans() {
    let mut cfg = tiny_config(100);
    cfg.fault.plan = FaultPlan::none().abort_at(0);
    let _ = cosearch(cfg, 1).run(&factory, None);
}

// --- durable delta checkpointing (DESIGN.md §17) -------------------------

fn delta_config(total_steps: u64, dir: &PathBuf) -> CoSearchConfig {
    let mut cfg = tiny_config(total_steps);
    cfg.fault.checkpoint_dir = Some(dir.clone());
    cfg.fault.durability.delta = true;
    cfg
}

#[test]
fn delta_crash_resume_is_bit_identical_to_uninterrupted_run() {
    let reference = cosearch(tiny_config(300), 11).run(&factory, None);

    let dir = test_dir("delta_crash_resume");
    let mut cfg = delta_config(300, &dir);
    cfg.fault.plan = FaultPlan::none().abort_at(7);
    let err = cosearch(cfg.clone(), 11)
        .run_guarded(&factory, None)
        .expect_err("abort fault must surface");
    assert_eq!(err, SearchError::Aborted { iteration: 7 });

    // The store must actually hold the incremental format: one base frame
    // plus one delta per later iteration.
    let deltas = std::fs::read_dir(&dir)
        .expect("store dir exists")
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "delta"))
        .count();
    assert_eq!(deltas, 6, "iterations 1..=6 persist as delta frames");

    cfg.fault.plan = FaultPlan::none();
    let resumed = cosearch(cfg, 11)
        .run_guarded(&factory, None)
        .expect("resumed run completes");
    assert_eq!(resumed.robustness.count(RobustnessEventKind::Resumed), 1);
    assert_eq!(
        resumed
            .robustness
            .count(RobustnessEventKind::CheckpointQuarantined),
        0,
        "a clean store scrubs clean"
    );
    assert_results_bit_identical(&reference, &resumed);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn delta_resume_survives_every_injected_io_fault() {
    let reference = cosearch(tiny_config(300), 13).run(&factory, None);

    // Each plan sabotages the checkpoint write at iteration 3 inside the
    // durable I/O path, then crashes at 7. The failed write logs
    // checkpoint-write-failed and forces a fresh base at 4, so recovery
    // replays base 4 + deltas 5..6 and resumes bit-identically.
    let plans: [(&str, FaultPlan); 3] = [
        ("io_error", FaultPlan::none().io_error_at(3).abort_at(7)),
        ("disk_full", FaultPlan::none().disk_full_at(3, 25).abort_at(7)),
        ("torn_rename", FaultPlan::none().torn_rename_at(3).abort_at(7)),
    ];
    for (name, plan) in plans {
        let dir = test_dir(&format!("delta_io_{name}"));
        let mut cfg = delta_config(300, &dir);
        cfg.fault.plan = plan;
        let err = cosearch(cfg.clone(), 13)
            .run_guarded(&factory, None)
            .expect_err("abort fault must surface");
        assert_eq!(err, SearchError::Aborted { iteration: 7 }, "{name}");

        cfg.fault.plan = FaultPlan::none();
        let resumed = cosearch(cfg, 13)
            .run_guarded(&factory, None)
            .expect("resumed run completes");
        let log = &resumed.robustness;
        assert_eq!(log.count(RobustnessEventKind::Resumed), 1, "{name}");
        if name == "torn_rename" {
            // The stranded `.tmp` is evidence of the torn rename; the
            // resume-time scrub quarantines it instead of deleting it.
            assert_eq!(
                log.count(RobustnessEventKind::CheckpointQuarantined),
                1,
                "{name}: {:?}",
                log.events
            );
        }
        assert_results_bit_identical(&reference, &resumed);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn delta_resume_falls_back_past_a_flipped_delta_byte() {
    let reference = cosearch(tiny_config(300), 3).run(&factory, None);

    // Bit rot in the delta at iteration 5: its envelope checksum fails, so
    // chain replay stops at the verified prefix (iteration 4) and the
    // scrub quarantines the rotten frame plus its downstream delta.
    let dir = test_dir("delta_flip");
    let mut cfg = delta_config(300, &dir);
    cfg.fault.plan = FaultPlan::none().flip_checkpoint_byte_at(5, 40).abort_at(7);
    let err = cosearch(cfg.clone(), 3)
        .run_guarded(&factory, None)
        .expect_err("abort fault must surface");
    assert_eq!(err, SearchError::Aborted { iteration: 7 });

    cfg.fault.plan = FaultPlan::none();
    let resumed = cosearch(cfg, 3)
        .run_guarded(&factory, None)
        .expect("resumed run completes");
    let log = &resumed.robustness;
    assert_eq!(
        log.count(RobustnessEventKind::DeltaChainFallback),
        1,
        "events: {:?}",
        log.events
    );
    assert_eq!(log.count(RobustnessEventKind::CheckpointQuarantined), 2);
    assert_eq!(log.count(RobustnessEventKind::Resumed), 1);
    assert_results_bit_identical(&reference, &resumed);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn delta_resume_survives_a_missing_base() {
    let reference = cosearch(tiny_config(300), 17).run(&factory, None);

    let dir = test_dir("delta_missing_base");
    let mut cfg = delta_config(300, &dir);
    cfg.fault.plan = FaultPlan::none().abort_at(7);
    let err = cosearch(cfg.clone(), 17)
        .run_guarded(&factory, None)
        .expect_err("abort fault must surface");
    assert_eq!(err, SearchError::Aborted { iteration: 7 });

    // Lose the chain's base: the deltas alone can never replay. Recovery
    // must start fresh (no panic), and the scrub must quarantine every
    // orphan rather than deleting it.
    std::fs::remove_file(dir.join("ckpt-000000000000.json")).expect("base exists");
    cfg.fault.plan = FaultPlan::none();
    let resumed = cosearch(cfg, 17)
        .run_guarded(&factory, None)
        .expect("fresh run completes");
    let log = &resumed.robustness;
    assert_eq!(log.count(RobustnessEventKind::Resumed), 0, "started fresh");
    assert_eq!(
        log.count(RobustnessEventKind::CheckpointQuarantined),
        6,
        "all six orphan deltas quarantined: {:?}",
        log.events
    );
    assert_results_bit_identical(&reference, &resumed);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn delta_chains_roll_a_fresh_base_at_max_chain_len() {
    let dir = test_dir("delta_roll");
    let mut cfg = delta_config(300, &dir);
    cfg.fault.durability.max_chain_len = 2;
    cfg.fault.plan = FaultPlan::none().abort_at(8);
    let err = cosearch(cfg.clone(), 5)
        .run_guarded(&factory, None)
        .expect_err("abort fault must surface");
    assert_eq!(err, SearchError::Aborted { iteration: 8 });

    // Bases at 0, 3, 6; deltas at 1, 2, 4, 5, 7. An inline base roll is
    // routine maintenance, not a robustness event.
    let mut bases: Vec<String> = Vec::new();
    let mut deltas: Vec<String> = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("store dir").filter_map(Result::ok) {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".json") {
            bases.push(name);
        } else if name.ends_with(".delta") {
            deltas.push(name);
        }
    }
    bases.sort();
    deltas.sort();
    assert_eq!(
        bases,
        [
            "ckpt-000000000000.json",
            "ckpt-000000000003.json",
            "ckpt-000000000006.json"
        ]
    );
    assert_eq!(deltas.len(), 5, "deltas: {deltas:?}");

    cfg.fault.plan = FaultPlan::none();
    let resumed = cosearch(cfg, 5)
        .run_guarded(&factory, None)
        .expect("resumed run completes");
    assert_eq!(resumed.robustness.count(RobustnessEventKind::Resumed), 1);
    std::fs::remove_dir_all(&dir).ok();
}
