//! Positive fixture: raw OS threads outside the pool/watchdog must fire
//! A3CS-L303 (both `spawn` and `Builder` count).
pub fn fan_out() {
    let h = std::thread::spawn(|| 1 + 1);
    let _ = h.join();
    let b = std::thread::Builder::new().name("rogue".into());
    let _ = b.spawn(|| ()).map(|h| h.join());
}
