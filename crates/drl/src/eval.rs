//! The paper's evaluation protocol: average score over 30 episodes with
//! null-op starts (Section V-A).

use crate::agent::ActorCritic;
use crate::rollout::EnvFactory;
use a3cs_envs::wrappers::{EpisodeLimit, NoopStart};
use a3cs_envs::Environment;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters of an evaluation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalProtocol {
    /// Number of episodes to average (paper: 30).
    pub episodes: usize,
    /// Maximum random no-ops applied at episode start (null-op starts).
    pub noop_max: usize,
    /// Hard episode step cap (keeps unbounded games finite).
    pub max_steps: usize,
    /// Base RNG seed (episode `i` uses `seed + i`).
    pub seed: u64,
    /// Greedy (argmax) instead of stochastic action selection.
    pub greedy: bool,
}

impl Default for EvalProtocol {
    fn default() -> Self {
        EvalProtocol {
            episodes: 30,
            noop_max: 8,
            max_steps: 400,
            seed: 10_000,
            greedy: false,
        }
    }
}

/// Average unclipped episode score of `agent` under `protocol`.
///
/// Each episode runs in a fresh environment from `factory` (seeded
/// per-episode), wrapped with null-op starts and a step cap; rewards are
/// *not* clipped, matching how the paper reports test scores.
#[must_use]
pub fn evaluate(agent: &ActorCritic, factory: &EnvFactory<'_>, protocol: &EvalProtocol) -> f32 {
    let mut total = 0.0f64;
    let mut rng = StdRng::seed_from_u64(protocol.seed ^ 0x5bd1_e995);
    for ep in 0..protocol.episodes {
        let seed = protocol.seed.wrapping_add(ep as u64);
        let env = factory(seed);
        let mut env = EpisodeLimit::new(
            NoopStart::new(env, protocol.noop_max, seed ^ 0xabcd),
            protocol.max_steps,
        );
        let mut obs = env.reset();
        let mut episode = 0.0f64;
        loop {
            let action = if protocol.greedy {
                agent.act_greedy(&obs, 1)[0]
            } else {
                agent.act(&obs, 1, &mut rng)[0]
            };
            let out = env.step(action);
            episode += f64::from(out.reward);
            if out.done {
                break;
            }
            obs = out.observation;
        }
        total += episode;
    }
    (total / protocol.episodes as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use a3cs_envs::{Atlantis, Breakout};
    use a3cs_nn::vanilla;

    fn agent(planes: usize, actions: usize, seed: u64) -> ActorCritic {
        let backbone = vanilla(planes, 12, 12, 16, seed);
        ActorCritic::new(Box::new(backbone), 16, (planes, 12, 12), actions, seed)
    }

    #[test]
    fn evaluation_is_deterministic_given_protocol() {
        let a = agent(3, 3, 1);
        let factory = |seed: u64| -> Box<dyn Environment> { Box::new(Breakout::new(seed)) };
        let protocol = EvalProtocol {
            episodes: 3,
            max_steps: 60,
            ..EvalProtocol::default()
        };
        let s1 = evaluate(&a, &factory, &protocol);
        let s2 = evaluate(&a, &factory, &protocol);
        assert_eq!(s1, s2);
    }

    #[test]
    fn different_seeds_change_episodes() {
        let a = agent(3, 4, 2);
        let factory = |seed: u64| -> Box<dyn Environment> { Box::new(Atlantis::new(seed)) };
        let p1 = EvalProtocol {
            episodes: 3,
            max_steps: 80,
            seed: 1,
            ..EvalProtocol::default()
        };
        let p2 = EvalProtocol { seed: 2, ..p1 };
        // Not a hard guarantee, but overwhelmingly likely on a stochastic game.
        assert_ne!(evaluate(&a, &factory, &p1), evaluate(&a, &factory, &p2));
    }

    #[test]
    fn greedy_mode_runs() {
        let a = agent(3, 3, 3);
        let factory = |seed: u64| -> Box<dyn Environment> { Box::new(Breakout::new(seed)) };
        let protocol = EvalProtocol {
            episodes: 2,
            max_steps: 50,
            greedy: true,
            ..EvalProtocol::default()
        };
        let score = evaluate(&a, &factory, &protocol);
        assert!(score.is_finite());
    }
}
