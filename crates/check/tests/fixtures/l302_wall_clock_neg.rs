//! Negative fixture: logical step counters are the sanctioned clock; no
//! wall-clock read, no A3CS-L302.
pub struct StepClock {
    steps: u64,
}

impl StepClock {
    pub fn tick(&mut self) -> u64 {
        self.steps += 1;
        self.steps
    }
}
