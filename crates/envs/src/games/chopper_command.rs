//! Chopper Command: protect a truck convoy from raiding jets.

use crate::env::{Canvas, Environment, StepOutcome};
use crate::games::clamp;
use crate::state::{EnvState, RestoreError, StateReader, StateWriter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GRID: usize = 12;
const TRUCKS: usize = 3;
const TRUCK_ROW: isize = GRID as isize - 1;

#[derive(Debug, Clone, Copy)]
struct Jet {
    row: isize,
    col: isize,
    dir: isize,
    diving: bool,
}

/// Chopper Command stand-in: jets cross the sky and occasionally dive at
/// the truck convoy crawling along the bottom row. Shoot jets (`+1`) with
/// horizontal rockets; the episode ends when the chopper is rammed or the
/// whole convoy is destroyed.
///
/// Actions: `0` no-op, `1` up, `2` down, `3` left, `4` right, `5` fire.
#[derive(Debug, Clone)]
pub struct ChopperCommand {
    rng: StdRng,
    chopper: (isize, isize),
    facing: isize,
    jets: Vec<Jet>,
    rocket: Option<(isize, isize, isize)>,
    trucks: Vec<isize>,
    clock: u32,
    done: bool,
}

impl ChopperCommand {
    /// Create a seeded Chopper Command game.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        ChopperCommand {
            rng: StdRng::seed_from_u64(seed),
            chopper: (3, GRID as isize / 2),
            facing: 1,
            jets: Vec::new(),
            rocket: None,
            trucks: Vec::new(),
            clock: 0,
            done: true,
        }
    }

    fn observe(&self) -> Vec<f32> {
        let mut canvas = Canvas::new(4, GRID, GRID);
        canvas.paint(0, self.chopper.0, self.chopper.1, 1.0);
        for j in &self.jets {
            canvas.paint(1, j.row, j.col, 1.0);
        }
        for &c in &self.trucks {
            canvas.paint(2, TRUCK_ROW, c, 1.0);
        }
        if let Some((r, c, _)) = self.rocket {
            canvas.paint(3, r, c, 1.0);
        }
        canvas.into_observation()
    }
}

impl Environment for ChopperCommand {
    fn name(&self) -> &str {
        "ChopperCommand"
    }

    fn observation_shape(&self) -> (usize, usize, usize) {
        (4, GRID, GRID)
    }

    fn action_count(&self) -> usize {
        6
    }

    fn reset(&mut self) -> Vec<f32> {
        self.chopper = (3, GRID as isize / 2);
        self.facing = 1;
        self.jets.clear();
        self.rocket = None;
        self.trucks = (0..TRUCKS).map(|i| 2 + 3 * i as isize).collect();
        self.clock = 0;
        self.done = false;
        self.observe()
    }

    fn step(&mut self, action: usize) -> StepOutcome {
        assert!(!self.done, "episode is over; call reset()");
        assert!(action < self.action_count(), "invalid action {action}");
        self.clock += 1;
        match action {
            1 => self.chopper.0 = clamp(self.chopper.0 - 1, 0, TRUCK_ROW - 1),
            2 => self.chopper.0 = clamp(self.chopper.0 + 1, 0, TRUCK_ROW - 1),
            3 => {
                self.chopper.1 = clamp(self.chopper.1 - 1, 0, GRID as isize - 1);
                self.facing = -1;
            }
            4 => {
                self.chopper.1 = clamp(self.chopper.1 + 1, 0, GRID as isize - 1);
                self.facing = 1;
            }
            5 => {
                if self.rocket.is_none() {
                    self.rocket =
                        Some((self.chopper.0, self.chopper.1 + self.facing, self.facing));
                }
            }
            _ => {}
        }

        let mut reward = 0.0f32;

        // Rocket travel: 2 cells/step.
        if let Some((r, mut c, dir)) = self.rocket.take() {
            let mut live = true;
            for _ in 0..2 {
                c += dir;
                if !(0..GRID as isize).contains(&c) {
                    live = false;
                    break;
                }
                if let Some(i) = self.jets.iter().position(|j| j.row == r && j.col == c) {
                    self.jets.swap_remove(i);
                    reward += 1.0;
                    live = false;
                    break;
                }
            }
            if live {
                self.rocket = Some((r, c, dir));
            }
        }

        // Jet behaviour: cross horizontally; sometimes dive at the convoy.
        let trucks = self.trucks.clone();
        for j in &mut self.jets {
            if j.diving {
                // Home toward the nearest truck.
                if let Some(&target) = trucks.iter().min_by_key(|&&t| (t - j.col).abs()) {
                    j.row += 1;
                    j.col += (target - j.col).signum();
                }
            } else {
                j.col += j.dir;
            }
        }
        if self.clock % 9 == 0 {
            if let Some(j) = self.jets.iter_mut().find(|j| !j.diving) {
                if !trucks.is_empty() {
                    j.diving = true;
                }
            }
        }

        // Jets hitting trucks destroy them; jets exiting the grid despawn.
        let mut destroyed_trucks = Vec::new();
        self.jets.retain(|j| {
            if j.row >= TRUCK_ROW {
                if let Some(i) = self.trucks.iter().position(|&t| t == j.col) {
                    destroyed_trucks.push(i);
                }
                return false;
            }
            (0..GRID as isize).contains(&j.col)
        });
        destroyed_trucks.sort_unstable_by(|a, b| b.cmp(a));
        for i in destroyed_trucks {
            self.trucks.remove(i);
        }

        // Convoy crawls right, wrapping.
        if self.clock % 6 == 0 {
            for t in &mut self.trucks {
                *t = (*t + 1) % GRID as isize;
            }
        }

        // Spawns.
        if self.clock % 4 == 0 && self.jets.len() < 5 {
            let dir = if self.rng.gen_bool(0.5) { 1 } else { -1 };
            self.jets.push(Jet {
                row: self.rng.gen_range(1..7),
                col: if dir > 0 { 0 } else { GRID as isize - 1 },
                dir,
                diving: false,
            });
        }

        // Death: rammed by a jet, or convoy wiped out.
        if self
            .jets
            .iter()
            .any(|j| (j.row, j.col) == self.chopper)
            || self.trucks.is_empty()
        {
            self.done = true;
        }

        StepOutcome {
            observation: self.observe(),
            reward,
            done: self.done,
        }
    }

    fn snapshot(&self) -> EnvState {
        let mut w = StateWriter::new("ChopperCommand");
        w.rng(&self.rng);
        w.isize(self.chopper.0);
        w.isize(self.chopper.1);
        w.isize(self.facing);
        w.usize(self.jets.len());
        for item in &self.jets {
            w.isize(item.row);
            w.isize(item.col);
            w.isize(item.dir);
            w.bool(item.diving);
        }
        w.bool(self.rocket.is_some());
        if let Some(item) = &self.rocket {
            w.isize(item.0);
            w.isize(item.1);
            w.isize(item.2);
        }
        w.usize(self.trucks.len());
        for item in &self.trucks {
            w.isize(*item);
        }
        w.u32(self.clock);
        w.bool(self.done);
        w.finish()
    }

    fn restore(&mut self, state: &EnvState) -> Result<(), RestoreError> {
        let mut r = StateReader::new(state, "ChopperCommand")?;
        self.rng = r.rng()?;
        self.chopper = (r.isize()?, r.isize()?);
        self.facing = r.isize()?;
        let n = r.len(4096)?;
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            items.push(Jet { row: r.isize()?, col: r.isize()?, dir: r.isize()?, diving: r.bool()? });
        }
        self.jets = items;
        self.rocket = if r.bool()? {
            Some((r.isize()?, r.isize()?, r.isize()?))
        } else {
            None
        };
        let n = r.len(4096)?;
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            items.push(r.isize()?);
        }
        self.trucks = items;
        self.clock = r.u32()?;
        self.done = r.bool()?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::testkit::{assert_deterministic, random_rollout};

    #[test]
    fn deterministic_given_seed() {
        assert_deterministic(ChopperCommand::new(91), ChopperCommand::new(91), 400);
    }

    #[test]
    fn smoke_random_rollout() {
        let mut env = ChopperCommand::new(1);
        let total = random_rollout(&mut env, 1000, 13);
        assert!(total >= 0.0);
    }

    #[test]
    fn firing_across_jet_rows_scores() {
        let mut env = ChopperCommand::new(2);
        let _ = env.reset();
        let mut total = 0.0;
        for i in 0..500 {
            // Patrol vertically while firing.
            let action = match i % 3 {
                0 => 5,
                1 => 1,
                _ => 2,
            };
            let out = env.step(action);
            total += out.reward;
            if out.done {
                let _ = env.reset();
            }
        }
        assert!(total > 0.0);
    }

    #[test]
    fn convoy_destruction_ends_episode() {
        let mut env = ChopperCommand::new(3);
        let _ = env.reset();
        // Remove the convoy directly and step: the episode must end.
        env.trucks.clear();
        let out = env.step(0);
        assert!(out.done);
    }
}
